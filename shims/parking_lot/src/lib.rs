//! Vendored minimal stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Performance characteristics are
//! those of std, which is fine for the coarse-grained work queues this
//! workspace uses.

#![deny(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-on-poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
