//! Vendored `#[derive(Serialize, Deserialize)]` macros for the serde shim.
//!
//! Hand-rolled over `proc_macro` (the build environment has no `syn` /
//! `quote`), these derives support exactly what the workspace needs:
//! non-generic structs with named fields, plus the `#[serde(skip)]` and
//! `#[serde(with = "module")]` field attributes. Anything else is a
//! compile error with a pointed message, not a silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed struct field.
struct Field {
    name: String,
    ty: String,
    skip: bool,
    with: Option<String>,
}

/// Parsed derive input: a struct name plus its named fields.
struct Input {
    name: String,
    fields: Vec<Field>,
}

/// Derives the serde shim's `Serialize` for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(msg) => return compile_error(&msg),
    };
    let name = &input.name;
    let active: Vec<&Field> = input.fields.iter().filter(|f| !f.skip).collect();
    let mut body = String::new();
    for field in &active {
        let fname = &field.name;
        match &field.with {
            None => {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \
                     \"{fname}\", &self.{fname})?;\n"
                ));
            }
            Some(path) => {
                let fty = &field.ty;
                body.push_str(&format!(
                    "{{
                        struct __SerdeWith<'__a>(&'__a {fty});
                        impl<'__a> ::serde::Serialize for __SerdeWith<'__a> {{
                            fn serialize<__S: ::serde::Serializer>(
                                &self,
                                __serializer: __S,
                            ) -> ::core::result::Result<__S::Ok, __S::Error> {{
                                {path}::serialize(self.0, __serializer)
                            }}
                        }}
                        ::serde::ser::SerializeStruct::serialize_field(
                            &mut __state, \"{fname}\", &__SerdeWith(&self.{fname}))?;
                    }}\n"
                ));
            }
        }
    }
    let len = active.len();
    let out = format!(
        "#[automatically_derived]
        impl ::serde::Serialize for {name} {{
            fn serialize<__S: ::serde::Serializer>(
                &self,
                __serializer: __S,
            ) -> ::core::result::Result<__S::Ok, __S::Error> {{
                let mut __state =
                    ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {len})?;
                {body}
                ::serde::ser::SerializeStruct::end(__state)
            }}
        }}"
    );
    out.parse().expect("derived Serialize impl must parse")
}

/// Derives the serde shim's `Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(msg) => return compile_error(&msg),
    };
    let name = &input.name;
    let mut body = String::new();
    for field in &input.fields {
        let fname = &field.name;
        if field.skip {
            body.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
            continue;
        }
        let lift = match &field.with {
            None => "::serde::Deserialize::deserialize".to_owned(),
            Some(path) => format!("{path}::deserialize"),
        };
        body.push_str(&format!(
            "{fname}: match ::serde::__private::take_struct_field(&mut __fields, \"{fname}\") {{
                ::core::option::Option::Some(__v) => {lift}(
                    ::serde::ValueDeserializer::<__D::Error>::new(__v))?,
                ::core::option::Option::None => return ::core::result::Result::Err(
                    <__D::Error as ::serde::de::Error>::custom(
                        ::serde::__private::missing_field(\"{name}\", \"{fname}\"))),
            }},\n"
        ));
    }
    let out = format!(
        "#[automatically_derived]
        impl<'de> ::serde::Deserialize<'de> for {name} {{
            fn deserialize<__D: ::serde::Deserializer<'de>>(
                __deserializer: __D,
            ) -> ::core::result::Result<Self, __D::Error> {{
                let __value = ::serde::Deserializer::deserialize_value(__deserializer)?;
                let mut __fields = match __value {{
                    ::serde::Value::Object(__f) => __f,
                    __other => return ::core::result::Result::Err(
                        <__D::Error as ::serde::de::Error>::custom(
                            ::serde::__private::expected_object(\"{name}\", &__other))),
                }};
                ::core::result::Result::Ok({name} {{
                    {body}
                }})
            }}
        }}"
    );
    out.parse().expect("derived Deserialize impl must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Parses the derive input down to struct name + named fields, collecting
/// `#[serde(...)]` field attributes along the way.
fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();

    // Outer attributes and visibility before `struct`.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => {
            return Err(format!(
                "serde shim derives support only structs, found {other:?}"
            ))
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde shim derives do not support generic struct `{name}`"
            ))
        }
        other => {
            return Err(format!(
                "serde shim derives support only named-field structs, \
                 found {other:?} after `struct {name}`"
            ))
        }
    };

    let fields = parse_fields(body)?;
    Ok(Input { name, fields })
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Field attributes.
        let mut skip = false;
        let mut with = None;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    let group = match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                        other => return Err(format!("malformed attribute: {other:?}")),
                    };
                    parse_field_attr(group.stream(), &mut skip, &mut with)?;
                }
                _ => break,
            }
        }

        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.peek() {
            if id.to_string() == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }

        // Field name (or end of input).
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde shim derives support only named fields \
                     (field `{name}`, found {other:?})"
                ))
            }
        }

        // Type: everything up to a comma at angle-bracket depth zero.
        let mut ty = String::new();
        let mut angle_depth: i32 = 0;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(tt) => {
                    if let TokenTree::Punct(p) = tt {
                        match p.as_char() {
                            '<' => angle_depth += 1,
                            '>' => angle_depth -= 1,
                            _ => {}
                        }
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&tt.to_string());
                    tokens.next();
                }
            }
        }
        if ty.is_empty() {
            return Err(format!("field `{name}` has an empty type"));
        }
        fields.push(Field {
            name,
            ty,
            skip,
            with,
        });
    }
    Ok(fields)
}

/// Interprets one `[...]` attribute body; only `serde(...)` matters.
fn parse_field_attr(
    stream: TokenStream,
    skip: &mut bool,
    with: &mut Option<String>,
) -> Result<(), String> {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()), // doc comments and other attributes
    }
    let args = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => return Err(format!("malformed #[serde] attribute: {other:?}")),
    };
    let mut tokens = args.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" => *skip = true,
                "with" => {
                    match tokens.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                        other => {
                            return Err(format!("expected `=` after serde(with), got {other:?}"))
                        }
                    }
                    match tokens.next() {
                        Some(TokenTree::Literal(lit)) => {
                            let raw = lit.to_string();
                            let path = raw.trim_matches('"').to_owned();
                            if path.is_empty() {
                                return Err("empty serde(with = ...) path".to_owned());
                            }
                            *with = Some(path);
                        }
                        other => {
                            return Err(format!(
                                "expected string literal in serde(with = ...), got {other:?}"
                            ))
                        }
                    }
                }
                unknown => {
                    return Err(format!(
                        "serde shim does not support the `{unknown}` attribute \
                         (only `skip` and `with = \"module\"`)"
                    ))
                }
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => return Err(format!("malformed #[serde] attribute token: {other:?}")),
        }
    }
    Ok(())
}
