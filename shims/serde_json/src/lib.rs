//! Vendored minimal stand-in for `serde_json`.
//!
//! Implements the slice of the serde_json API the workspace uses —
//! [`to_string`], [`to_string_pretty`], [`from_str`], and an [`Error`] type
//! that satisfies the serde shim's error traits — over the shim's
//! [`Value`] tree. The parser handles the full JSON grammar (strings with
//! escapes, nested arrays/objects, scientific-notation numbers, booleans,
//! null); the writer emits integers without a trailing `.0` so that
//! integer-typed fields round-trip cleanly.

#![deny(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Errors from JSON serialization or deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree: Value = serde::to_value::<T, Error>(value)?;
    let mut out = String::new();
    write_value(&tree, None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree: Value = serde::to_value::<T, Error>(value)?;
    let mut out = String::new();
    write_value(&tree, Some(2), 0, &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<'de, T: serde::Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    serde::from_value::<T, Error>(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_compound(
            items.iter().map(|v| (None, v)),
            indent,
            depth,
            out,
            '[',
            ']',
        ),
        Value::Object(fields) => write_compound(
            fields.iter().map(|(k, v)| (Some(k.as_str()), v)),
            indent,
            depth,
            out,
            '{',
            '}',
        ),
    }
}

fn write_compound<'a, I>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
) where
    I: ExactSizeIterator<Item = (Option<&'a str>, &'a Value)>,
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, (key, value)) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        if let Some(key) = key {
            write_string(key, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        write_value(value, indent, depth + 1, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; emit null exactly as real serde_json
        // does. Note this makes non-finite floats one-way: null does not
        // parse back into f64, so values that must round-trip need a
        // `#[serde(with = ...)]` sentinel (see TcpInfo::last_send_gap_s).
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v: Vec<f64> = from_str("[1, 2.5, -3e2]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, -300.0]);
        let s: String = from_str("\"a\\nb\\u0041\"").unwrap();
        assert_eq!(s, "a\nbA");
        let none: Option<f64> = from_str("null").unwrap();
        assert_eq!(none, None);
        assert_eq!(to_string(&vec![1.0f64, 2.0]).unwrap(), "[1,2]");
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let value = Value::Object(vec![
            ("name".to_owned(), Value::String("x".to_owned())),
            (
                "xs".to_owned(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.25)]),
            ),
            ("flag".to_owned(), Value::Bool(true)),
        ]);
        let mut out = String::new();
        write_value(&value, Some(2), 0, &mut out);
        let mut parser = Parser {
            bytes: out.as_bytes(),
            pos: 0,
        };
        let back = parser.parse_value().unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1 junk").is_err());
    }

    #[test]
    fn integers_print_without_decimal_point() {
        let mut out = String::new();
        write_number(42.0, &mut out);
        assert_eq!(out, "42");
        out.clear();
        write_number(0.5, &mut out);
        assert_eq!(out, "0.5");
    }
}
