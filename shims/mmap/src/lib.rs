//! Tiny read-only memory-map wrapper.
//!
//! The build environment vendors every dependency, so instead of `memmap2`
//! this crate declares the two libc symbols it needs (`mmap`/`munmap` —
//! std already links libc on unix) and wraps them in a safe, immutable,
//! whole-file mapping. On non-unix targets [`Mmap::map`] returns
//! [`std::io::ErrorKind::Unsupported`], so callers can fall back to
//! positioned reads without conditional compilation of their own.
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: the file contents are
//! never written through the map, and writes by *other* processes are not
//! expected to be observed — callers map files that are replaced
//! atomically (write-temp-then-rename), never mutated in place.

#![deny(missing_docs)]

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
}

/// An immutable memory mapping of an entire file.
///
/// Dereferences to `&[u8]` via [`Mmap::as_slice`]; unmapped on drop.
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// The mapping is immutable shared memory: concurrent reads are safe.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// Fails with [`io::ErrorKind::Unsupported`] on non-unix targets and
    /// for empty files (a zero-length `mmap` is an error by spec), and
    /// with the underlying OS error when the syscall itself refuses.
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::Unsupported, "file too large to map"))?;
        // SAFETY: NULL hint, a length validated non-zero, a live fd, and
        // flag constants fixed by POSIX; the result is checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        let ptr = std::ptr::NonNull::new(ptr as *mut u8)
            .ok_or_else(|| io::Error::other("mmap returned NULL"))?;
        Ok(Self { ptr, len })
    }

    /// Non-unix targets have no mapping support; callers fall back to
    /// positioned reads.
    #[cfg(not(unix))]
    pub fn map(_file: &File) -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is only supported on unix targets",
        ))
    }

    /// The mapped bytes.
    #[cfg(unix)]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the region [ptr, ptr+len) stays mapped and immutable
        // for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The mapped bytes (unreachable off-unix: `map` never succeeds).
    #[cfg(not(unix))]
    pub fn as_slice(&self) -> &[u8] {
        &[]
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successful map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: ptr/len are exactly what mmap returned; double-unmap is
        // impossible because drop runs once.
        unsafe {
            sys::munmap(self.ptr.as_ptr() as *mut _, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents_read_only() {
        let dir = std::env::temp_dir().join("vmmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = File::open(&path).unwrap();
        match Mmap::map(&file) {
            Ok(map) => {
                assert_eq!(map.len(), payload.len());
                assert!(!map.is_empty());
                assert_eq!(map.as_slice(), &payload[..]);
            }
            Err(e) if cfg!(unix) => panic!("unix map must succeed: {e}"),
            Err(_) => {}
        }
    }

    #[test]
    fn empty_files_are_refused() {
        let dir = std::env::temp_dir().join("vmmap_test_empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        assert!(Mmap::map(&file).is_err());
    }
}
