//! `Serialize` / `Deserialize` implementations for std types.

use crate::ser::SerializeSeq as _;
use crate::{de, Deserialize, Deserializer, Serialize, Serializer, Value, ValueDeserializer};

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(2))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.end()
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(3))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.serialize_element(&self.2)?;
        seq.end()
    }
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn number<'de, D: Deserializer<'de>>(deserializer: D, what: &str) -> Result<f64, D::Error> {
    match deserializer.deserialize_value()? {
        Value::Number(n) => Ok(n),
        other => Err(de::Error::custom(format!("expected {what}, got {other:?}"))),
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let n = number(deserializer, stringify!($t))?;
                if n.fract() != 0.0 || n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(de::Error::custom(format!(
                        "number {n} is not a valid {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        number(deserializer, "f64")
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(number(deserializer, "f32")? as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::String(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Null => Ok(()),
            other => Err(de::Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Null => Ok(None),
            value => Ok(Some(T::deserialize(ValueDeserializer::<D::Error>::new(
                value,
            ))?)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| T::deserialize(ValueDeserializer::<D::Error>::new(v)))
                .collect(),
            other => Err(de::Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Array(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = A::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                let b = B::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                Ok((a, b))
            }
            other => Err(de::Error::custom(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Array(items) if items.len() == 3 => {
                let mut it = items.into_iter();
                let a = A::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                let b = B::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                let c = C::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                Ok((a, b, c))
            }
            other => Err(de::Error::custom(format!(
                "expected 3-element array, got {other:?}"
            ))),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(n) => serializer.serialize_f64(*n),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(fields) => {
                // Objects round-trip through the struct machinery only with
                // static names; emit via the value path instead.
                let mut seq = serializer.serialize_seq(Some(fields.len()))?;
                for (k, v) in fields {
                    seq.serialize_element(&(k.clone(), v.clone()))?;
                }
                seq.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_value()
    }
}
