//! Deserialization-side helper traits.

use std::fmt::Display;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}
