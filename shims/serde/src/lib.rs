//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small serde-compatible core: the [`Serialize`] / [`Deserialize`] traits,
//! a [`Serializer`] / [`Deserializer`] pair narrowed to the operations the
//! Veritas code uses, and `#[derive(Serialize, Deserialize)]` proc-macros
//! (from the sibling `serde_derive` shim) for structs with named fields,
//! supporting the `#[serde(skip)]` and `#[serde(with = "module")]` field
//! attributes.
//!
//! Unlike real serde's visitor-driven data model, this shim is **value
//! based**: serialization lowers everything to the JSON-like [`Value`] tree
//! and deserialization lifts from it. That is a deliberate simplification —
//! the only wire format the workspace uses is JSON (via the `serde_json`
//! shim), and a value tree keeps the derive macro and the format crate tiny
//! while preserving serde's public trait signatures, so swapping the real
//! crates back in later is a manifest change, not a source change.

#![deny(missing_docs)]

use std::marker::PhantomData;

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;

mod impls;

/// A JSON-like tree: the common data model this shim serializes into and
/// deserializes out of.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number. JSON does not distinguish integers from floats; 53-bit
    /// integer precision is sufficient for every quantity in this workspace.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object; insertion-ordered, no duplicate keys expected.
    Object(Vec<(String, Value)>),
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serializer: the sink side of the data model.
///
/// Narrowed to the forms the workspace emits: scalars, strings, options,
/// sequences, and named-field structs.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value (`null`).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A deserializer: the source side of the data model.
///
/// In this value-based shim, a deserializer is anything that can yield one
/// [`Value`] tree; typed deserialization then lifts from the tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Consumes the deserializer, yielding its value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A [`Serializer`] that lowers any `Serialize` type into a [`Value`] tree,
/// parameterized over the caller's error type.
pub struct ValueSerializer<E> {
    _marker: PhantomData<fn() -> E>,
}

impl<E> ValueSerializer<E> {
    /// Creates a value serializer.
    pub fn new() -> Self {
        Self {
            _marker: PhantomData,
        }
    }
}

impl<E> Default for ValueSerializer<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: ser::Error> Serializer for ValueSerializer<E> {
    type Ok = Value;
    type Error = E;
    type SerializeSeq = SeqBuilder<E>;
    type SerializeStruct = StructBuilder<E>;

    fn serialize_bool(self, v: bool) -> Result<Value, E> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, E> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, E> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, E> {
        Ok(Value::Number(v))
    }

    fn serialize_str(self, v: &str) -> Result<Value, E> {
        Ok(Value::String(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Value, E> {
        Ok(Value::Null)
    }

    fn serialize_none(self) -> Result<Value, E> {
        Ok(Value::Null)
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Value, E> {
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder<E>, E> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
            _marker: PhantomData,
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<StructBuilder<E>, E> {
        Ok(StructBuilder {
            fields: Vec::with_capacity(len),
            _marker: PhantomData,
        })
    }
}

/// Accumulates sequence elements into a [`Value::Array`].
pub struct SeqBuilder<E> {
    items: Vec<Value>,
    _marker: PhantomData<fn() -> E>,
}

impl<E: ser::Error> ser::SerializeSeq for SeqBuilder<E> {
    type Ok = Value;
    type Error = E;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), E> {
        self.items.push(value.serialize(ValueSerializer::new())?);
        Ok(())
    }

    fn end(self) -> Result<Value, E> {
        Ok(Value::Array(self.items))
    }
}

/// Accumulates struct fields into a [`Value::Object`].
pub struct StructBuilder<E> {
    fields: Vec<(String, Value)>,
    _marker: PhantomData<fn() -> E>,
}

impl<E: ser::Error> ser::SerializeStruct for StructBuilder<E> {
    type Ok = Value;
    type Error = E;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), E> {
        self.fields
            .push((name.to_owned(), value.serialize(ValueSerializer::new())?));
        Ok(())
    }

    fn end(self) -> Result<Value, E> {
        Ok(Value::Object(self.fields))
    }
}

/// A [`Deserializer`] over an in-memory [`Value`], parameterized over the
/// caller's error type so derive-generated code can thread `D::Error`
/// through nested field deserialization.
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps a value tree.
    pub fn new(value: Value) -> Self {
        Self {
            value,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn deserialize_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// Lowers any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized, E: ser::Error>(value: &T) -> Result<Value, E> {
    value.serialize(ValueSerializer::new())
}

/// Lifts a typed value out of a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(value: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::<E>::new(value))
}

/// Support code for derive-generated implementations. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::Value;

    /// Removes and returns the named field from a struct's decoded field
    /// list, or `None` if absent.
    pub fn take_struct_field(fields: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
        let idx = fields.iter().position(|(k, _)| k == name)?;
        Some(fields.swap_remove(idx).1)
    }

    /// Error text for a struct decoded from a non-object value.
    pub fn expected_object(struct_name: &str, got: &Value) -> String {
        format!("expected a JSON object for struct `{struct_name}`, got {got:?}")
    }

    /// Error text for a missing struct field.
    pub fn missing_field(struct_name: &str, field: &str) -> String {
        format!("missing field `{field}` in struct `{struct_name}`")
    }
}
