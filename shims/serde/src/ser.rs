//! Serialization-side helper traits.

use std::fmt::Display;

use crate::Serialize;

/// Errors produced while serializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// Sub-serializer returned by [`crate::Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error;

    /// Serializes one sequence element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;

    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`crate::Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error;

    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
