//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the rand 0.8 API the Veritas code actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64 —
//! not the ChaCha12 core real rand uses, but deterministic, portable, and
//! statistically solid for simulation and property-testing workloads. All
//! sampling here is reproducible given a seed, which the workspace relies on
//! for deterministic tests and experiments.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution in rand terms).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform distribution over a finite range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws a value uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + off) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = low + (high - low) * unit;
                // Floating rounding can land exactly on `high`; fall back to
                // `low`, which is in range for every sign combination
                // (bit-decrement tricks go the wrong way for high <= 0).
                if v < high { v } else { low }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators seedable from fixed state, for reproducible streams.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds a generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a single `u64`, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. API-compatible with `rand::rngs::StdRng`
    /// for the operations this workspace uses.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn seeding_is_deterministic() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn unit_floats_stay_in_range() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..10_000 {
                let x: f64 = rng.gen();
                assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn ranges_are_respected() {
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..10_000 {
                let v = rng.gen_range(3usize..17);
                assert!((3..17).contains(&v));
                let w = rng.gen_range(-2.5f64..=2.5);
                assert!((-2.5..=2.5).contains(&w));
                // Non-positive upper bounds: the rounding fallback must not
                // escape the half-open range or hit from_bits underflow.
                let n = rng.gen_range(-1.0f64..0.0);
                assert!((-1.0..0.0).contains(&n));
                let m = rng.gen_range(-2.0f64..-1.0);
                assert!((-2.0..-1.0).contains(&m));
                let g = rng.gen_range(0u32..4);
                assert!(g < 4);
            }
        }

        #[test]
        fn gen_bool_tracks_probability() {
            let mut rng = StdRng::seed_from_u64(11);
            let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
            let rate = hits as f64 / 100_000.0;
            assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
        }
    }
}
