//! Vendored minimal stand-in for `criterion`.
//!
//! Provides the API the workspace's benches use — [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], [`BenchmarkId`],
//! [`black_box`], benchmark groups, and `Bencher::iter` — backed by a
//! simple calibrated timing loop instead of criterion's full statistical
//! machinery.
//!
//! Each benchmark is calibrated to a per-sample iteration count, timed over
//! `sample_size` samples, and reported as the median ns/iteration on
//! stdout. When the `VERITAS_BENCH_JSON` environment variable names a file,
//! one JSON line per benchmark is appended to it (`{"id": ..., "median_ns":
//! ..., "samples": [...]}`), which is how the repo records its checked-in
//! baselines.

#![deny(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies. Re-exported from `std::hint`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id from a function name alone.
    pub fn from_function(function: impl Into<String>) -> Self {
        Self {
            function: function.into(),
            parameter: None,
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self::from_function(name)
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self::from_function(name)
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    samples_target: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count so each sample takes
    /// a measurable slice of wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes ~5 ms.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        let sample_iters = ((5e6 / per_iter_ns.max(0.1)) as u64).clamp(1, 1 << 24);
        for _ in 0..self.samples_target {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / sample_iters as f64);
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments. Cargo invokes bench binaries with
    /// `--bench`; a bare (non-flag) argument is treated as a substring
    /// filter on benchmark ids, mirroring criterion's CLI.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(BenchmarkId::from_function(id), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let rendered = id.render();
        if let Some(filter) = &self.filter {
            if !rendered.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples_target: self.sample_size,
            samples_ns: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            println!("bench {rendered:<50} (no samples)");
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = samples[samples.len() / 2];
        println!("bench {rendered:<50} median {:>12}/iter", format_ns(median));
        if let Ok(path) = std::env::var("VERITAS_BENCH_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let sample_list = samples
                    .iter()
                    .map(|s| format!("{s:.1}"))
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(
                    file,
                    "{{\"id\":\"{rendered}\",\"median_ns\":{median:.1},\"samples\":[{sample_list}]}}"
                );
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = self.scoped(id.into());
        self.criterion.run(id, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = self.scoped(id.into());
        self.criterion.run(id, |b| f(b, input));
        self
    }

    /// Finishes the group. (Statistics finalization in real criterion;
    /// a no-op consume here.)
    pub fn finish(self) {}

    fn scoped(&self, id: BenchmarkId) -> BenchmarkId {
        BenchmarkId {
            function: format!("{}/{}", self.name, id.function),
            parameter: id.parameter,
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render_with_parameters() {
        assert_eq!(BenchmarkId::new("f", 10).render(), "f/10");
        assert_eq!(BenchmarkId::from_function("g").render(), "g");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        // Runs to completion and prints one line; mostly a smoke test that
        // calibration terminates for a near-zero-cost body.
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}
