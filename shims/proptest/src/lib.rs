//! Vendored minimal stand-in for `proptest`.
//!
//! A deterministic property-testing harness exposing the slice of the
//! proptest API the workspace uses: the [`Strategy`] trait with
//! [`Strategy::prop_map`], range and tuple strategies, [`any`],
//! [`collection::vec`], the [`proptest!`] macro with
//! `#![proptest_config(...)]` support, and panic-based `prop_assert*`
//! macros.
//!
//! Unlike real proptest there is **no shrinking** and **no persisted
//! failure file**: every test case is generated from a seed derived
//! deterministically from the test's module path, name, and case index, so
//! a CI failure reproduces identically on any machine with no extra state.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod test_runner;

/// Everything a property test file needs.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` works as in real proptest.
    pub use crate as prop;
    pub use crate::test_runner::{Config, ProptestConfig};
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// A recipe for generating values of some type.
///
/// Strategies here are simple samplers: given an RNG they produce one value.
/// (Real proptest strategies also carry shrinking machinery; the shim's
/// deterministic seeds make failures reproducible without it.)
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy over all values of `T` (see [`any`]).
#[derive(Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Derives the per-case RNG seed from the test identity and case index.
/// FNV-1a over the test path, mixed with the case number — stable across
/// runs, platforms, and test orderings.
#[doc(hidden)]
pub fn __seed_for(test_path: &str, case: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Asserts a property within a [`proptest!`] body.
///
/// Panics (failing the test) when the condition is false. Deterministic
/// seeding makes the failing case reproducible without shrink state.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => { assert_eq!($lhs, $rhs); };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => { assert_eq!($lhs, $rhs, $($fmt)+); };
}

/// Asserts inequality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => { assert_ne!($lhs, $rhs); };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => { assert_ne!($lhs, $rhs, $($fmt)+); };
}

/// Declares property tests.
///
/// Supports the two forms the workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(bindings in strategies) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategy = ($($strategy,)+);
                for __case in 0..__config.cases {
                    let __seed = $crate::__seed_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    let mut __rng = <$crate::__rand::rngs::StdRng as
                        $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                    let ($($pat,)+) = $crate::Strategy::sample(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Re-export for the [`proptest!`] expansion. Not public API.
#[doc(hidden)]
pub use rand as __rand;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds((a, b) in (0usize..10, -1.0f64..=1.0)) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..=1.0).contains(&b));
        }

        #[test]
        fn mapped_strategies_apply_the_function(doubled in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_size((xs, probe) in (prop::collection::vec(0.0f64..5.0, 1..30), any::<u64>())) {
            prop_assert!(!xs.is_empty() && xs.len() < 30);
            prop_assert!(xs.iter().all(|x| (0.0..5.0).contains(x)));
            let _ = probe;
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(super::__seed_for("a::b", 0), super::__seed_for("a::b", 0));
        assert_ne!(super::__seed_for("a::b", 0), super::__seed_for("a::b", 1));
        assert_ne!(super::__seed_for("a::b", 0), super::__seed_for("a::c", 0));
    }
}
