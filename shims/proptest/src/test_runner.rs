//! Test-runner configuration.

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim keeps the same bar.
        Self { cases: 256 }
    }
}

/// Proptest's historical name for [`Config`].
pub type ProptestConfig = Config;
