//! Collection strategies (`prop::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length distribution for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    low: usize,
    /// Inclusive upper bound.
    high: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { low: n, high: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            low: r.start,
            high: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            low: *r.start(),
            high: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.low..=self.size.high);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Creates a strategy generating vectors whose length falls in `size` and
/// whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
