//! Workspace umbrella crate for the Veritas reproduction.
//!
//! This crate exists to host the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`. It re-exports the member
//! crates so examples and downstream experiments can depend on a single
//! package.

pub use veritas;
pub use veritas_abr as abr;
pub use veritas_ehmm as ehmm;
pub use veritas_engine as engine;
pub use veritas_fugu as fugu;
pub use veritas_media as media;
pub use veritas_net as net;
pub use veritas_player as player;
pub use veritas_trace as trace;
