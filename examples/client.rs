//! Example: a minimal JSONL client for the `veritasd` service.
//!
//! Connects to a running daemon, posts either a [`QuerySet`] (from a
//! file, or the built-in example set) or a metrics request, and prints
//! the response lines: one JSON line per [`QueryRecord`], then the
//! summary. Error envelopes (`{"error": {"kind", "detail"}}`) are
//! reported on stderr with a nonzero exit — including the `"overloaded"`
//! shed response, which a production client would back off and retry.
//!
//! ```sh
//! # terminal 1
//! cargo run --release --bin veritasd -- --addr 127.0.0.1:4617 --synthetic 4
//! # terminal 2
//! cargo run --release --example client -- 127.0.0.1:4617 queries.json
//! cargo run --release --example client -- 127.0.0.1:4617 --metrics
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use veritas_engine::{ErrorEnvelope, QuerySet, SummaryEnvelope};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, request) = match args.as_slice() {
        [addr] => (addr, None),
        [addr, flag] if flag == "--metrics" => (addr, Some(r#"{"metrics": true}"#.to_string())),
        [addr, query_path] => match std::fs::read_to_string(query_path) {
            Ok(json) => match QuerySet::from_json(&json) {
                // Re-serialize compactly: the wire protocol is one JSON
                // object per line.
                Ok(set) => (
                    addr,
                    Some(format!(
                        r#"{{"query": {}}}"#,
                        serde_json::to_string(&set).expect("query sets always serialize")
                    )),
                ),
                Err(e) => {
                    eprintln!("client: cannot parse {query_path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("client: cannot read {query_path}: {e}");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!("usage: client <host:port> [queries.json | --metrics]");
            return ExitCode::from(2);
        }
    };
    // No file argument: post the engine's built-in example query set.
    let request = request.unwrap_or_else(|| {
        format!(
            r#"{{"query": {}}}"#,
            serde_json::to_string(&QuerySet::example()).expect("query sets always serialize")
        )
    });

    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("client: cannot connect to {addr}: {e} (is veritasd running?)");
            return ExitCode::from(3);
        }
    };
    let mut reader = BufReader::new(stream.try_clone().expect("cloning a socket handle works"));
    let mut writer = stream;
    writeln!(writer, "{request}")
        .and_then(|()| writer.flush())
        .expect("request write");

    // Print every response line; stop at the terminal line (a summary for
    // queries, a single line for metrics).
    let expects_summary = request.starts_with(r#"{"query""#);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                eprintln!("client: the service hung up before the terminal line");
                return ExitCode::from(3);
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("client: read failed: {e}");
                return ExitCode::from(3);
            }
        }
        let trimmed = line.trim();
        if let Some(error) = ErrorEnvelope::parse(trimmed) {
            eprintln!(
                "client: service refused the request [{}]: {}",
                error.kind, error.detail
            );
            return ExitCode::FAILURE;
        }
        println!("{trimmed}");
        if !expects_summary || serde_json::from_str::<SummaryEnvelope>(trimmed).is_ok() {
            return ExitCode::SUCCESS;
        }
    }
}
