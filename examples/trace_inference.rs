//! Trace inference close-up: for one session, print the ground-truth GTBW,
//! the Baseline reconstruction, and several Veritas posterior samples side
//! by side (the paper's Figure 7), plus reconstruction error statistics.
//!
//! Run with: `cargo run --release --example trace_inference`

use veritas::{baseline_trace, Abduction, VeritasConfig};
use veritas_abr::Mpc;
use veritas_media::VideoAsset;
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};
use veritas_trace::stats::{trace_mae, underestimation_fraction};

fn main() {
    let asset = VideoAsset::paper_default(1);
    let truth = FccLike::new(3.0, 8.0).generate(700.0, 7);
    let player = PlayerConfig::paper_default();
    let mut abr = Mpc::new();
    let log = run_session(&asset, &mut abr, &truth, &player);

    let config = VeritasConfig::paper_default();
    let abduction = Abduction::infer(&log, &config);
    let samples = abduction.sample_traces(5);
    let baseline = baseline_trace(&log, config.delta_s);
    let horizon = log.session_duration_s.min(truth.duration());
    let truth_cut = truth.with_duration(horizon);

    println!("time(s)   GTBW   Baseline   Veritas samples (5)");
    let mut t = 2.5;
    while t < horizon {
        print!(
            "{t:>7.0}  {:>5.2}  {:>9.2}  ",
            truth.bandwidth_at(t),
            baseline.bandwidth_at(t)
        );
        for s in &samples {
            print!("{:>5.2} ", s.bandwidth_at(t));
        }
        println!();
        t += 25.0;
    }

    println!("\nReconstruction quality over the session:");
    println!(
        "  Baseline: MAE {:.3} Mbps, underestimates by >1 Mbps at {:.0}% of time points",
        trace_mae(&truth_cut, &baseline, config.delta_s),
        100.0 * underestimation_fraction(&truth_cut, &baseline, config.delta_s, 1.0)
    );
    for (i, s) in samples.iter().enumerate() {
        println!(
            "  Veritas sample {i}: MAE {:.3} Mbps, underestimates at {:.0}% of time points",
            trace_mae(&truth_cut, s, config.delta_s),
            100.0 * underestimation_fraction(&truth_cut, s, config.delta_s, 1.0)
        );
    }
    println!(
        "  Veritas Viterbi (most likely): MAE {:.3} Mbps",
        trace_mae(&truth_cut, &abduction.viterbi_trace(), config.delta_s)
    );
}
