//! Quickstart: record a streaming session, abduce the hidden bandwidth, and
//! answer one counterfactual question.
//!
//! Run with: `cargo run --release --example quickstart`

use veritas::{Abduction, CounterfactualEngine, Scenario, VeritasConfig};
use veritas_abr::Mpc;
use veritas_media::VideoAsset;
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};
use veritas_trace::stats::trace_mae;

fn main() {
    // ----------------------------------------------------------------- 1 --
    // A "deployed" video session (Setting A): the MPC algorithm streams a
    // 10-minute VBR clip over a hidden ground-truth bandwidth (GTBW) trace.
    let asset = VideoAsset::paper_default(1);
    let ground_truth = FccLike::new(3.0, 8.0).generate(700.0, 42);
    let mut deployed_abr = Mpc::new();
    let player = PlayerConfig::paper_default();
    let log = run_session(&asset, &mut deployed_abr, &ground_truth, &player);
    println!(
        "Deployed session ({} chunks) with {}:",
        log.records.len(),
        log.abr_name
    );
    let qoe = log.qoe();
    println!(
        "  mean SSIM {:.4}, rebuffering {:.2}%, avg bitrate {:.2} Mbps",
        qoe.mean_ssim, qoe.rebuffer_ratio_percent, qoe.avg_bitrate_mbps
    );

    // ----------------------------------------------------------------- 2 --
    // Veritas abduction: infer the latent GTBW from the observed log only.
    let config = VeritasConfig::paper_default();
    let abduction = Abduction::infer(&log, &config);
    let inferred = abduction.viterbi_trace();
    let baseline = veritas::baseline_trace(&log, config.delta_s);
    let horizon = log.session_duration_s.min(ground_truth.duration());
    let truth_cut = ground_truth.with_duration(horizon);
    println!("\nGTBW reconstruction error (MAE, Mbps):");
    println!(
        "  Veritas  {:.3}",
        trace_mae(&truth_cut, &inferred, config.delta_s)
    );
    println!(
        "  Baseline {:.3}",
        trace_mae(&truth_cut, &baseline, config.delta_s)
    );

    // ----------------------------------------------------------------- 3 --
    // Counterfactual: what if BBA had been deployed instead of MPC?
    let engine = CounterfactualEngine::new(config);
    let scenario = Scenario::new("bba", player, asset.clone());
    let veritas_pred = engine.veritas_predict_from_abduction(&abduction, &scenario);
    let baseline_pred = engine.baseline_predict(&log, &scenario);
    let oracle = engine.oracle_predict(&ground_truth, &log, &scenario);

    let (ssim_lo, ssim_hi) = veritas_pred.ssim_range();
    let (reb_lo, reb_hi) = veritas_pred.rebuffer_range();
    println!("\nCounterfactual: MPC -> BBA on the same (latent) network");
    println!("  metric         oracle    veritas(low..high)   baseline");
    println!(
        "  mean SSIM      {:.4}    {:.4}..{:.4}      {:.4}",
        oracle.mean_ssim, ssim_lo, ssim_hi, baseline_pred.mean_ssim
    );
    println!(
        "  rebuffer (%)   {:.2}      {:.2}..{:.2}          {:.2}",
        oracle.rebuffer_ratio_percent, reb_lo, reb_hi, baseline_pred.rebuffer_ratio_percent
    );
    println!(
        "  bitrate (Mbps) {:.2}      {:.2}..{:.2}          {:.2}",
        oracle.avg_bitrate_mbps,
        veritas_pred.bitrate_range().0,
        veritas_pred.bitrate_range().1,
        baseline_pred.avg_bitrate_mbps
    );
}
