//! Buffer-sizing what-if: a publisher deployed MPC with a 5-second client
//! buffer and wants to know, from the logs alone, what raising the buffer to
//! 30 seconds would have done (the paper's Figure 10).
//!
//! Run with: `cargo run --release --example buffer_sizing`

use veritas::{CounterfactualEngine, Scenario, VeritasConfig};
use veritas_abr::Mpc;
use veritas_media::VideoAsset;
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};

fn main() {
    let traces = 8usize;
    let asset = VideoAsset::paper_default(1);
    let deployed_player = PlayerConfig::paper_default(); // 5 s buffer
    let generator = FccLike::new(3.0, 8.0);
    let engine = CounterfactualEngine::new(VeritasConfig::paper_default());

    println!("What if the client buffer were 30 s instead of 5 s? (MPC, {traces} traces)");
    for &buffer_s in &[10.0, 30.0, 60.0] {
        let scenario = Scenario::new(
            "mpc",
            deployed_player.with_buffer_capacity(buffer_s),
            asset.clone(),
        );
        let mut oracle_reb = 0.0;
        let mut veritas_reb = 0.0;
        let mut baseline_reb = 0.0;
        let mut oracle_ssim = 0.0;
        let mut veritas_ssim = 0.0;
        let mut baseline_ssim = 0.0;
        for seed in 0..traces as u64 {
            let truth = generator.generate(700.0, 2000 + seed);
            let mut abr = Mpc::new();
            let log = run_session(&asset, &mut abr, &truth, &deployed_player);
            let cmp = engine.compare(&log, &truth, &scenario);
            oracle_reb += cmp.oracle.rebuffer_ratio_percent;
            veritas_reb += cmp.veritas.median_of(|q| q.rebuffer_ratio_percent);
            baseline_reb += cmp.baseline.rebuffer_ratio_percent;
            oracle_ssim += cmp.oracle.mean_ssim;
            veritas_ssim += cmp.veritas.median_of(|q| q.mean_ssim);
            baseline_ssim += cmp.baseline.mean_ssim;
        }
        let n = traces as f64;
        println!("\nbuffer = {buffer_s:>4.0} s:");
        println!(
            "  mean SSIM      oracle {:.4}  veritas {:.4}  baseline {:.4}",
            oracle_ssim / n,
            veritas_ssim / n,
            baseline_ssim / n
        );
        println!(
            "  rebuffer (%)   oracle {:.3}  veritas {:.3}  baseline {:.3}",
            oracle_reb / n,
            veritas_reb / n,
            baseline_reb / n
        );
    }
}
