//! Example: the declarative query engine end to end.
//!
//! Builds a [`QuerySet`] programmatically (the same structure `veritas run
//! queries.json` reads from disk), prints its JSON form, executes it over
//! a small synthetic corpus through the cached engine, and shows the JSONL
//! result stream plus the cache's effect.
//!
//! ```sh
//! cargo run --release --example queries
//! ```

use veritas::VeritasConfig;
use veritas_engine::{Engine, Query, QueryKind, QuerySet, ScenarioSpec, SessionCorpus};

fn main() {
    // 1. A declarative query set: every paper query family at once.
    //    Serialized, this is exactly the file format the `veritas` CLI
    //    executes (`veritas example-queries` prints a starter).
    let set = QuerySet::new("demo", VeritasConfig::paper_default().with_samples(3))
        .with_query(Query::abduction("posterior"))
        .with_query(Query::counterfactual(
            "what-if-bba",
            ScenarioSpec::abr("bba"),
        ))
        .with_query(Query::counterfactual(
            "what-if-30s-buffer",
            ScenarioSpec::buffer(30.0),
        ))
        .with_query(Query::interventional("next-chunk").with_candidate_size(2e6));
    println!("--- query file (queries.json) ---");
    println!("{}", set.to_json());

    // Query files round-trip losslessly.
    assert_eq!(QuerySet::from_json(&set.to_json()).unwrap(), set);

    // 2. A corpus: three deployed MPC sessions over hidden synthetic
    //    GTBW traces (use SessionCorpus::from_dir for recorded logs).
    let corpus = SessionCorpus::synthetic(3, 42);

    // 3. Execute. Every (query, session) pair is one work unit; the four
    //    queries share a single cached abduction per session.
    let engine = Engine::new();
    let report = engine.run(&corpus, &set).expect("valid query set");

    println!("--- results (JSONL, one line per unit) ---");
    print!("{}", report.to_jsonl());
    println!("--- summary ---");
    println!("{}", report.summary_json());

    let s = &report.summary;
    assert_eq!(s.errors, 0, "all units must succeed");
    assert_eq!(
        s.cache_misses as usize,
        corpus.len(),
        "one abduction per session"
    );
    assert_eq!(s.cache_hits, 3 * corpus.len() as u64);
    println!(
        "\n{} units over {} sessions: {} abductions computed, {} served from cache",
        s.units, s.sessions, s.cache_misses, s.cache_hits
    );

    // 4. Pull one structured answer back out: the BBA counterfactual
    //    ranges for the first session.
    let record = report.records_for("what-if-bba")[0];
    assert_eq!(record.kind, QueryKind::Counterfactual);
    let veritas = record.output.as_ref().unwrap().veritas.unwrap();
    println!(
        "what-if-bba on {}: SSIM in [{:.4}, {:.4}], rebuffer in [{:.2}%, {:.2}%]",
        record.session,
        veritas.ssim_low,
        veritas.ssim_high,
        veritas.rebuffer_low,
        veritas.rebuffer_high
    );
}
