//! Example: the declarative query engine end to end — compile, execute,
//! consume.
//!
//! Builds a [`QuerySet`] programmatically (the same structure `veritas run
//! queries.json` reads from disk), compiles it into a [`QueryPlan`],
//! executes it over a small synthetic corpus through the cached engine —
//! first as a blocking batch, then as a sharded record stream — and shows
//! the new compound query kinds: a configuration sweep and a trace-level
//! aggregation.
//!
//! ```sh
//! cargo run --release --example queries
//! ```

use veritas::VeritasConfig;
use veritas_engine::{
    AggregateMetric, AggregateSpec, ConfigSweep, Engine, Query, QueryKind, QueryPlan, QuerySet,
    ScenarioSpec, SessionCorpus, AGGREGATE_SESSION,
};

fn main() {
    // 1. A declarative query set: every paper query family at once.
    //    Serialized, this is exactly the file format the `veritas` CLI
    //    executes (`veritas example-queries` prints a starter).
    let set = QuerySet::new("demo", VeritasConfig::paper_default().with_samples(3))
        .with_query(Query::abduction("posterior"))
        .with_query(Query::counterfactual(
            "what-if-bba",
            ScenarioSpec::abr("bba"),
        ))
        .with_query(Query::counterfactual(
            "what-if-30s-buffer",
            ScenarioSpec::buffer(30.0),
        ))
        .with_query(Query::interventional("next-chunk").with_candidate_size(2e6));
    println!("--- query file (queries.json) ---");
    println!("{}", set.to_json());

    // Query files round-trip losslessly.
    assert_eq!(QuerySet::from_json(&set.to_json()).unwrap(), set);

    // 2. A corpus: three deployed MPC sessions over hidden synthetic
    //    GTBW traces (use SessionCorpus::from_dir for recorded logs).
    let corpus = SessionCorpus::synthetic(3, 42);

    // 3. Compile. The plan is the flat unit list the executor drains:
    //    session selectors resolved, scenarios materialized once per
    //    distinct spec, config fingerprints precomputed.
    let plan = QueryPlan::compile(&set, &corpus).expect("valid query set");
    println!(
        "--- plan: {} units across {} queries, {} config(s) ---",
        plan.units().len(),
        set.queries.len(),
        plan.configs().len()
    );

    // 4. Execute + consume, batch-shaped: submit(...).wait() restores
    //    deterministic order (Engine::run is exactly this wrapper).
    let engine = Engine::new();
    let report = engine
        .submit(&corpus, &plan)
        .expect("plan fits corpus")
        .wait();

    println!("--- results (JSONL, one line per unit) ---");
    print!("{}", report.to_jsonl());
    println!("--- summary ---");
    println!("{}", report.summary_json());

    let s = &report.summary;
    assert_eq!(s.errors, 0, "all units must succeed");
    assert_eq!(
        s.cache_misses as usize,
        corpus.len(),
        "one abduction per session"
    );
    assert_eq!(s.cache_hits, 3 * corpus.len() as u64);
    println!(
        "\n{} units over {} sessions: {} abductions computed, {} served from cache",
        s.units, s.sessions, s.cache_misses, s.cache_hits
    );

    // 5. Pull one structured answer back out: the BBA counterfactual
    //    ranges for the first session.
    let record = report.records_for("what-if-bba")[0];
    assert_eq!(record.kind, QueryKind::Counterfactual);
    let veritas = record.output.as_ref().unwrap().veritas.unwrap();
    println!(
        "what-if-bba on {}: SSIM in [{:.4}, {:.4}], rebuffer in [{:.2}%, {:.2}%]",
        record.session,
        veritas.ssim_low,
        veritas.ssim_high,
        veritas.rebuffer_low,
        veritas.rebuffer_high
    );

    // 6. The streaming path, with the compound query kinds: a sweep over
    //    the emission noise σ and a corpus-level QoE aggregation. The
    //    handle is an Iterator — records arrive in completion order, and
    //    the aggregation folds from the stream (only scalars are kept).
    let compound = QuerySet::new("compound", VeritasConfig::paper_default().with_samples(2))
        .with_query(Query::sweep(
            "noise-sweep",
            ConfigSweep::new().over_sigma(vec![0.25, 0.5, 1.0]),
        ))
        .with_query(Query::aggregate(
            "fleet-rebuffer",
            AggregateSpec::of(AggregateMetric::RebufferRatioPercent)
                .with_scenario(ScenarioSpec::abr("bba")),
        ));
    let plan = QueryPlan::compile(&compound, &corpus).expect("valid compound set");
    let mut handle = Engine::new()
        .with_shards(2)
        .submit(&corpus, &plan)
        .expect("plan fits corpus");
    println!("\n--- streaming (completion order, 2 shards) ---");
    for record in &mut handle {
        match record.variant.as_deref() {
            Some(variant) => println!(
                "  [{}] {} on {}: mean capacity {:.2} Mbps",
                record.query_id,
                variant,
                record.session,
                record
                    .output
                    .as_ref()
                    .and_then(|o| o.mean_capacity_mbps)
                    .unwrap_or(f64::NAN)
            ),
            None if record.session == AGGREGATE_SESSION => {
                let agg = record.output.as_ref().unwrap().aggregate.unwrap();
                println!(
                    "  [{}] fleet fold over {} sessions: mean {:.2}%, p50 {:.2}%, p95 {:.2}%",
                    record.query_id, agg.sessions, agg.mean, agg.p50, agg.p95
                );
            }
            None => println!(
                "  [{}] {} contributes {:.3}",
                record.query_id,
                record.session,
                record
                    .output
                    .as_ref()
                    .and_then(|o| o.metric_value)
                    .unwrap_or(f64::NAN)
            ),
        }
    }
    let summary = handle.into_summary();
    assert_eq!(summary.errors, 0);
    // 3 sigma variants x 3 sessions + 3 aggregate units + 1 fold record.
    assert_eq!(summary.units, 13);
    println!(
        "compound set: {} records in {:.1} ms across {} shards",
        summary.units, summary.elapsed_ms, summary.shards
    );
}
