//! Counterfactual ABR change across a small trace corpus: what would have
//! happened to each recorded MPC session had BBA (or BOLA) been deployed?
//!
//! This is a scaled-down version of the paper's Figures 8, 9 and 13.
//!
//! Run with: `cargo run --release --example counterfactual_abr [bba|bola]`

use veritas::{CounterfactualEngine, Scenario, VeritasConfig};
use veritas_abr::Mpc;
use veritas_media::VideoAsset;
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};

fn main() {
    let target_abr = std::env::args().nth(1).unwrap_or_else(|| "bba".to_string());
    let traces = 10usize;

    let asset = VideoAsset::paper_default(1);
    let player = PlayerConfig::paper_default();
    let generator = FccLike::new(3.0, 8.0);
    let engine = CounterfactualEngine::new(VeritasConfig::paper_default());
    let scenario = Scenario::new(&target_abr, player, asset.clone());

    println!("Counterfactual: MPC -> {target_abr} over {traces} FCC-like traces");
    println!("trace  oracle_ssim  veritas_ssim(lo..hi)  baseline_ssim  |  oracle_reb%  veritas_reb%(lo..hi)  baseline_reb%");
    let mut baseline_ssim_err = 0.0;
    let mut veritas_ssim_err = 0.0;
    for seed in 0..traces as u64 {
        let truth = generator.generate(700.0, 1000 + seed);
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &truth, &player);
        let cmp = engine.compare(&log, &truth, &scenario);
        let (slo, shi) = cmp.veritas.ssim_range();
        let (rlo, rhi) = cmp.veritas.rebuffer_range();
        println!(
            "{seed:>5}  {:>11.4}  {:>9.4}..{:<9.4}  {:>13.4}  |  {:>11.2}  {:>8.2}..{:<8.2}  {:>13.2}",
            cmp.oracle.mean_ssim,
            slo,
            shi,
            cmp.baseline.mean_ssim,
            cmp.oracle.rebuffer_ratio_percent,
            rlo,
            rhi,
            cmp.baseline.rebuffer_ratio_percent,
        );
        veritas_ssim_err += (cmp.veritas.median_of(|q| q.mean_ssim) - cmp.oracle.mean_ssim).abs();
        baseline_ssim_err += (cmp.baseline.mean_ssim - cmp.oracle.mean_ssim).abs();
    }
    println!(
        "\nmean |SSIM error| vs oracle:  veritas {:.4}   baseline {:.4}",
        veritas_ssim_err / traces as f64,
        baseline_ssim_err / traces as f64
    );
}
