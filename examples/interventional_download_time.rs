//! Interventional query: in an ongoing session, predict the download time of
//! the next chunk for *every* candidate size — the query an ABR needs
//! answered before it can pick a quality — and compare Veritas against the
//! associational Fugu-style predictor (the paper's Figure 2(b)/Figure 12
//! setting, scaled down).
//!
//! Run with: `cargo run --release --example interventional_download_time`

use veritas::{InterventionalPredictor, VeritasConfig};
use veritas_abr::{Mpc, RandomAbr};
use veritas_fugu::{FuguConfig, FuguModel, TrainConfig};
use veritas_media::VideoAsset;
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};

fn main() {
    let asset = VideoAsset::paper_default(1);
    let player = PlayerConfig::paper_default();
    let generator = FccLike::new(0.5, 10.0);

    // Train Fugu on logs from the deployed MPC algorithm.
    println!("Training the Fugu-style predictor on 12 MPC sessions...");
    let training_logs: Vec<_> = (0..12u64)
        .map(|seed| {
            let truth = generator.generate(700.0, 3000 + seed);
            let mut abr = Mpc::new();
            run_session(&asset, &mut abr, &truth, &player)
        })
        .collect();
    let fugu = FuguModel::train_on_logs(
        &training_logs,
        FuguConfig {
            train: TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
            ..FuguConfig::default()
        },
    );
    println!("  training MAE: {:.3} s", fugu.training_mae_s);

    // Test on sessions whose chunk sizes were chosen at random — sequences
    // the deployed ABR would never have produced.
    let veritas = InterventionalPredictor::new(VeritasConfig::paper_default());
    let mut fugu_abs_err = Vec::new();
    let mut veritas_abs_err = Vec::new();
    let mut fugu_signed = 0.0;
    let mut veritas_signed = 0.0;
    let test_traces = 4u64;
    for seed in 0..test_traces {
        let truth = generator.generate(700.0, 4000 + seed);
        let mut abr = RandomAbr::new(seed);
        let log = run_session(&asset, &mut abr, &truth, &player);
        for (pred, actual) in fugu.predict_over_log(&log) {
            fugu_abs_err.push((pred - actual).abs());
            fugu_signed += pred - actual;
        }
        for (pred, actual) in veritas.predict_over_log(&log) {
            veritas_abs_err.push((pred - actual).abs());
            veritas_signed += pred - actual;
        }
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    let p90 = |v: &Vec<f64>| veritas_trace::stats::percentile(v, 90.0);
    println!("\nDownload-time prediction on randomized (interventional) chunk sequences:");
    println!("  predictor   MAE (s)   p90 |err| (s)   mean signed error (s)");
    println!(
        "  Fugu        {:>7.3}   {:>13.3}   {:>+20.3}",
        mean(&fugu_abs_err),
        p90(&fugu_abs_err),
        fugu_signed / fugu_abs_err.len() as f64
    );
    println!(
        "  Veritas     {:>7.3}   {:>13.3}   {:>+20.3}",
        mean(&veritas_abs_err),
        p90(&veritas_abs_err),
        veritas_signed / veritas_abs_err.len() as f64
    );
    println!("\nA negative signed error means the predictor under-estimates download");
    println!("times — the bias that makes an ABR overshoot the network (paper §2.2).");
}
