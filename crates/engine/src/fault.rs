//! Deterministic fault injection: the chaos layer the supervision
//! machinery (retries, self-healing caches, graceful drain) is proved
//! against.
//!
//! A [`FaultPlan`] is a seeded source of *reproducible* failure
//! decisions at a fixed set of instrumented points ([`FaultSite`]):
//! disk-cache reads and writes ([`crate::persist`]), `.vcorp` block
//! decodes ([`crate::store`]), abduction compute (the unit execution
//! path in the runner, both as a typed error and as a worker panic),
//! and service socket I/O ([`crate::service`]). Each site draws an
//! independent sequence of decisions: decision `n` at site `s` is a
//! pure function of `(seed, s, n)`, so two plans built from the same
//! spec make byte-identical decisions regardless of thread scheduling —
//! only *which worker* draws a given sequence number varies.
//!
//! Plans are wired in through [`crate::EngineBuilder::fault_plan`],
//! `veritas run --fault-spec` (or the `VERITAS_FAULT_SPEC`
//! environment variable), and `veritasd --fault-spec`, so CI can
//! chaos-test the real binaries. The core invariant the chaos tests
//! enforce: under any seeded plan with retries enabled, a run over an
//! intact corpus emits records identical (after timing normalization)
//! to the fault-free run.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An instrumented point where a [`FaultPlan`] may inject a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A persistent-store read ([`crate::DiskStore::load`]): the entry
    /// reads as missing, degrading to a cache miss.
    DiskRead,
    /// A persistent-store write ([`crate::DiskStore::save`]): the
    /// write-through fails (best-effort, so the query still succeeds).
    DiskWrite,
    /// A `.vcorp` block decode ([`crate::LazyCorpus`]): the session
    /// load fails with a typed corpus error — a retryable unit failure.
    Decode,
    /// Abduction compute: the unit fails with a typed error.
    Compute,
    /// Abduction compute, panic flavor: the worker closure panics —
    /// what panic isolation must turn into a typed record.
    ComputePanic,
    /// Service socket I/O: the connection is cut mid-request; the
    /// daemon must shrug and keep serving other connections.
    Socket,
}

impl FaultSite {
    /// Every site, in spec order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::DiskRead,
        FaultSite::DiskWrite,
        FaultSite::Decode,
        FaultSite::Compute,
        FaultSite::ComputePanic,
        FaultSite::Socket,
    ];

    /// The key this site uses in a fault-spec string.
    pub fn spec_key(self) -> &'static str {
        match self {
            FaultSite::DiskRead => "disk_read",
            FaultSite::DiskWrite => "disk_write",
            FaultSite::Decode => "decode",
            FaultSite::Compute => "compute",
            FaultSite::ComputePanic => "panic",
            FaultSite::Socket => "socket",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::DiskRead => 0,
            FaultSite::DiskWrite => 1,
            FaultSite::Decode => 2,
            FaultSite::Compute => 3,
            FaultSite::ComputePanic => 4,
            FaultSite::Socket => 5,
        }
    }

    /// Domain-separation salt, so two sites never share a decision
    /// stream even under the same seed.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; only distinctness matters.
        [
            0x9E37_79B9_7F4A_7C15,
            0xD1B5_4A32_D192_ED03,
            0x8CB9_2BA7_2F3D_8DD7,
            0xA24B_AED4_963E_E407,
            0x5851_F42D_4C95_7F2D,
            0x2545_F491_4F6C_DD1D,
        ][self.index()]
    }
}

/// SplitMix64 — the one mixing function behind every fault decision.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform value in `[0, 1)` using the top 53 bits.
fn unit_interval(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic jitter hash for retry backoff: a pure function of
/// `(seed, unit, attempt)`, sharing the fault layer's mixer so the whole
/// chaos schedule derives from SplitMix64.
pub(crate) fn jitter_hash(seed: u64, unit: u64, attempt: u64) -> u64 {
    splitmix(seed ^ splitmix(unit) ^ splitmix(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A seeded, deterministic fault-injection plan.
///
/// Each [`FaultSite`] has an independent rate in `[0, 1]` and an atomic
/// decision counter; [`FaultPlan::should_inject`] draws the site's next
/// decision. Decisions are a pure function of `(seed, site, sequence)`,
/// so a plan parsed from the same spec string always injects at the
/// same sequence positions — the property the chaos invariant tests
/// rely on. Counters of injected faults are kept per site
/// ([`FaultPlan::injected`]) so tests and the CLI can assert the plan
/// actually fired.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; 6],
    sequences: [AtomicU64; 6],
    injected: [AtomicU64; 6],
}

impl FaultPlan {
    /// An all-quiet plan under `seed`: every site's rate is zero.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets `site`'s injection rate (clamped into `[0, 1]`).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        self.rates[site.index()] = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// Parses a fault-spec string: comma-separated `key=value` pairs
    /// where `seed` takes a `u64` and every [`FaultSite::spec_key`]
    /// takes a rate in `[0, 1]`, e.g.
    /// `seed=42,compute=0.2,panic=0.05,disk_read=0.2,disk_write=0.1,decode=0.2,socket=0.1`.
    /// Unknown keys, malformed numbers, and out-of-range rates are
    /// errors — a typo must not silently run fault-free.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::new(0);
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec: `{part}` is not a key=value pair"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("fault spec: invalid seed `{value}`"))?;
                continue;
            }
            let site = FaultSite::ALL
                .into_iter()
                .find(|site| site.spec_key() == key)
                .ok_or_else(|| {
                    format!(
                        "fault spec: unknown site `{key}` (accepted: seed, disk_read, \
                         disk_write, decode, compute, panic, socket)"
                    )
                })?;
            let rate: f64 = value
                .parse()
                .map_err(|_| format!("fault spec: invalid rate `{value}` for {key}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "fault spec: rate for {key} must be in [0, 1], got {value}"
                ));
            }
            plan.rates[site.index()] = rate;
        }
        Ok(plan)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `site`'s configured injection rate.
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site.index()]
    }

    /// Draws `site`'s next decision: `true` means the caller must
    /// inject a failure here. Deterministic in `(seed, site, sequence)`;
    /// sites with a zero rate never consume a sequence number.
    pub fn should_inject(&self, site: FaultSite) -> bool {
        let index = site.index();
        let rate = self.rates[index];
        if rate <= 0.0 {
            return false;
        }
        let sequence = self.sequences[index].fetch_add(1, Ordering::Relaxed);
        let hash = splitmix(self.seed ^ site.salt() ^ splitmix(sequence));
        let inject = rate >= 1.0 || unit_interval(hash) < rate;
        if inject {
            self.injected[index].fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Faults injected across every site so far.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|count| count.load(Ordering::Relaxed))
            .sum()
    }

    /// The canonical spec string this plan round-trips through
    /// [`FaultPlan::parse`]: the seed plus every nonzero rate, in
    /// [`FaultSite::ALL`] order.
    pub fn spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for site in FaultSite::ALL {
            let rate = self.rates[site.index()];
            if rate > 0.0 {
                out.push_str(&format!(",{}={}", site.spec_key(), rate));
            }
        }
        out
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_site_and_sequence() {
        let draw = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed)
                .with_rate(FaultSite::Compute, 0.3)
                .with_rate(FaultSite::Decode, 0.3);
            (0..64)
                .map(|i| {
                    plan.should_inject(if i % 2 == 0 {
                        FaultSite::Compute
                    } else {
                        FaultSite::Decode
                    })
                })
                .collect()
        };
        assert_eq!(draw(42), draw(42), "same seed must replay identically");
        assert_ne!(draw(42), draw(43), "different seeds must diverge");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::new(7)
            .with_rate(FaultSite::Compute, 0.5)
            .with_rate(FaultSite::Socket, 0.5);
        let compute: Vec<bool> = (0..128)
            .map(|_| plan.should_inject(FaultSite::Compute))
            .collect();
        let socket: Vec<bool> = (0..128)
            .map(|_| plan.should_inject(FaultSite::Socket))
            .collect();
        assert_ne!(compute, socket, "sites must be domain-separated");
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let plan = FaultPlan::new(1)
            .with_rate(FaultSite::Compute, 1.0)
            .with_rate(FaultSite::Decode, 0.0);
        for _ in 0..64 {
            assert!(plan.should_inject(FaultSite::Compute));
            assert!(!plan.should_inject(FaultSite::Decode));
        }
        assert_eq!(plan.injected(FaultSite::Compute), 64);
        assert_eq!(plan.injected(FaultSite::Decode), 0);
        assert_eq!(plan.total_injected(), 64);
    }

    #[test]
    fn observed_rate_tracks_the_configured_rate() {
        let plan = FaultPlan::new(99).with_rate(FaultSite::DiskRead, 0.2);
        let n = 10_000;
        let hits = (0..n)
            .filter(|_| plan.should_inject(FaultSite::DiskRead))
            .count();
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - 0.2).abs() < 0.02,
            "observed rate {observed} strays too far from 0.2"
        );
    }

    #[test]
    fn spec_round_trips_through_parse() {
        let plan = FaultPlan::parse(
            "seed=42,compute=0.2,panic=0.05,disk_read=0.2,disk_write=0.1,decode=0.2,socket=0.1",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rate(FaultSite::Compute), 0.2);
        assert_eq!(plan.rate(FaultSite::ComputePanic), 0.05);
        let respec = plan.spec();
        let back = FaultPlan::parse(&respec).unwrap();
        assert_eq!(back.spec(), respec);
        // Same seed + rates ⇒ same decisions.
        for site in FaultSite::ALL {
            for _ in 0..32 {
                assert_eq!(plan.should_inject(site), back.should_inject(site));
            }
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "compute",        // no value
            "compute=lots",   // not a number
            "compute=1.5",    // out of range
            "compute=-0.1",   // out of range
            "warp_core=0.5",  // unknown site
            "seed=minus-one", // bad seed
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        // Empty and whitespace-only specs are the all-quiet plan.
        let quiet = FaultPlan::parse("").unwrap();
        assert_eq!(quiet.total_injected(), 0);
        assert!(!quiet.should_inject(FaultSite::Compute));
    }
}
