//! The declarative query spec: what to ask, over which sessions.
//!
//! A [`QuerySet`] is a JSON-serializable batch of causal queries over one
//! corpus: *abduction* queries (infer the latent GTBW posterior),
//! *interventional* queries (predict the download time of a candidate chunk
//! size at a decision point), *counterfactual* queries (replay the
//! session under a changed design), plus the two compound kinds — *sweep*
//! queries (one query expanded over a [`ConfigSweep`] grid of
//! configurations) and *aggregate* queries (an [`AggregateSpec`]
//! trace-level reduction folded over per-session outputs). A query set is
//! compiled into a [`crate::QueryPlan`] and executed with
//! [`crate::Engine::submit`] (or the blocking [`crate::Engine::run`]
//! wrapper), reusing one abduction per (session, config) through the
//! [`crate::AbductionCache`].
//!
//! Serialization note: [`Query`], [`ScenarioSpec`], [`QuerySet`], and the
//! plan-level specs implement `Deserialize` by hand so that hand-authored
//! query files may omit optional fields entirely (the derive shim
//! requires every field to be present) and so that unknown fields are
//! rejected with a pointed error instead of being silently ignored.

use serde::{de, Deserialize, Deserializer, Serialize, Serializer, Value, ValueDeserializer};
use veritas::VeritasConfig;

use crate::plan::{AggregateSpec, ConfigSweep};

/// The three causal query families of the paper (§3), plus the two
/// engine-level compound kinds that materialize in the plan compiler
/// ([`crate::QueryPlan`]): configuration sweeps and trace-level
/// aggregations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Infer the GTBW posterior for each selected session and report a
    /// reconstruction summary.
    Abduction,
    /// Predict the download time of a candidate chunk size at a decision
    /// point of the session (paper §4.4).
    Interventional,
    /// Replay the session under a changed design — ABR, buffer size, or
    /// quality ladder (paper §4.3).
    Counterfactual,
    /// Expand one query over a grid of [`VeritasConfig`] variations (see
    /// [`ConfigSweep`]); abduction-shaped by default, counterfactual when
    /// the query carries a scenario.
    Sweep,
    /// Fold a trace-level reduction over per-session outputs (see
    /// [`AggregateSpec`]); the reduced summary arrives as a final
    /// `session: "*"` record.
    Aggregate,
}

impl QueryKind {
    /// The wire name of this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            QueryKind::Abduction => "abduction",
            QueryKind::Interventional => "interventional",
            QueryKind::Counterfactual => "counterfactual",
            QueryKind::Sweep => "sweep",
            QueryKind::Aggregate => "aggregate",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "abduction" => Some(QueryKind::Abduction),
            "interventional" => Some(QueryKind::Interventional),
            "counterfactual" => Some(QueryKind::Counterfactual),
            "sweep" => Some(QueryKind::Sweep),
            "aggregate" => Some(QueryKind::Aggregate),
            _ => None,
        }
    }
}

impl Serialize for QueryKind {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for QueryKind {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::String(s) => QueryKind::parse(&s).ok_or_else(|| {
                de::Error::custom(format!(
                    "unknown query kind `{s}` (expected abduction | interventional | \
                     counterfactual | sweep | aggregate)"
                ))
            }),
            other => Err(de::Error::custom(format!(
                "query kind must be a string, got {other:?}"
            ))),
        }
    }
}

/// Declarative intervention parameters for a counterfactual query, applied
/// on top of the corpus's deployed setting. Fields left unset keep the
/// deployed value.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ScenarioSpec {
    /// ABR algorithm to swap in (resolved via [`veritas_abr::abr_by_name`]).
    pub abr: Option<String>,
    /// New playback buffer capacity in seconds.
    pub buffer_capacity_s: Option<f64>,
    /// Named quality ladder to re-encode onto: `"paper_default"` or
    /// `"higher"` (the paper's change-of-qualities ladder).
    pub ladder: Option<String>,
}

impl ScenarioSpec {
    /// A scenario that swaps the ABR algorithm.
    pub fn abr(name: &str) -> Self {
        Self {
            abr: Some(name.to_string()),
            ..Self::default()
        }
    }

    /// A scenario that changes the buffer capacity.
    pub fn buffer(buffer_capacity_s: f64) -> Self {
        Self {
            buffer_capacity_s: Some(buffer_capacity_s),
            ..Self::default()
        }
    }

    /// A scenario that re-encodes onto a named quality ladder.
    pub fn ladder(name: &str) -> Self {
        Self {
            ladder: Some(name.to_string()),
            ..Self::default()
        }
    }
}

/// One causal query over a corpus.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Query {
    /// Caller-chosen identifier, echoed in every result record.
    pub id: String,
    /// Which query family this is.
    pub kind: QueryKind,
    /// Corpus session indices to run over; `None` selects every session.
    pub sessions: Option<Vec<usize>>,
    /// Counterfactual intervention parameters (counterfactual queries only;
    /// an unset scenario replays the deployed setting unchanged).
    pub scenario: Option<ScenarioSpec>,
    /// Interventional decision point: predict chunk `chunk_index` from the
    /// observations before it. `None` predicts the next chunk after the
    /// full log, which shares the full-session abduction with abduction
    /// and counterfactual queries.
    pub chunk_index: Option<usize>,
    /// Interventional candidate chunk size in bytes (`None` uses the
    /// logged size at the decision point).
    pub candidate_size_bytes: Option<f64>,
    /// Override of the configured number of posterior samples.
    pub samples: Option<usize>,
    /// Override of the configured posterior-sampling seed. Sampling is
    /// decoupled from inference, so a seed override still hits the
    /// abduction cache.
    pub seed: Option<u64>,
    /// The configuration grid a sweep query expands over (sweep queries
    /// only).
    pub sweep: Option<ConfigSweep>,
    /// The trace-level reduction an aggregation query folds (aggregate
    /// queries only).
    pub aggregate: Option<AggregateSpec>,
}

impl Query {
    /// A query of `kind` with the given id and every option unset.
    pub fn new(id: &str, kind: QueryKind) -> Self {
        Self {
            id: id.to_string(),
            kind,
            sessions: None,
            scenario: None,
            chunk_index: None,
            candidate_size_bytes: None,
            samples: None,
            seed: None,
            sweep: None,
            aggregate: None,
        }
    }

    /// An abduction query over all sessions.
    pub fn abduction(id: &str) -> Self {
        Self::new(id, QueryKind::Abduction)
    }

    /// An interventional query over all sessions.
    pub fn interventional(id: &str) -> Self {
        Self::new(id, QueryKind::Interventional)
    }

    /// A counterfactual query over all sessions.
    pub fn counterfactual(id: &str, scenario: ScenarioSpec) -> Self {
        Self {
            scenario: Some(scenario),
            ..Self::new(id, QueryKind::Counterfactual)
        }
    }

    /// A configuration-sweep query over all sessions: one abduction per
    /// (config variant, session). Add [`Self::with_scenario`] to replay a
    /// counterfactual under every variant instead.
    pub fn sweep(id: &str, sweep: ConfigSweep) -> Self {
        Self {
            sweep: Some(sweep),
            ..Self::new(id, QueryKind::Sweep)
        }
    }

    /// An aggregation query over all sessions: the per-session metric is
    /// computed for every selected session and reduced into one
    /// [`crate::AggregateSummary`] folded from the result stream.
    pub fn aggregate(id: &str, aggregate: AggregateSpec) -> Self {
        Self {
            aggregate: Some(aggregate),
            ..Self::new(id, QueryKind::Aggregate)
        }
    }

    /// Sets the scenario a counterfactual (or counterfactual sweep) query
    /// replays.
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Restricts the query to specific corpus session indices.
    pub fn with_sessions(mut self, sessions: Vec<usize>) -> Self {
        self.sessions = Some(sessions);
        self
    }

    /// Overrides the number of posterior samples for this query.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = Some(samples);
        self
    }

    /// Overrides the posterior-sampling seed for this query.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the interventional decision point.
    pub fn with_chunk_index(mut self, chunk_index: usize) -> Self {
        self.chunk_index = Some(chunk_index);
        self
    }

    /// Sets the interventional candidate chunk size.
    pub fn with_candidate_size(mut self, candidate_size_bytes: f64) -> Self {
        self.candidate_size_bytes = Some(candidate_size_bytes);
        self
    }
}

/// A named batch of queries sharing one Veritas configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuerySet {
    /// Name of the batch, echoed in reports.
    pub name: String,
    /// The abduction hyper-parameters every query runs under.
    pub config: VeritasConfig,
    /// The queries, executed fanned out over (query, session) pairs.
    pub queries: Vec<Query>,
}

impl QuerySet {
    /// An empty query set with the given name and configuration.
    pub fn new(name: &str, config: VeritasConfig) -> Self {
        Self {
            name: name.to_string(),
            config,
            queries: Vec::new(),
        }
    }

    /// Appends a query, builder style.
    pub fn with_query(mut self, query: Query) -> Self {
        self.queries.push(query);
        self
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("query set serialization cannot fail")
    }

    /// Parses a query set from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Checks internal consistency: non-empty, unique ids, per-kind
    /// parameter sanity. Corpus-dependent checks (session indices in
    /// range) happen in [`crate::Engine::run`].
    pub fn validate(&self) -> Result<(), String> {
        if self.queries.is_empty() {
            return Err("query set contains no queries".to_string());
        }
        self.config.validate()?;
        let mut ids: Vec<&str> = self.queries.iter().map(|q| q.id.as_str()).collect();
        ids.sort_unstable();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate query id `{}`", dup[0]));
        }
        for query in &self.queries {
            if query.id.is_empty() {
                return Err("query id must not be empty".to_string());
            }
            if query.samples == Some(0) {
                return Err(format!("query `{}`: samples must be at least 1", query.id));
            }
            if query.sessions.as_deref() == Some(&[]) {
                return Err(format!(
                    "query `{}`: session selector is empty (omit it to select every session)",
                    query.id
                ));
            }
            if let Some(size) = query.candidate_size_bytes {
                if !(size.is_finite() && size > 0.0) {
                    return Err(format!(
                        "query `{}`: candidate_size_bytes must be positive, got {size}",
                        query.id
                    ));
                }
            }
            if query.kind == QueryKind::Interventional && query.chunk_index == Some(0) {
                return Err(format!(
                    "query `{}`: chunk_index 0 has no observation history",
                    query.id
                ));
            }
            // Fields on a kind that ignores them are almost certainly a
            // misread of the spec; reject them rather than silently doing
            // the default thing.
            if query.kind == QueryKind::Aggregate && query.scenario.is_some() {
                return Err(format!(
                    "query `{}`: an aggregation's scenario belongs inside its aggregate spec",
                    query.id
                ));
            }
            if !matches!(query.kind, QueryKind::Counterfactual | QueryKind::Sweep)
                && query.scenario.is_some()
            {
                return Err(format!(
                    "query `{}`: scenario is only meaningful for counterfactual or \
                     sweep queries",
                    query.id
                ));
            }
            // samples/seed only matter where posterior sampling happens: a
            // counterfactual replay, a sweep that replays a scenario, or a
            // QoE aggregation. On everything else they would be silently
            // ignored — reject instead.
            let samples_steer_sampling = match query.kind {
                QueryKind::Counterfactual => true,
                QueryKind::Sweep => query.scenario.is_some(),
                QueryKind::Aggregate => query
                    .aggregate
                    .as_ref()
                    .is_some_and(|spec| spec.metric.needs_replay()),
                QueryKind::Abduction | QueryKind::Interventional => false,
            };
            if !samples_steer_sampling && (query.samples.is_some() || query.seed.is_some()) {
                return Err(format!(
                    "query `{}`: samples/seed only steer posterior sampling (counterfactual \
                     queries, sweeps with a scenario, and QoE aggregations)",
                    query.id
                ));
            }
            if query.kind != QueryKind::Interventional
                && (query.chunk_index.is_some() || query.candidate_size_bytes.is_some())
            {
                return Err(format!(
                    "query `{}`: chunk_index/candidate_size_bytes are only meaningful \
                     for interventional queries",
                    query.id
                ));
            }
            match (&query.sweep, query.kind) {
                (Some(sweep), QueryKind::Sweep) => {
                    sweep
                        .validate(&self.config)
                        .map_err(|e| format!("query `{}`: {e}", query.id))?;
                    // A num_samples axis is only observable when each
                    // variant actually samples (a scenario replay) and no
                    // query-level override pins the count — otherwise the
                    // sweep would emit identical results under distinct
                    // `samples=N` labels.
                    if sweep.num_samples.is_some() {
                        if query.samples.is_some() {
                            return Err(format!(
                                "query `{}`: a samples override defeats the sweep's \
                                 num_samples axis",
                                query.id
                            ));
                        }
                        if query.scenario.is_none() {
                            return Err(format!(
                                "query `{}`: a num_samples axis needs a scenario — \
                                 abduction-shaped sweeps never sample",
                                query.id
                            ));
                        }
                    }
                }
                (None, QueryKind::Sweep) => {
                    return Err(format!(
                        "query `{}`: sweep queries require a sweep grid",
                        query.id
                    ))
                }
                (Some(_), _) => {
                    return Err(format!(
                        "query `{}`: a sweep grid is only meaningful for sweep queries",
                        query.id
                    ))
                }
                (None, _) => {}
            }
            match (&query.aggregate, query.kind) {
                (Some(aggregate), QueryKind::Aggregate) => aggregate
                    .validate()
                    .map_err(|e| format!("query `{}`: {e}", query.id))?,
                (None, QueryKind::Aggregate) => {
                    return Err(format!(
                        "query `{}`: aggregate queries require an aggregate spec",
                        query.id
                    ))
                }
                (Some(_), _) => {
                    return Err(format!(
                        "query `{}`: an aggregate spec is only meaningful for aggregate queries",
                        query.id
                    ))
                }
                (None, _) => {}
            }
        }
        Ok(())
    }

    /// The example query set the `veritas example-queries` subcommand
    /// prints: one abduction sweep, one ABR-swap counterfactual, and one
    /// buffer-size counterfactual, all over every corpus session — three
    /// queries that share a single abduction per session through the cache.
    pub fn example() -> Self {
        Self::new("example", VeritasConfig::paper_default().with_samples(3))
            .with_query(Query::abduction("posterior-sweep"))
            .with_query(Query::counterfactual(
                "what-if-bba",
                ScenarioSpec::abr("bba"),
            ))
            .with_query(Query::counterfactual(
                "what-if-30s-buffer",
                ScenarioSpec::buffer(30.0),
            ))
    }

    /// A `queries`-query cache-stress set: a rotation of abduction,
    /// counterfactual, and next-chunk interventional queries, every one
    /// over every session, so that cached execution performs exactly one
    /// abduction per session while uncached execution performs one per
    /// (query, session) unit. Used by `veritas bench` and the
    /// `engine_queryset` criterion benchmarks. Scenarios are replay-light
    /// (no MPC lookahead) so the comparison isolates the abduction cost
    /// the cache saves.
    pub fn cache_stress(queries: usize) -> Self {
        let scenarios = [
            ScenarioSpec::abr("bba"),
            ScenarioSpec::abr("bola"),
            ScenarioSpec {
                abr: Some("throughput".to_string()),
                buffer_capacity_s: Some(30.0),
                ladder: Some("higher".to_string()),
            },
        ];
        let mut set = Self::new(
            "cache-stress",
            VeritasConfig::paper_default().with_samples(2),
        );
        for i in 0..queries {
            let query = match i % 5 {
                0 => Query::abduction(&format!("q{i}-abduction")),
                1 | 3 => Query::counterfactual(
                    &format!("q{i}-counterfactual"),
                    scenarios[(i / 2) % scenarios.len()].clone(),
                ),
                2 => Query::interventional(&format!("q{i}-interventional")),
                _ => Query::counterfactual(
                    &format!("q{i}-counterfactual-reseeded"),
                    ScenarioSpec::abr("bba"),
                )
                .with_seed(i as u64),
            };
            set = set.with_query(query);
        }
        set
    }
}

// ---------------------------------------------------------------------------
// Hand-written deserialization (optional-field-friendly, strict on typos)
// ---------------------------------------------------------------------------

/// Removes `name` from a decoded object's field list, treating JSON `null`
/// the same as an absent field.
pub(crate) fn take_field(fields: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
    let index = fields.iter().position(|(key, _)| key == name)?;
    match fields.remove(index).1 {
        Value::Null => None,
        value => Some(value),
    }
}

/// Lifts an optional typed field out of a decoded object.
pub(crate) fn opt<'de, T: Deserialize<'de>, E: de::Error>(
    fields: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<Option<T>, E> {
    match take_field(fields, name) {
        None => Ok(None),
        Some(value) => Ok(Some(T::deserialize(ValueDeserializer::<E>::new(value))?)),
    }
}

/// Lifts a required typed field out of a decoded object.
pub(crate) fn req<'de, T: Deserialize<'de>, E: de::Error>(
    fields: &mut Vec<(String, Value)>,
    context: &str,
    name: &str,
) -> Result<T, E> {
    match take_field(fields, name) {
        None => Err(de::Error::custom(format!(
            "{context}: missing required field `{name}`"
        ))),
        Some(value) => T::deserialize(ValueDeserializer::<E>::new(value)),
    }
}

/// Errors on any fields left over after the known ones were consumed.
pub(crate) fn reject_unknown<E: de::Error>(
    fields: &[(String, Value)],
    context: &str,
) -> Result<(), E> {
    if let Some((name, _)) = fields.first() {
        return Err(de::Error::custom(format!(
            "{context}: unknown field `{name}`"
        )));
    }
    Ok(())
}

/// Decodes an object's field list out of a deserializer.
pub(crate) fn object_fields<'de, D: Deserializer<'de>>(
    deserializer: D,
    context: &str,
) -> Result<Vec<(String, Value)>, D::Error> {
    match deserializer.deserialize_value()? {
        Value::Object(fields) => Ok(fields),
        other => Err(de::Error::custom(format!(
            "{context}: expected a JSON object, got {other:?}"
        ))),
    }
}

impl<'de> Deserialize<'de> for ScenarioSpec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "scenario")?;
        let spec = ScenarioSpec {
            abr: opt(&mut fields, "abr")?,
            buffer_capacity_s: opt(&mut fields, "buffer_capacity_s")?,
            ladder: opt(&mut fields, "ladder")?,
        };
        reject_unknown(&fields, "scenario")?;
        Ok(spec)
    }
}

impl<'de> Deserialize<'de> for Query {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "query")?;
        let query = Query {
            id: req(&mut fields, "query", "id")?,
            kind: req(&mut fields, "query", "kind")?,
            sessions: opt(&mut fields, "sessions")?,
            scenario: opt(&mut fields, "scenario")?,
            chunk_index: opt(&mut fields, "chunk_index")?,
            candidate_size_bytes: opt(&mut fields, "candidate_size_bytes")?,
            samples: opt(&mut fields, "samples")?,
            seed: opt(&mut fields, "seed")?,
            sweep: opt(&mut fields, "sweep")?,
            aggregate: opt(&mut fields, "aggregate")?,
        };
        reject_unknown(&fields, &format!("query `{}`", query.id))?;
        Ok(query)
    }
}

impl<'de> Deserialize<'de> for QuerySet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "query set")?;
        let set = QuerySet {
            name: opt(&mut fields, "name")?.unwrap_or_else(|| "queryset".to_string()),
            config: opt(&mut fields, "config")?.unwrap_or_else(VeritasConfig::paper_default),
            queries: req(&mut fields, "query set", "queries")?,
        };
        reject_unknown(&fields, "query set")?;
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_set_round_trips_through_json() {
        let set = QuerySet::example();
        assert!(set.validate().is_ok());
        let back = QuerySet::from_json(&set.to_json()).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn omitted_optional_fields_default() {
        let set =
            QuerySet::from_json(r#"{"queries": [{"id": "a", "kind": "abduction"}]}"#).unwrap();
        assert_eq!(set.name, "queryset");
        assert_eq!(set.config, VeritasConfig::paper_default());
        assert_eq!(set.queries[0], Query::abduction("a"));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = QuerySet::from_json(
            r#"{"queries": [{"id": "a", "kind": "abduction", "sesions": [1]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("sesions"), "{err}");
        let err =
            QuerySet::from_json(r#"{"queries": [{"id": "a", "kind": "telepathy"}]}"#).unwrap_err();
        assert!(err.to_string().contains("telepathy"), "{err}");
    }

    #[test]
    fn validation_catches_bad_sets() {
        let dup = QuerySet::new("d", VeritasConfig::paper_default())
            .with_query(Query::abduction("a"))
            .with_query(Query::abduction("a"));
        assert!(dup.validate().unwrap_err().contains("duplicate"));
        let empty = QuerySet::new("e", VeritasConfig::paper_default());
        assert!(empty.validate().is_err());
        let zero_chunk = QuerySet::new("z", VeritasConfig::paper_default())
            .with_query(Query::interventional("i").with_chunk_index(0));
        assert!(zero_chunk.validate().is_err());
        let stray_scenario = QuerySet::new("s", VeritasConfig::paper_default()).with_query(Query {
            scenario: Some(ScenarioSpec::abr("bba")),
            ..Query::abduction("a")
        });
        assert!(stray_scenario.validate().is_err());
        let stray_seed = QuerySet::new("s", VeritasConfig::paper_default())
            .with_query(Query::new("a", QueryKind::Abduction).with_seed(1));
        assert!(stray_seed.validate().unwrap_err().contains("samples/seed"));
        // samples/seed are also rejected where a compound query would
        // silently ignore them: a scenario-less (abduction-shaped) sweep
        // and a posterior-only aggregation never sample.
        let sweep_no_scenario = QuerySet::new("s", VeritasConfig::paper_default()).with_query(
            Query::sweep(
                "sw",
                crate::plan::ConfigSweep::new().over_sigma(vec![0.25, 0.5]),
            )
            .with_samples(3),
        );
        assert!(sweep_no_scenario
            .validate()
            .unwrap_err()
            .contains("samples/seed"));
        let capacity_agg = QuerySet::new("s", VeritasConfig::paper_default()).with_query(
            Query::aggregate(
                "agg",
                crate::plan::AggregateSpec::of(crate::plan::AggregateMetric::MeanCapacityMbps),
            )
            .with_seed(9),
        );
        assert!(capacity_agg
            .validate()
            .unwrap_err()
            .contains("samples/seed"));
        // A num_samples axis must actually be observable: no query-level
        // samples override, and only on a replaying (scenario) sweep.
        let base = crate::plan::ConfigSweep::new().over_samples(vec![1, 2]);
        let overridden = QuerySet::new("s", VeritasConfig::paper_default()).with_query(
            Query::sweep("sw", base.clone())
                .with_scenario(ScenarioSpec::abr("bba"))
                .with_samples(5),
        );
        assert!(overridden.validate().unwrap_err().contains("defeats"));
        let abduction_shaped =
            QuerySet::new("s", VeritasConfig::paper_default()).with_query(Query::sweep("sw", base));
        assert!(abduction_shaped
            .validate()
            .unwrap_err()
            .contains("never sample"));
        let stray_chunk = QuerySet::new("s", VeritasConfig::paper_default())
            .with_query(Query::counterfactual("c", ScenarioSpec::abr("bba")).with_chunk_index(3));
        assert!(stray_chunk
            .validate()
            .unwrap_err()
            .contains("chunk_index/candidate_size_bytes"));
    }

    #[test]
    fn kind_wire_names_are_stable() {
        for kind in [
            QueryKind::Abduction,
            QueryKind::Interventional,
            QueryKind::Counterfactual,
        ] {
            assert_eq!(QueryKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(QueryKind::parse("associational"), None);
    }
}
