//! The abduction cache: one EHMM posterior per (session, config, horizon).
//!
//! Abduction — building the emission table and running forward–backward and
//! Viterbi — is the expensive step of every causal query. Interventional
//! and counterfactual queries over the same session under the same
//! configuration need the *same* posterior, so the engine computes it once
//! and shares it. Entries are keyed by the session id, fingerprints of the
//! posterior-relevant [`VeritasConfig`] fields and of the log's observed
//! variables (so a reused id never aliases a different corpus's session),
//! and the observation horizon (number of chunk records conditioned on;
//! interventional queries at an explicit decision point condition on a
//! prefix).
//!
//! Concurrency: the map itself is only locked long enough to find or insert
//! an entry slot; inference runs under the slot's own lock, so two workers
//! asking for the same key never compute it twice, and workers on different
//! keys never wait on each other's inference.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use veritas::{Abduction, AbductionError, VeritasConfig};
use veritas_ehmm::EhmmWorkspace;
use veritas_player::SessionLog;

use crate::executor;
use crate::persist::{DiskStore, PersistKey};

/// Logs with at least this many chunk records get their emission table
/// built through the batch executor — the rows are embarrassingly parallel
/// and, for long sessions, dominate the non-kernel part of inference.
/// Shorter logs are built inline: thread-scope setup would cost more than
/// it saves.
const PARALLEL_EMISSION_THRESHOLD: usize = 512;

/// FNV-1a offset basis — the seed of every fingerprint in this module.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Mixes one 64-bit word into an FNV-1a hash, byte by byte. The single
/// implementation behind [`config_fingerprint`], [`log_fingerprint`],
/// [`combine_fingerprints`], and the corpus deployed-setting fingerprint,
/// so the hashing can never diverge between them.
pub(crate) fn fnv_mix(hash: &mut u64, bits: u64) {
    for byte in bits.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Mixes one `f64` into a fingerprint by **canonical** bit pattern:
/// `-0.0` hashes as `+0.0` and every NaN payload as the one canonical NaN.
/// Raw `to_bits` would split semantically identical configs/logs into
/// distinct cache keys — a silent in-memory cache split, and a stale
/// identity once fingerprints become durable file names on disk
/// ([`crate::persist`]). Every fingerprint in this crate mixes floats
/// through this function.
pub(crate) fn fnv_mix_f64(hash: &mut u64, value: f64) {
    let bits = if value == 0.0 {
        0.0_f64.to_bits()
    } else if value.is_nan() {
        f64::NAN.to_bits()
    } else {
        value.to_bits()
    };
    fnv_mix(hash, bits);
}

/// Fingerprints the configuration fields the abduction posterior depends
/// on: δ, ε, the grid ceiling, σ, and the stay probability. `num_samples`
/// and `seed` are deliberately excluded — they only steer post-hoc
/// posterior *sampling* (see [`Abduction::sample_traces_with_seed`]), so
/// queries that differ only in sampling still share one cache entry.
/// Equal-valued configs always share a fingerprint (zeros and NaNs are
/// canonicalized, see [`fnv_mix_f64`]).
pub fn config_fingerprint(config: &VeritasConfig) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv_mix_f64(&mut hash, config.delta_s);
    fnv_mix_f64(&mut hash, config.epsilon_mbps);
    fnv_mix_f64(&mut hash, config.max_capacity_mbps);
    fnv_mix_f64(&mut hash, config.sigma_mbps);
    fnv_mix_f64(&mut hash, config.stay_probability);
    hash
}

/// Fingerprints every observed variable of a log that abduction conditions
/// on: the session duration (sizes the δ-interval grid), and each record's
/// start time, size, throughput, and TCP snapshot (the emission's control
/// variables). Mixed into the cache key so that a session id reused by a
/// *different* log — e.g. two synthetic corpora both naming sessions
/// `session-0` — can never alias another corpus's posterior.
pub fn log_fingerprint(log: &SessionLog) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv_mix(&mut hash, log.records.len() as u64);
    fnv_mix_f64(&mut hash, log.session_duration_s);
    for record in &log.records {
        fnv_mix_f64(&mut hash, record.start_time_s);
        fnv_mix_f64(&mut hash, record.size_bytes);
        fnv_mix_f64(&mut hash, record.throughput_mbps);
        fnv_mix_f64(&mut hash, record.tcp_info.cwnd_segments);
        fnv_mix_f64(&mut hash, record.tcp_info.ssthresh_segments);
        fnv_mix_f64(&mut hash, record.tcp_info.rto_s);
        fnv_mix_f64(&mut hash, record.tcp_info.srtt_s);
        fnv_mix_f64(&mut hash, record.tcp_info.min_rtt_s);
        fnv_mix_f64(&mut hash, record.tcp_info.last_send_gap_s);
    }
    hash
}

/// Infers an abduction over the first `horizon` records of `log` —
/// the one shared implementation behind both the cached and uncached
/// execution paths. Emission rows for large logs are computed through the
/// batch executor; the caller may supply a shared [`EhmmWorkspace`] (see
/// [`AbductionCache::workspace_for`]) so sessions inferred under one
/// configuration reuse the same transition/log-power kernels.
///
/// # Panics
///
/// Panics if `horizon` exceeds the log's record count; callers validate
/// query-supplied horizons first (see `Engine::answer_interventional`).
pub fn infer_prefix(
    log: &SessionLog,
    horizon: usize,
    config: &VeritasConfig,
) -> Result<Abduction, AbductionError> {
    infer_prefix_with(log, horizon, config, |spec| {
        Arc::new(EhmmWorkspace::new(spec))
    })
}

/// [`infer_prefix`] with an explicit workspace provider. The provider is
/// only invoked after the config validates, so it may build the spec-derived
/// workspace without re-checking.
fn infer_prefix_with(
    log: &SessionLog,
    horizon: usize,
    config: &VeritasConfig,
    workspace: impl FnOnce(veritas_ehmm::EhmmSpec) -> Arc<EhmmWorkspace>,
) -> Result<Abduction, AbductionError> {
    config.validate().map_err(AbductionError::InvalidConfig)?;
    let view = prefix_view(log, horizon);
    if view.records.is_empty() {
        return Err(AbductionError::EmptySession);
    }
    let rows = emission_rows(&view, config);
    Abduction::try_infer_prepared(&view, config, rows, workspace(Abduction::spec_for(config)))
}

/// The first `horizon` records of `log` as a borrowed view when the
/// horizon covers the whole log, or an owned truncated copy otherwise.
/// Shared by fresh inference and the disk warm-start path, so both
/// condition on exactly the same prefix.
///
/// # Panics
///
/// Panics if `horizon` exceeds the log's record count; callers validate
/// query-supplied horizons first (see `Engine::answer_interventional`).
fn prefix_view(log: &SessionLog, horizon: usize) -> std::borrow::Cow<'_, SessionLog> {
    assert!(
        horizon <= log.records.len(),
        "horizon {horizon} exceeds the log's {} records",
        log.records.len()
    );
    if horizon == log.records.len() {
        std::borrow::Cow::Borrowed(log)
    } else {
        std::borrow::Cow::Owned(SessionLog {
            records: log.records[..horizon].to_vec(),
            ..log.clone()
        })
    }
}

/// Builds the per-(chunk, capacity) emission log-density table for a log,
/// fanning the rows out across the batch executor once the log is large
/// enough for the parallelism to pay for itself. Inferences already running
/// on an executor worker (the engine's normal batch path) stay serial —
/// the cores are busy with other sessions, and nesting pools would spawn
/// up to `threads²` threads.
fn emission_rows(log: &SessionLog, config: &VeritasConfig) -> Vec<Vec<f64>> {
    let capacities = config.capacity_grid();
    let records = &log.records;
    if records.len() >= PARALLEL_EMISSION_THRESHOLD && !executor::on_worker_thread() {
        executor::execute_indexed(records.len(), executor::default_threads(), |n| {
            Abduction::emission_row(&records[n], &capacities, config.sigma_mbps)
        })
    } else {
        records
            .iter()
            .map(|r| Abduction::emission_row(r, &capacities, config.sigma_mbps))
            .collect()
    }
}

/// Order-sensitive fold of fingerprints (per-session [`log_fingerprint`]s
/// plus the deployed-setting fingerprint) into one corpus-content
/// fingerprint. A [`crate::QueryPlan`] records it at compile time so a
/// submit over a *different* corpus that happens to have the same session
/// count is rejected instead of replaying wrong scenarios against wrong
/// logs.
pub(crate) fn combine_fingerprints(fps: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = FNV_OFFSET;
    for fp in fps {
        fnv_mix(&mut hash, fp);
    }
    hash
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    session: String,
    fingerprint: u64,
    log: u64,
    horizon: usize,
}

type Slot = Arc<Mutex<Option<Arc<Abduction>>>>;

/// Where a cache lookup's posterior came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Served from an in-memory slot — no work at all.
    Memory,
    /// Restored from the persistent store ([`crate::persist::DiskStore`])
    /// — a file read and shape validation, but zero EHMM inference.
    Disk,
    /// Computed by running forward–backward and Viterbi.
    Inferred,
}

impl CacheSource {
    /// Whether the lookup avoided inference (memory or disk).
    pub fn is_warm(self) -> bool {
        !matches!(self, CacheSource::Inferred)
    }

    /// The wire label result records carry (`"hit"`, `"disk"`, `"miss"`).
    pub fn label(self) -> &'static str {
        match self {
            CacheSource::Memory => "hit",
            CacheSource::Disk => "disk",
            CacheSource::Inferred => "miss",
        }
    }
}

/// Counters describing how a cache has been used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from an in-memory posterior.
    pub hits: u64,
    /// Lookups that had to run inference.
    pub misses: u64,
    /// Lookups served by restoring a posterior from the disk store
    /// (counted separately from `hits` so warm starts are observable).
    pub disk_hits: u64,
    /// Posteriors currently held in memory.
    pub entries: u64,
    /// Corrupt disk entries detected, deleted, and (via re-inference +
    /// write-through) rewritten — the disk tier's self-heals.
    pub healed: u64,
    /// `A^Δ` transition kernels restored from a persisted kernel table
    /// (`.vkern`) instead of being recomputed by repeated matrix
    /// squaring — the workspace-level analogue of `disk_hits`.
    pub kernel_disk_hits: u64,
}

/// A concurrent, compute-once cache of [`Abduction`] results.
///
/// Besides the posterior slots, the cache keeps one shared
/// [`EhmmWorkspace`] per configuration fingerprint: every session inferred
/// under the same config reuses the same memoized `A^Δ` / `ln A^Δ`
/// transition kernels, across the whole batch executor.
///
/// With [`Self::with_disk_store`] the in-memory slots gain a persistent
/// tier: an in-memory miss first tries to restore the posterior from the
/// store (counted as a *disk hit*), and a genuinely inferred posterior is
/// written through so the next process warm-starts. Disk problems are
/// silent misses by design ([`crate::persist`]); a *corrupt* entry is
/// additionally deleted so the re-inference + write-through repairs it in
/// place, counted in [`CacheStats::healed`].
#[derive(Debug, Default)]
pub struct AbductionCache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    workspaces: Mutex<HashMap<u64, Arc<EhmmWorkspace>>>,
    /// Kernel count last written through to the store per config
    /// fingerprint, so the kernel table is only rewritten when the
    /// workspace has actually grown new gaps.
    kernel_saves: Mutex<HashMap<u64, usize>>,
    disk: Option<DiskStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    entries: AtomicU64,
    healed: AtomicU64,
    kernel_disk_hits: AtomicU64,
}

impl AbductionCache {
    /// Creates an empty, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a persistent disk tier: in-memory misses try the store
    /// first, and inferred posteriors are written through to it.
    pub fn with_disk_store(mut self, store: DiskStore) -> Self {
        self.attach_disk_store(store);
        self
    }

    /// [`Self::with_disk_store`] for a cache that already exists —
    /// keeps its posteriors, workspaces, and counters.
    pub fn attach_disk_store(&mut self, store: DiskStore) {
        self.disk = Some(store);
    }

    /// The persistent store, when one is attached.
    pub fn disk_store(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// Returns the cached full-session abduction for `(session_id, config)`,
    /// inferring (and caching) it on first use, plus where it came from.
    pub fn get_or_infer(
        &self,
        session_id: &str,
        log: &SessionLog,
        config: &VeritasConfig,
    ) -> Result<(Arc<Abduction>, CacheSource), AbductionError> {
        self.get_or_infer_prefix(session_id, log, log.records.len(), config)
    }

    /// Like [`Self::get_or_infer`] but conditioning only on the first
    /// `horizon` chunk records — the decision-point view interventional
    /// queries need. `horizon == log.records.len()` is the full-session
    /// entry and shares its key with [`Self::get_or_infer`].
    ///
    /// Inference failures are returned (and counted as misses) but not
    /// cached, so a transiently bad query does not poison the slot.
    pub fn get_or_infer_prefix(
        &self,
        session_id: &str,
        log: &SessionLog,
        horizon: usize,
        config: &VeritasConfig,
    ) -> Result<(Arc<Abduction>, CacheSource), AbductionError> {
        self.get_or_infer_keyed(
            session_id,
            log,
            log_fingerprint(log),
            horizon,
            config,
            config_fingerprint(config),
        )
    }

    /// Like [`Self::get_or_infer_prefix`] but with the log and config
    /// fingerprints supplied by the caller. The executor computes both
    /// once per session / per planned config (see
    /// [`crate::QueryPlan::configs`]) instead of re-hashing the full log
    /// on every lookup; the fingerprints **must** be
    /// [`log_fingerprint`]`(log)` and [`config_fingerprint`]`(config)` or
    /// cache entries will alias — in memory *and* on disk, where the
    /// `(log_fp, config_fp, horizon)` triple is the entry's whole
    /// identity.
    pub fn get_or_infer_keyed(
        &self,
        session_id: &str,
        log: &SessionLog,
        log_fp: u64,
        horizon: usize,
        config: &VeritasConfig,
        config_fp: u64,
    ) -> Result<(Arc<Abduction>, CacheSource), AbductionError> {
        let key = CacheKey {
            session: session_id.to_string(),
            fingerprint: config_fp,
            log: log_fp,
            horizon,
        };
        let fingerprint = key.fingerprint;
        let slot: Slot = {
            let mut slots = self.slots.lock();
            slots.entry(key).or_default().clone()
        };
        let mut guard = slot.lock();
        if let Some(abduction) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((abduction.clone(), CacheSource::Memory));
        }
        let persist_key = PersistKey {
            log: log_fp,
            config: config_fp,
            horizon,
        };
        if let Some(abduction) = self.load_from_disk(&persist_key, log, horizon, config) {
            let abduction = Arc::new(abduction);
            *guard = Some(abduction.clone());
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.entries.fetch_add(1, Ordering::Relaxed);
            return Ok((abduction, CacheSource::Disk));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let abduction = Arc::new(infer_prefix_with(log, horizon, config, |spec| {
            self.workspace_for_spec(fingerprint, spec)
        })?);
        *guard = Some(abduction.clone());
        self.entries.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            // Write-through is best-effort: a full or read-only cache
            // directory degrades to memory-only caching, it never fails
            // the query.
            let _ = disk.save(&persist_key, &abduction);
            // Piggyback the kernel table: the inference above may have
            // materialized new gaps worth warm-starting the next process
            // with.
            self.persist_kernels(fingerprint, abduction.workspace());
        }
        Ok((abduction, CacheSource::Inferred))
    }

    /// Attempts a disk restore for one key. Validates the config and
    /// builds the horizon view exactly as inference would, so a restored
    /// posterior is checked against the same log prefix a fresh one would
    /// condition on. Every failure mode is a `None` (miss).
    fn load_from_disk(
        &self,
        key: &PersistKey,
        log: &SessionLog,
        horizon: usize,
        config: &VeritasConfig,
    ) -> Option<Abduction> {
        let disk = self.disk.as_ref()?;
        if config.validate().is_err() || horizon > log.records.len() {
            // Let the inference path produce the typed error.
            return None;
        }
        let view = prefix_view(log, horizon);
        if view.records.is_empty() {
            return None;
        }
        let workspace = self.workspace_for_spec(key.config, Abduction::spec_for(config));
        match disk.load_classified(key, &view, config, workspace) {
            crate::persist::DiskLoadOutcome::Restored(abduction) => Some(*abduction),
            crate::persist::DiskLoadOutcome::Missing => None,
            crate::persist::DiskLoadOutcome::Healed => {
                // The store deleted a corrupt entry under this key; the
                // miss path below re-infers and writes a fresh one back
                // through the same atomic rename, completing the heal.
                self.healed.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The shared inference workspace for `config`, created on first use
    /// and keyed by the config fingerprint. All abductions the cache runs
    /// for this configuration resolve their transition kernels through it.
    ///
    /// # Panics
    ///
    /// Panics on an invalid grid configuration; the inference entry points
    /// validate before calling this.
    pub fn workspace_for(&self, config: &VeritasConfig) -> Arc<EhmmWorkspace> {
        self.workspace_for_spec(config_fingerprint(config), Abduction::spec_for(config))
    }

    fn workspace_for_spec(
        &self,
        fingerprint: u64,
        spec: veritas_ehmm::EhmmSpec,
    ) -> Arc<EhmmWorkspace> {
        let mut workspaces = self.workspaces.lock();
        if let Some(workspace) = workspaces.get(&fingerprint) {
            return workspace.clone();
        }
        let workspace = Arc::new(EhmmWorkspace::new(spec));
        // A fresh workspace warm-starts from the persisted kernel table
        // of its config, skipping the repeated-squaring matrix powers a
        // cold process would otherwise recompute per distinct gap. Like
        // every disk read here, failure is a silent miss.
        if let Some(disk) = &self.disk {
            if let Some(kernels) = disk.load_kernels(fingerprint, workspace.spec().num_states()) {
                let mut restored: u64 = 0;
                for (gap, matrix) in kernels {
                    if workspace.preload_kernel(gap, matrix) {
                        restored += 1;
                    }
                }
                self.kernel_disk_hits.fetch_add(restored, Ordering::Relaxed);
                self.kernel_saves
                    .lock()
                    .insert(fingerprint, workspace.cached_gaps());
            }
        }
        workspaces.insert(fingerprint, workspace.clone());
        workspace
    }

    /// Writes the workspace's kernel table through to the disk store when
    /// it has materialized gaps the store has not seen — called after
    /// each inferred write-through, so a warm restart skips the matrix
    /// powers too, not just the posteriors. Best-effort like every disk
    /// write.
    fn persist_kernels(&self, fingerprint: u64, workspace: &Arc<EhmmWorkspace>) {
        let Some(disk) = &self.disk else { return };
        let mut saved = self.kernel_saves.lock();
        let last = saved.entry(fingerprint).or_insert(0);
        if workspace.cached_gaps() <= *last {
            return;
        }
        let kernels = workspace.export_kernels();
        if kernels.is_empty() {
            return;
        }
        let count = kernels.len();
        if disk.save_kernels(fingerprint, &kernels).is_ok() {
            *last = count;
        }
    }

    /// Lookups served from memory so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran inference so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups served by restoring a posterior from disk so far.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Number of cached posteriors. Maintained as a counter so reading it
    /// never waits on an in-flight inference's slot lock.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Corrupt disk entries this cache has healed (deleted + rewritten)
    /// so far.
    pub fn healed(&self) -> u64 {
        self.healed.load(Ordering::Relaxed)
    }

    /// Transition kernels restored from persisted kernel tables so far.
    pub fn kernel_disk_hits(&self) -> u64 {
        self.kernel_disk_hits.load(Ordering::Relaxed)
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            disk_hits: self.disk_hits(),
            entries: self.entries(),
            healed: self.healed(),
            kernel_disk_hits: self.kernel_disk_hits(),
        }
    }

    /// Drops every cached posterior *and* every per-config kernel
    /// workspace, keeping the hit/miss counters (and any attached disk
    /// store — clearing memory does not delete persisted entries). The
    /// workspace table must go too: sweep queries register up to
    /// [`crate::MAX_SWEEP_VARIANTS`] configs, and a `clear()` that kept
    /// their `A^Δ` kernel tables would leak them for the cache's lifetime.
    ///
    /// Not meant to race in-flight inferences: a posterior stored into an
    /// already-evicted slot survives only with its holder and is not
    /// reflected in [`Self::entries`].
    pub fn clear(&self) {
        self.slots.lock().clear();
        self.workspaces.lock().clear();
        self.kernel_saves.lock().clear();
        self.entries.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_abr::Mpc;
    use veritas_media::VideoAsset;
    use veritas_player::{run_session, PlayerConfig};
    use veritas_trace::generators::{FccLike, TraceGenerator};

    fn log() -> SessionLog {
        let asset = VideoAsset::paper_default(3);
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 17);
        let mut abr = Mpc::new();
        run_session(&asset, &mut abr, &truth, &PlayerConfig::paper_default())
    }

    #[test]
    fn fingerprint_ignores_sampling_fields_only() {
        let base = VeritasConfig::paper_default();
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&base.with_samples(9).with_seed(123))
        );
        assert_ne!(
            config_fingerprint(&base),
            config_fingerprint(&base.with_sigma(1.0))
        );
        assert_ne!(
            config_fingerprint(&base),
            config_fingerprint(&base.with_stay_probability(0.9))
        );
    }

    #[test]
    fn fingerprints_canonicalize_zeros_and_nans() {
        // `-0.0 == 0.0` but their bit patterns differ; raw `to_bits`
        // hashing split semantically identical configs into distinct
        // (soon durable, on-disk) identities. Same for NaN payloads.
        let base = VeritasConfig::paper_default();
        let mut zero_plus = base;
        let mut zero_minus = base;
        zero_plus.sigma_mbps = 0.0;
        zero_minus.sigma_mbps = -0.0;
        assert_eq!(
            config_fingerprint(&zero_plus),
            config_fingerprint(&zero_minus),
            "-0.0 and +0.0 must share a fingerprint"
        );
        let mut log_plus = log();
        let mut log_minus = log_plus.clone();
        log_plus.records[0].start_time_s = 0.0;
        log_minus.records[0].start_time_s = -0.0;
        assert_eq!(log_fingerprint(&log_plus), log_fingerprint(&log_minus));
        // Different NaN payloads canonicalize to one identity.
        let nan_a = f64::from_bits(0x7FF8_0000_0000_0001);
        let nan_b = f64::from_bits(0xFFF8_DEAD_BEEF_0001);
        assert!(nan_a.is_nan() && nan_b.is_nan());
        let mut log_nan_a = log();
        let mut log_nan_b = log_nan_a.clone();
        log_nan_a.records[0].tcp_info.srtt_s = nan_a;
        log_nan_b.records[0].tcp_info.srtt_s = nan_b;
        assert_eq!(log_fingerprint(&log_nan_a), log_fingerprint(&log_nan_b));
        // Canonicalization must not conflate distinct real values.
        assert_ne!(log_fingerprint(&log_nan_a), log_fingerprint(&log()));
    }

    #[test]
    fn second_lookup_hits_and_shares_the_posterior() {
        let cache = AbductionCache::new();
        let log = log();
        let config = VeritasConfig::paper_default();
        let (first, source1) = cache.get_or_infer("s0", &log, &config).unwrap();
        let (second, source2) = cache.get_or_infer("s0", &log, &config).unwrap();
        assert_eq!(source1, CacheSource::Inferred);
        assert_eq!(source2, CacheSource::Memory);
        assert!(!source1.is_warm());
        assert!(source2.is_warm());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                disk_hits: 0,
                entries: 1,
                healed: 0,
                kernel_disk_hits: 0
            }
        );
    }

    #[test]
    fn distinct_sessions_horizons_and_configs_get_distinct_entries() {
        let cache = AbductionCache::new();
        let log = log();
        let config = VeritasConfig::paper_default();
        cache.get_or_infer("a", &log, &config).unwrap();
        cache.get_or_infer("b", &log, &config).unwrap();
        cache.get_or_infer_prefix("a", &log, 10, &config).unwrap();
        cache
            .get_or_infer("a", &log, &config.with_sigma(1.0))
            .unwrap();
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.entries(), 4);
        cache.clear();
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn clear_drops_the_workspace_table_too() {
        // Regression: `clear()` used to drop posterior slots but leave the
        // per-config `EhmmWorkspace` kernel tables, so sweep-heavy callers
        // (up to MAX_SWEEP_VARIANTS configs per sweep) accumulated tables
        // that survived every clear.
        let cache = AbductionCache::new();
        let log = log();
        let config = VeritasConfig::paper_default();
        let (before, _) = cache.get_or_infer("s", &log, &config).unwrap();
        assert!(Arc::ptr_eq(
            before.workspace(),
            &cache.workspace_for(&config)
        ));
        cache.clear();
        assert!(
            !Arc::ptr_eq(before.workspace(), &cache.workspace_for(&config)),
            "clear() must drop the kernel workspaces, not just the posteriors"
        );
    }

    #[test]
    fn sampling_overrides_share_one_entry() {
        let cache = AbductionCache::new();
        let log = log();
        let base = VeritasConfig::paper_default();
        cache.get_or_infer("s", &log, &base).unwrap();
        let (_, source) = cache
            .get_or_infer("s", &log, &base.with_samples(2).with_seed(99))
            .unwrap();
        assert!(
            source.is_warm(),
            "seed/sample overrides must not force re-inference"
        );
    }

    #[test]
    fn colliding_session_ids_from_different_logs_do_not_alias() {
        // Two corpora can both name a session `session-0`; the log
        // fingerprint in the key must keep their posteriors apart.
        let cache = AbductionCache::new();
        let log_a = log();
        let mut log_b = log_a.clone();
        log_b.records.truncate(log_b.records.len() - 1);
        let config = VeritasConfig::paper_default();
        let (a, source_a) = cache.get_or_infer("session-0", &log_a, &config).unwrap();
        let (b, source_b) = cache.get_or_infer("session-0", &log_b, &config).unwrap();
        assert_eq!(source_a, CacheSource::Inferred);
        assert_eq!(
            source_b,
            CacheSource::Inferred,
            "a different log must not hit the first log's entry"
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(log_fingerprint(&log_a), log_fingerprint(&log_b));
    }

    #[test]
    #[should_panic(expected = "exceeds the log's")]
    fn out_of_range_horizons_are_rejected() {
        let log = log();
        let _ = infer_prefix(&log, log.records.len() + 1, &VeritasConfig::paper_default());
    }

    #[test]
    fn failures_are_not_cached() {
        let cache = AbductionCache::new();
        let empty = SessionLog {
            records: vec![],
            ..log()
        };
        let config = VeritasConfig::paper_default();
        assert!(cache.get_or_infer("e", &empty, &config).is_err());
        assert!(cache.get_or_infer("e", &empty, &config).is_err());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn sessions_under_one_config_share_an_inference_workspace() {
        let cache = AbductionCache::new();
        let log_a = log();
        let mut log_b = log_a.clone();
        log_b.records.truncate(log_b.records.len() / 2);
        let config = VeritasConfig::paper_default();
        let (a, _) = cache.get_or_infer("a", &log_a, &config).unwrap();
        let (b, _) = cache.get_or_infer("b", &log_b, &config).unwrap();
        assert!(
            Arc::ptr_eq(a.workspace(), b.workspace()),
            "same config must resolve to one shared kernel workspace"
        );
        assert!(Arc::ptr_eq(a.workspace(), &cache.workspace_for(&config)));
        // A posterior-relevant config change gets its own workspace; a
        // sampling-only change does not.
        let (c, _) = cache
            .get_or_infer("a", &log_a, &config.with_stay_probability(0.9))
            .unwrap();
        assert!(!Arc::ptr_eq(a.workspace(), c.workspace()));
        let (d, _) = cache
            .get_or_infer("a", &log_a, &config.with_seed(999).with_samples(2))
            .unwrap();
        assert!(Arc::ptr_eq(a.workspace(), d.workspace()));
    }

    #[test]
    fn prefix_inference_matches_direct_inference() {
        // The executor-built emission path and the workspace plumbing must
        // not change results relative to plain `Abduction::try_infer`.
        let log = log();
        let config = VeritasConfig::paper_default();
        let via_engine = infer_prefix(&log, log.records.len(), &config).unwrap();
        let direct = veritas::Abduction::try_infer(&log, &config).unwrap();
        assert_eq!(via_engine.viterbi_states(), direct.viterbi_states());
        assert_eq!(via_engine.posteriors(), direct.posteriors());
        let half = log.records.len() / 2;
        let prefix_engine = infer_prefix(&log, half, &config).unwrap();
        let prefix_log = SessionLog {
            records: log.records[..half].to_vec(),
            ..log.clone()
        };
        let prefix_direct = veritas::Abduction::try_infer(&prefix_log, &config).unwrap();
        assert_eq!(
            prefix_engine.viterbi_states(),
            prefix_direct.viterbi_states()
        );
    }

    #[test]
    fn non_monotonic_logs_surface_as_typed_errors_not_panics() {
        let cache = AbductionCache::new();
        let mut bad = log();
        let n = bad.records.len() - 1;
        bad.records[n].start_time_s = 0.0;
        let config = VeritasConfig::paper_default();
        match cache.get_or_infer("bad", &bad, &config) {
            Err(AbductionError::NonMonotonicLog { chunk }) => assert_eq!(chunk, n),
            other => panic!("expected NonMonotonicLog, got {other:?}"),
        }
        assert_eq!(cache.entries(), 0, "failures must not be cached");
    }

    proptest::proptest! {
        /// Equal-*valued* configs must share a fingerprint no matter which
        /// bit pattern represents the value: ±0.0 are one identity, every
        /// NaN payload is one identity, and any other value is keyed by
        /// its (unique) bit pattern.
        #[test]
        fn equal_valued_configs_share_a_fingerprint(
            class in 0u8..3,
            bits in proptest::any::<u64>(),
            payload in proptest::any::<u64>(),
            flip in proptest::any::<bool>(),
            field in 0usize..5,
        ) {
            const NAN_EXP: u64 = 0x7FF8_0000_0000_0000;
            const NAN_PAYLOAD: u64 = 0x0007_FFFF_FFFF_FFFF;
            let (value, twin) = match class {
                // The two zeros.
                0 => (0.0, if flip { -0.0 } else { 0.0 }),
                // Two NaNs with arbitrary payloads and signs.
                1 => (
                    f64::from_bits(NAN_EXP | (bits & NAN_PAYLOAD)),
                    f64::from_bits(
                        (u64::from(flip) << 63) | NAN_EXP | (payload & NAN_PAYLOAD),
                    ),
                ),
                // Any value is equal to itself.
                _ => (f64::from_bits(bits), f64::from_bits(bits)),
            };
            let mut a = VeritasConfig::paper_default();
            let mut b = a;
            let set = |c: &mut VeritasConfig, v: f64| match field {
                0 => c.delta_s = v,
                1 => c.epsilon_mbps = v,
                2 => c.max_capacity_mbps = v,
                3 => c.sigma_mbps = v,
                _ => c.stay_probability = v,
            };
            set(&mut a, value);
            set(&mut b, twin);
            proptest::prop_assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
            // The same canonicalization governs log fingerprints.
            let mut log_a = tiny_log();
            let mut log_b = log_a.clone();
            log_a.records[0].throughput_mbps = value;
            log_b.records[0].throughput_mbps = twin;
            proptest::prop_assert_eq!(log_fingerprint(&log_a), log_fingerprint(&log_b));
        }
    }

    /// A minimal hand-built log for fingerprint tests — cheap enough to
    /// construct once per property-test case (no session emulation).
    fn tiny_log() -> SessionLog {
        use veritas_player::ChunkRecord;
        let record = |index: usize, start: f64| ChunkRecord {
            index,
            quality: 1,
            size_bytes: 400_000.0,
            ssim: 0.95,
            wait_before_request_s: 0.0,
            start_time_s: start,
            end_time_s: start + 1.0,
            download_time_s: 1.0,
            throughput_mbps: 3.2,
            buffer_at_request_s: 2.0,
            rebuffer_s: 0.0,
            tcp_info: veritas_net::TcpInfo::fresh(0.08),
            gtbw_at_request_mbps: 4.0,
        };
        SessionLog {
            abr_name: "MPC".to_string(),
            buffer_capacity_s: 5.0,
            chunk_duration_s: 2.0,
            records: vec![record(0, 0.0), record(1, 2.0)],
            startup_delay_s: 1.0,
            total_rebuffer_s: 0.0,
            session_duration_s: 6.0,
        }
    }

    fn temp_store(name: &str) -> DiskStore {
        let dir = std::env::temp_dir().join(format!("veritas_cache_disk_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        DiskStore::open(dir).unwrap()
    }

    #[test]
    fn disk_tier_restores_posteriors_across_cache_instances() {
        let store = temp_store("restore");
        let dir = store.dir().to_path_buf();
        let log = log();
        let config = VeritasConfig::paper_default();

        let cold = AbductionCache::new().with_disk_store(store);
        let (inferred, source) = cold.get_or_infer("s", &log, &config).unwrap();
        assert_eq!(source, CacheSource::Inferred);
        assert_eq!(cold.disk_hits(), 0);

        // A fresh cache (fresh process, in effect) over the same directory
        // restores the posterior without inference.
        let warm = AbductionCache::new().with_disk_store(DiskStore::open(&dir).unwrap());
        let (restored, source) = warm.get_or_infer("s", &log, &config).unwrap();
        assert_eq!(source, CacheSource::Disk);
        assert_eq!(warm.misses(), 0, "the warm lookup must not infer");
        assert_eq!(restored.posteriors(), inferred.posteriors());
        assert_eq!(restored.viterbi_states(), inferred.viterbi_states());
        // Sampling — the consumer of the restored posterior — agrees too.
        assert_eq!(restored.sample_traces(3), inferred.sample_traces(3));
        // Once restored, the entry lives in memory.
        let (_, source) = warm.get_or_infer("s", &log, &config).unwrap();
        assert_eq!(source, CacheSource::Memory);
        // The cold run wrote its kernel table through alongside the
        // posterior, so the warm workspace restored kernels from disk too.
        assert!(warm.kernel_disk_hits() > 0);
        assert_eq!(
            warm.stats(),
            CacheStats {
                hits: 1,
                misses: 0,
                disk_hits: 1,
                entries: 1,
                healed: 0,
                kernel_disk_hits: warm.kernel_disk_hits()
            }
        );
    }

    #[test]
    fn kernel_tables_restore_across_cache_instances() {
        let store = temp_store("kernels");
        let dir = store.dir().to_path_buf();
        let log = log();
        let config = VeritasConfig::paper_default();

        let cold = AbductionCache::new().with_disk_store(store);
        cold.get_or_infer("s", &log, &config).unwrap();
        let cold_kernels = cold.workspace_for(&config).export_kernels();
        assert!(!cold_kernels.is_empty(), "inference materializes kernels");
        let vkern = cold
            .disk_store()
            .unwrap()
            .kernel_path_for(config_fingerprint(&config));
        assert!(vkern.exists(), "the kernel table was written through");

        // A fresh cache restores every kernel before running anything, and
        // the restored matrices are bit-identical to the computed ones.
        let warm = AbductionCache::new().with_disk_store(DiskStore::open(&dir).unwrap());
        let workspace = warm.workspace_for(&config);
        assert_eq!(warm.kernel_disk_hits(), cold_kernels.len() as u64);
        let warm_kernels = workspace.export_kernels();
        assert_eq!(warm_kernels.len(), cold_kernels.len());
        for ((gap, matrix), (back_gap, back_matrix)) in cold_kernels.iter().zip(&warm_kernels) {
            assert_eq!(gap, back_gap);
            assert_eq!(matrix.num_states(), back_matrix.num_states());
            for i in 0..matrix.num_states() {
                let bits = |row: &[f64]| -> Vec<u64> { row.iter().map(|p| p.to_bits()).collect() };
                assert_eq!(bits(matrix.row(i)), bits(back_matrix.row(i)));
            }
        }

        // Inference *through* restored kernels is bit-identical. A log the
        // store has never seen forces the warm cache to actually infer
        // (disk entries are keyed by log fingerprint, not session id); the
        // reference runs in a memory-only cache whose workspace computes
        // every kernel from scratch.
        let mut other = log.clone();
        other.records[1].start_time_s = 4.0;
        other.session_duration_s = 8.0;
        let (warm_abduction, source) = warm.get_or_infer("s2", &other, &config).unwrap();
        assert_eq!(source, CacheSource::Inferred);
        let reference = AbductionCache::new();
        let (ref_abduction, _) = reference.get_or_infer("s2", &other, &config).unwrap();
        assert_eq!(warm_abduction.posteriors(), ref_abduction.posteriors());
        assert_eq!(
            warm_abduction.sample_traces(4),
            ref_abduction.sample_traces(4)
        );
    }

    #[test]
    fn corrupt_kernel_tables_do_not_poison_the_cache() {
        let store = temp_store("kernels_corrupt");
        let dir = store.dir().to_path_buf();
        let log = log();
        let config = VeritasConfig::paper_default();

        let cold = AbductionCache::new().with_disk_store(store);
        let (inferred, _) = cold.get_or_infer("s", &log, &config).unwrap();
        let vkern = cold
            .disk_store()
            .unwrap()
            .kernel_path_for(config_fingerprint(&config));
        let mut bytes = std::fs::read(&vkern).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&vkern, &bytes).unwrap();

        // The corrupt table is a silent miss: no kernel restores, the
        // posterior restore still works, and answers are unchanged.
        let warm = AbductionCache::new().with_disk_store(DiskStore::open(&dir).unwrap());
        let (restored, source) = warm.get_or_infer("s", &log, &config).unwrap();
        assert_eq!(source, CacheSource::Disk);
        assert_eq!(warm.kernel_disk_hits(), 0);
        assert_eq!(restored.posteriors(), inferred.posteriors());
        // The load deleted the corrupt file so a later write-through can
        // replace it cleanly.
        assert!(!vkern.exists());
    }

    #[test]
    fn truncated_or_garbage_disk_entries_are_misses() {
        let store = temp_store("corrupt");
        let dir = store.dir().to_path_buf();
        let log = log();
        let config = VeritasConfig::paper_default();
        let cold = AbductionCache::new().with_disk_store(store);
        cold.get_or_infer("s", &log, &config).unwrap();

        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|ext| ext == "vpost"))
            .expect("the cold run must have persisted an entry");
        let bytes = std::fs::read(&entry).unwrap();

        for mangle in [
            &bytes[..bytes.len() / 2], // truncated
            b"total garbage".as_slice(),
            &[],
        ] {
            std::fs::write(&entry, mangle).unwrap();
            let warm = AbductionCache::new().with_disk_store(DiskStore::open(&dir).unwrap());
            let (_, source) = warm.get_or_infer("s", &log, &config).unwrap();
            assert_eq!(
                source,
                CacheSource::Inferred,
                "a bad store entry must be a miss, never an error"
            );
            assert_eq!(warm.disk_hits(), 0);
            assert_eq!(warm.healed(), 1, "the corrupt entry must count as healed");
        }

        // The re-inference wrote the entry back; it restores again.
        let healed = AbductionCache::new().with_disk_store(DiskStore::open(&dir).unwrap());
        let (_, source) = healed.get_or_infer("s", &log, &config).unwrap();
        assert_eq!(source, CacheSource::Disk);
    }

    #[test]
    fn disk_entries_do_not_serve_changed_logs_or_configs() {
        let store = temp_store("invalidate");
        let dir = store.dir().to_path_buf();
        let log_a = log();
        let config = VeritasConfig::paper_default();
        let cold = AbductionCache::new().with_disk_store(store);
        cold.get_or_infer("s", &log_a, &config).unwrap();

        // A changed log (different fingerprint) and a changed
        // posterior-relevant config both miss naturally.
        let mut log_b = log_a.clone();
        log_b.records[0].throughput_mbps += 0.125;
        let warm = AbductionCache::new().with_disk_store(DiskStore::open(&dir).unwrap());
        let (_, source) = warm.get_or_infer("s", &log_b, &config).unwrap();
        assert_eq!(source, CacheSource::Inferred);
        let (_, source) = warm
            .get_or_infer("s", &log_a, &config.with_sigma(1.0))
            .unwrap();
        assert_eq!(source, CacheSource::Inferred);
        // The original pair still restores.
        let (_, source) = warm.get_or_infer("s", &log_a, &config).unwrap();
        assert_eq!(source, CacheSource::Disk);
    }

    #[test]
    fn concurrent_lookups_infer_exactly_once() {
        let cache = AbductionCache::new();
        let log = log();
        let config = VeritasConfig::paper_default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_infer("shared", &log, &config).unwrap();
                });
            }
        });
        assert_eq!(cache.misses(), 1, "posterior must be computed exactly once");
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn concurrent_lookups_heal_a_corrupt_entry_exactly_once() {
        let store = temp_store("concurrent_heal");
        let dir = store.dir().to_path_buf();
        let log = log();
        let config = VeritasConfig::paper_default();

        // Seed a valid entry, then corrupt it in place.
        let cold = AbductionCache::new().with_disk_store(store);
        let (expected, _) = cold.get_or_infer("shared", &log, &config).unwrap();
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|ext| ext == "vpost"))
            .expect("the cold run must have persisted an entry");
        let valid_bytes = std::fs::read(&entry).unwrap();
        let mut corrupt = valid_bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        std::fs::write(&entry, &corrupt).unwrap();

        // N threads race the same corrupted key through one cache: the
        // slot lock serializes the disk probe, so exactly one thread
        // observes the corruption, heals it, and re-infers; the rest are
        // memory hits.
        let cache = AbductionCache::new().with_disk_store(DiskStore::open(&dir).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (restored, _) = cache.get_or_infer("shared", &log, &config).unwrap();
                    assert_eq!(restored.posteriors(), expected.posteriors());
                });
            }
        });
        assert_eq!(
            cache.healed(),
            1,
            "the corrupt entry must heal exactly once"
        );
        assert_eq!(cache.misses(), 1, "the heal re-infers exactly once");
        assert_eq!(cache.hits(), 7);
        assert_eq!(cache.disk_hits(), 0);

        // The rewrite is atomic (write-then-rename): no temp files remain
        // and the healed entry is byte-identical to the original valid
        // one — the key is a content address.
        let mut leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        leftovers.retain(|p| {
            !p.extension()
                .is_some_and(|ext| ext == "vpost" || ext == "vkern")
        });
        assert!(leftovers.is_empty(), "no torn temp files: {leftovers:?}");
        assert_eq!(
            std::fs::read(&entry).unwrap(),
            valid_bytes,
            "the healed entry must be byte-identical to the original"
        );

        // And a fresh cache restores it from disk again.
        let warm = AbductionCache::new().with_disk_store(DiskStore::open(&dir).unwrap());
        let (_, source) = warm.get_or_infer("shared", &log, &config).unwrap();
        assert_eq!(source, CacheSource::Disk);
        assert_eq!(warm.healed(), 0);
    }
}
