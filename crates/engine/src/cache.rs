//! The abduction cache: one EHMM posterior per (session, config, horizon).
//!
//! Abduction — building the emission table and running forward–backward and
//! Viterbi — is the expensive step of every causal query. Interventional
//! and counterfactual queries over the same session under the same
//! configuration need the *same* posterior, so the engine computes it once
//! and shares it. Entries are keyed by the session id, fingerprints of the
//! posterior-relevant [`VeritasConfig`] fields and of the log's observed
//! variables (so a reused id never aliases a different corpus's session),
//! and the observation horizon (number of chunk records conditioned on;
//! interventional queries at an explicit decision point condition on a
//! prefix).
//!
//! Concurrency: the map itself is only locked long enough to find or insert
//! an entry slot; inference runs under the slot's own lock, so two workers
//! asking for the same key never compute it twice, and workers on different
//! keys never wait on each other's inference.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use veritas::{Abduction, AbductionError, VeritasConfig};
use veritas_ehmm::EhmmWorkspace;
use veritas_player::SessionLog;

use crate::executor;

/// Logs with at least this many chunk records get their emission table
/// built through the batch executor — the rows are embarrassingly parallel
/// and, for long sessions, dominate the non-kernel part of inference.
/// Shorter logs are built inline: thread-scope setup would cost more than
/// it saves.
const PARALLEL_EMISSION_THRESHOLD: usize = 512;

/// FNV-1a offset basis — the seed of every fingerprint in this module.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Mixes one 64-bit word into an FNV-1a hash, byte by byte. The single
/// implementation behind [`config_fingerprint`], [`log_fingerprint`],
/// [`combine_fingerprints`], and the corpus deployed-setting fingerprint,
/// so the hashing can never diverge between them.
pub(crate) fn fnv_mix(hash: &mut u64, bits: u64) {
    for byte in bits.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Fingerprints the configuration fields the abduction posterior depends
/// on: δ, ε, the grid ceiling, σ, and the stay probability. `num_samples`
/// and `seed` are deliberately excluded — they only steer post-hoc
/// posterior *sampling* (see [`Abduction::sample_traces_with_seed`]), so
/// queries that differ only in sampling still share one cache entry.
pub fn config_fingerprint(config: &VeritasConfig) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv_mix(&mut hash, config.delta_s.to_bits());
    fnv_mix(&mut hash, config.epsilon_mbps.to_bits());
    fnv_mix(&mut hash, config.max_capacity_mbps.to_bits());
    fnv_mix(&mut hash, config.sigma_mbps.to_bits());
    fnv_mix(&mut hash, config.stay_probability.to_bits());
    hash
}

/// Fingerprints every observed variable of a log that abduction conditions
/// on: the session duration (sizes the δ-interval grid), and each record's
/// start time, size, throughput, and TCP snapshot (the emission's control
/// variables). Mixed into the cache key so that a session id reused by a
/// *different* log — e.g. two synthetic corpora both naming sessions
/// `session-0` — can never alias another corpus's posterior.
pub fn log_fingerprint(log: &SessionLog) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv_mix(&mut hash, log.records.len() as u64);
    fnv_mix(&mut hash, log.session_duration_s.to_bits());
    for record in &log.records {
        fnv_mix(&mut hash, record.start_time_s.to_bits());
        fnv_mix(&mut hash, record.size_bytes.to_bits());
        fnv_mix(&mut hash, record.throughput_mbps.to_bits());
        fnv_mix(&mut hash, record.tcp_info.cwnd_segments.to_bits());
        fnv_mix(&mut hash, record.tcp_info.ssthresh_segments.to_bits());
        fnv_mix(&mut hash, record.tcp_info.rto_s.to_bits());
        fnv_mix(&mut hash, record.tcp_info.srtt_s.to_bits());
        fnv_mix(&mut hash, record.tcp_info.min_rtt_s.to_bits());
        fnv_mix(&mut hash, record.tcp_info.last_send_gap_s.to_bits());
    }
    hash
}

/// Infers an abduction over the first `horizon` records of `log` —
/// the one shared implementation behind both the cached and uncached
/// execution paths. Emission rows for large logs are computed through the
/// batch executor; the caller may supply a shared [`EhmmWorkspace`] (see
/// [`AbductionCache::workspace_for`]) so sessions inferred under one
/// configuration reuse the same transition/log-power kernels.
///
/// # Panics
///
/// Panics if `horizon` exceeds the log's record count; callers validate
/// query-supplied horizons first (see `Engine::answer_interventional`).
pub fn infer_prefix(
    log: &SessionLog,
    horizon: usize,
    config: &VeritasConfig,
) -> Result<Abduction, AbductionError> {
    infer_prefix_with(log, horizon, config, |spec| {
        Arc::new(EhmmWorkspace::new(spec))
    })
}

/// [`infer_prefix`] with an explicit workspace provider. The provider is
/// only invoked after the config validates, so it may build the spec-derived
/// workspace without re-checking.
fn infer_prefix_with(
    log: &SessionLog,
    horizon: usize,
    config: &VeritasConfig,
    workspace: impl FnOnce(veritas_ehmm::EhmmSpec) -> Arc<EhmmWorkspace>,
) -> Result<Abduction, AbductionError> {
    assert!(
        horizon <= log.records.len(),
        "horizon {horizon} exceeds the log's {} records",
        log.records.len()
    );
    config.validate().map_err(AbductionError::InvalidConfig)?;
    let prefix;
    let view = if horizon == log.records.len() {
        log
    } else {
        prefix = SessionLog {
            records: log.records[..horizon].to_vec(),
            ..log.clone()
        };
        &prefix
    };
    if view.records.is_empty() {
        return Err(AbductionError::EmptySession);
    }
    let rows = emission_rows(view, config);
    Abduction::try_infer_prepared(view, config, rows, workspace(Abduction::spec_for(config)))
}

/// Builds the per-(chunk, capacity) emission log-density table for a log,
/// fanning the rows out across the batch executor once the log is large
/// enough for the parallelism to pay for itself. Inferences already running
/// on an executor worker (the engine's normal batch path) stay serial —
/// the cores are busy with other sessions, and nesting pools would spawn
/// up to `threads²` threads.
fn emission_rows(log: &SessionLog, config: &VeritasConfig) -> Vec<Vec<f64>> {
    let capacities = config.capacity_grid();
    let records = &log.records;
    if records.len() >= PARALLEL_EMISSION_THRESHOLD && !executor::on_worker_thread() {
        executor::execute_indexed(records.len(), executor::default_threads(), |n| {
            Abduction::emission_row(&records[n], &capacities, config.sigma_mbps)
        })
    } else {
        records
            .iter()
            .map(|r| Abduction::emission_row(r, &capacities, config.sigma_mbps))
            .collect()
    }
}

/// Order-sensitive fold of fingerprints (per-session [`log_fingerprint`]s
/// plus the deployed-setting fingerprint) into one corpus-content
/// fingerprint. A [`crate::QueryPlan`] records it at compile time so a
/// submit over a *different* corpus that happens to have the same session
/// count is rejected instead of replaying wrong scenarios against wrong
/// logs.
pub(crate) fn combine_fingerprints(fps: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = FNV_OFFSET;
    for fp in fps {
        fnv_mix(&mut hash, fp);
    }
    hash
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    session: String,
    fingerprint: u64,
    log: u64,
    horizon: usize,
}

type Slot = Arc<Mutex<Option<Arc<Abduction>>>>;

/// Counters describing how a cache has been used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from an existing posterior.
    pub hits: u64,
    /// Lookups that had to run inference.
    pub misses: u64,
    /// Posteriors currently held.
    pub entries: u64,
}

/// A concurrent, compute-once cache of [`Abduction`] results.
///
/// Besides the posterior slots, the cache keeps one shared
/// [`EhmmWorkspace`] per configuration fingerprint: every session inferred
/// under the same config reuses the same memoized `A^Δ` / `ln A^Δ`
/// transition kernels, across the whole batch executor.
#[derive(Debug, Default)]
pub struct AbductionCache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    workspaces: Mutex<HashMap<u64, Arc<EhmmWorkspace>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
}

impl AbductionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached full-session abduction for `(session_id, config)`,
    /// inferring (and caching) it on first use. The boolean is `true` on a
    /// cache hit.
    pub fn get_or_infer(
        &self,
        session_id: &str,
        log: &SessionLog,
        config: &VeritasConfig,
    ) -> Result<(Arc<Abduction>, bool), AbductionError> {
        self.get_or_infer_prefix(session_id, log, log.records.len(), config)
    }

    /// Like [`Self::get_or_infer`] but conditioning only on the first
    /// `horizon` chunk records — the decision-point view interventional
    /// queries need. `horizon == log.records.len()` is the full-session
    /// entry and shares its key with [`Self::get_or_infer`].
    ///
    /// Inference failures are returned (and counted as misses) but not
    /// cached, so a transiently bad query does not poison the slot.
    pub fn get_or_infer_prefix(
        &self,
        session_id: &str,
        log: &SessionLog,
        horizon: usize,
        config: &VeritasConfig,
    ) -> Result<(Arc<Abduction>, bool), AbductionError> {
        self.get_or_infer_keyed(
            session_id,
            log,
            log_fingerprint(log),
            horizon,
            config,
            config_fingerprint(config),
        )
    }

    /// Like [`Self::get_or_infer_prefix`] but with the log and config
    /// fingerprints supplied by the caller. The executor computes both
    /// once per session / per planned config (see
    /// [`crate::QueryPlan::configs`]) instead of re-hashing the full log
    /// on every lookup; the fingerprints **must** be
    /// [`log_fingerprint`]`(log)` and [`config_fingerprint`]`(config)` or
    /// cache entries will alias.
    pub fn get_or_infer_keyed(
        &self,
        session_id: &str,
        log: &SessionLog,
        log_fp: u64,
        horizon: usize,
        config: &VeritasConfig,
        config_fp: u64,
    ) -> Result<(Arc<Abduction>, bool), AbductionError> {
        let key = CacheKey {
            session: session_id.to_string(),
            fingerprint: config_fp,
            log: log_fp,
            horizon,
        };
        let fingerprint = key.fingerprint;
        let slot: Slot = {
            let mut slots = self.slots.lock();
            slots.entry(key).or_default().clone()
        };
        let mut guard = slot.lock();
        if let Some(abduction) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((abduction.clone(), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let abduction = Arc::new(infer_prefix_with(log, horizon, config, |spec| {
            self.workspace_for_spec(fingerprint, spec)
        })?);
        *guard = Some(abduction.clone());
        self.entries.fetch_add(1, Ordering::Relaxed);
        Ok((abduction.clone(), false))
    }

    /// The shared inference workspace for `config`, created on first use
    /// and keyed by the config fingerprint. All abductions the cache runs
    /// for this configuration resolve their transition kernels through it.
    ///
    /// # Panics
    ///
    /// Panics on an invalid grid configuration; the inference entry points
    /// validate before calling this.
    pub fn workspace_for(&self, config: &VeritasConfig) -> Arc<EhmmWorkspace> {
        self.workspace_for_spec(config_fingerprint(config), Abduction::spec_for(config))
    }

    fn workspace_for_spec(
        &self,
        fingerprint: u64,
        spec: veritas_ehmm::EhmmSpec,
    ) -> Arc<EhmmWorkspace> {
        self.workspaces
            .lock()
            .entry(fingerprint)
            .or_insert_with(|| Arc::new(EhmmWorkspace::new(spec)))
            .clone()
    }

    /// Lookups served without inference so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran inference so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached posteriors. Maintained as a counter so reading it
    /// never waits on an in-flight inference's slot lock.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.entries(),
        }
    }

    /// Drops every cached posterior, keeping the hit/miss counters. Not
    /// meant to race in-flight inferences: a posterior stored into an
    /// already-evicted slot survives only with its holder and is not
    /// reflected in [`Self::entries`].
    pub fn clear(&self) {
        self.slots.lock().clear();
        self.entries.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_abr::Mpc;
    use veritas_media::VideoAsset;
    use veritas_player::{run_session, PlayerConfig};
    use veritas_trace::generators::{FccLike, TraceGenerator};

    fn log() -> SessionLog {
        let asset = VideoAsset::paper_default(3);
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 17);
        let mut abr = Mpc::new();
        run_session(&asset, &mut abr, &truth, &PlayerConfig::paper_default())
    }

    #[test]
    fn fingerprint_ignores_sampling_fields_only() {
        let base = VeritasConfig::paper_default();
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&base.with_samples(9).with_seed(123))
        );
        assert_ne!(
            config_fingerprint(&base),
            config_fingerprint(&base.with_sigma(1.0))
        );
        assert_ne!(
            config_fingerprint(&base),
            config_fingerprint(&base.with_stay_probability(0.9))
        );
    }

    #[test]
    fn second_lookup_hits_and_shares_the_posterior() {
        let cache = AbductionCache::new();
        let log = log();
        let config = VeritasConfig::paper_default();
        let (first, hit1) = cache.get_or_infer("s0", &log, &config).unwrap();
        let (second, hit2) = cache.get_or_infer("s0", &log, &config).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn distinct_sessions_horizons_and_configs_get_distinct_entries() {
        let cache = AbductionCache::new();
        let log = log();
        let config = VeritasConfig::paper_default();
        cache.get_or_infer("a", &log, &config).unwrap();
        cache.get_or_infer("b", &log, &config).unwrap();
        cache.get_or_infer_prefix("a", &log, 10, &config).unwrap();
        cache
            .get_or_infer("a", &log, &config.with_sigma(1.0))
            .unwrap();
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.entries(), 4);
        cache.clear();
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn sampling_overrides_share_one_entry() {
        let cache = AbductionCache::new();
        let log = log();
        let base = VeritasConfig::paper_default();
        cache.get_or_infer("s", &log, &base).unwrap();
        let (_, hit) = cache
            .get_or_infer("s", &log, &base.with_samples(2).with_seed(99))
            .unwrap();
        assert!(hit, "seed/sample overrides must not force re-inference");
    }

    #[test]
    fn colliding_session_ids_from_different_logs_do_not_alias() {
        // Two corpora can both name a session `session-0`; the log
        // fingerprint in the key must keep their posteriors apart.
        let cache = AbductionCache::new();
        let log_a = log();
        let mut log_b = log_a.clone();
        log_b.records.truncate(log_b.records.len() - 1);
        let config = VeritasConfig::paper_default();
        let (a, hit_a) = cache.get_or_infer("session-0", &log_a, &config).unwrap();
        let (b, hit_b) = cache.get_or_infer("session-0", &log_b, &config).unwrap();
        assert!(!hit_a);
        assert!(!hit_b, "a different log must not hit the first log's entry");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(log_fingerprint(&log_a), log_fingerprint(&log_b));
    }

    #[test]
    #[should_panic(expected = "exceeds the log's")]
    fn out_of_range_horizons_are_rejected() {
        let log = log();
        let _ = infer_prefix(&log, log.records.len() + 1, &VeritasConfig::paper_default());
    }

    #[test]
    fn failures_are_not_cached() {
        let cache = AbductionCache::new();
        let empty = SessionLog {
            records: vec![],
            ..log()
        };
        let config = VeritasConfig::paper_default();
        assert!(cache.get_or_infer("e", &empty, &config).is_err());
        assert!(cache.get_or_infer("e", &empty, &config).is_err());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn sessions_under_one_config_share_an_inference_workspace() {
        let cache = AbductionCache::new();
        let log_a = log();
        let mut log_b = log_a.clone();
        log_b.records.truncate(log_b.records.len() / 2);
        let config = VeritasConfig::paper_default();
        let (a, _) = cache.get_or_infer("a", &log_a, &config).unwrap();
        let (b, _) = cache.get_or_infer("b", &log_b, &config).unwrap();
        assert!(
            Arc::ptr_eq(a.workspace(), b.workspace()),
            "same config must resolve to one shared kernel workspace"
        );
        assert!(Arc::ptr_eq(a.workspace(), &cache.workspace_for(&config)));
        // A posterior-relevant config change gets its own workspace; a
        // sampling-only change does not.
        let (c, _) = cache
            .get_or_infer("a", &log_a, &config.with_stay_probability(0.9))
            .unwrap();
        assert!(!Arc::ptr_eq(a.workspace(), c.workspace()));
        let (d, _) = cache
            .get_or_infer("a", &log_a, &config.with_seed(999).with_samples(2))
            .unwrap();
        assert!(Arc::ptr_eq(a.workspace(), d.workspace()));
    }

    #[test]
    fn prefix_inference_matches_direct_inference() {
        // The executor-built emission path and the workspace plumbing must
        // not change results relative to plain `Abduction::try_infer`.
        let log = log();
        let config = VeritasConfig::paper_default();
        let via_engine = infer_prefix(&log, log.records.len(), &config).unwrap();
        let direct = veritas::Abduction::try_infer(&log, &config).unwrap();
        assert_eq!(via_engine.viterbi_states(), direct.viterbi_states());
        assert_eq!(via_engine.posteriors(), direct.posteriors());
        let half = log.records.len() / 2;
        let prefix_engine = infer_prefix(&log, half, &config).unwrap();
        let prefix_log = SessionLog {
            records: log.records[..half].to_vec(),
            ..log.clone()
        };
        let prefix_direct = veritas::Abduction::try_infer(&prefix_log, &config).unwrap();
        assert_eq!(
            prefix_engine.viterbi_states(),
            prefix_direct.viterbi_states()
        );
    }

    #[test]
    fn non_monotonic_logs_surface_as_typed_errors_not_panics() {
        let cache = AbductionCache::new();
        let mut bad = log();
        let n = bad.records.len() - 1;
        bad.records[n].start_time_s = 0.0;
        let config = VeritasConfig::paper_default();
        match cache.get_or_infer("bad", &bad, &config) {
            Err(AbductionError::NonMonotonicLog { chunk }) => assert_eq!(chunk, n),
            other => panic!("expected NonMonotonicLog, got {other:?}"),
        }
        assert_eq!(cache.entries(), 0, "failures must not be cached");
    }

    #[test]
    fn concurrent_lookups_infer_exactly_once() {
        let cache = AbductionCache::new();
        let log = log();
        let config = VeritasConfig::paper_default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_infer("shared", &log, &config).unwrap();
                });
            }
        });
        assert_eq!(cache.misses(), 1, "posterior must be computed exactly once");
        assert_eq!(cache.hits(), 7);
    }
}
