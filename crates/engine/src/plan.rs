//! The compile stage: turn a [`QuerySet`] into an executable [`QueryPlan`].
//!
//! A plan is a flat, validated list of [`WorkUnit`]s — one per
//! (query, session, config) triple — plus everything the executor needs
//! resolved up front: per-config fingerprints (so the hot path never
//! re-hashes a [`VeritasConfig`]), materialized counterfactual
//! [`Scenario`]s (so a ladder re-encode happens once per distinct spec,
//! not once per unit), and per-query unit counts (so aggregations know
//! when their fold is complete).
//!
//! Two query kinds only exist at this layer:
//!
//! * [`ConfigSweep`] — [`crate::Query::sweep`] expands one query over a
//!   cartesian grid of configuration variants (emission noise, stay
//!   probability, sample counts, grid geometry). Each variant becomes its
//!   own [`PlannedConfig`] with its own precomputed fingerprint, so the
//!   abduction cache and the shared kernel workspaces key correctly per
//!   variant.
//! * [`AggregateSpec`] — [`crate::Query::aggregate`] declares a
//!   trace-level reduction (mean / p50 / p95 / min / max of a per-session
//!   metric) that the run handle folds incrementally from the record
//!   stream; only the per-session scalars are retained, never the full
//!   record set.

use serde::{de, Deserialize, Deserializer, Serialize};
use veritas::{Scenario, VeritasConfig};
use veritas_player::QoeSummary;

use crate::cache::config_fingerprint;
use crate::corpus::Corpus;
use crate::error::EngineError;
use crate::query::{
    object_fields, opt, reject_unknown, req, Query, QueryKind, QuerySet, ScenarioSpec,
};
use crate::runner::materialize_scenario;
use crate::store::{columns, ColumnSet};

/// Upper bound on the variants one sweep may expand to — a guard against
/// accidentally declaring a grid that turns one query into thousands of
/// inference units.
pub const MAX_SWEEP_VARIANTS: usize = 256;

/// A declarative grid of [`VeritasConfig`] variations for a sweep query.
///
/// Each present axis lists the values to sweep; absent axes keep the query
/// set's base configuration. The expansion is the cartesian product of the
/// present axes, in a fixed axis order (σ, stay probability, samples, ε,
/// grid ceiling), and every variant carries a stable human-readable label
/// (e.g. `sigma=0.25,stay=0.9`) echoed in result records.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ConfigSweep {
    /// Emission noise values (σ, Mbps) to sweep.
    pub sigma_mbps: Option<Vec<f64>>,
    /// Transition stay probabilities to sweep.
    pub stay_probability: Option<Vec<f64>>,
    /// Posterior sample counts to sweep (matters for counterfactual
    /// sweeps; abduction-shaped sweeps share one posterior across counts).
    pub num_samples: Option<Vec<usize>>,
    /// Capacity quantization steps (ε, Mbps) to sweep.
    pub epsilon_mbps: Option<Vec<f64>>,
    /// Capacity-grid ceilings (Mbps) to sweep.
    pub max_capacity_mbps: Option<Vec<f64>>,
}

impl ConfigSweep {
    /// An empty sweep (no axes); add axes with the `over_*` builders.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sweeps the emission noise σ.
    pub fn over_sigma(mut self, values: Vec<f64>) -> Self {
        self.sigma_mbps = Some(values);
        self
    }

    /// Sweeps the transition stay probability.
    pub fn over_stay_probability(mut self, values: Vec<f64>) -> Self {
        self.stay_probability = Some(values);
        self
    }

    /// Sweeps the posterior sample count.
    pub fn over_samples(mut self, values: Vec<usize>) -> Self {
        self.num_samples = Some(values);
        self
    }

    /// Sweeps the capacity quantization step ε.
    pub fn over_epsilon(mut self, values: Vec<f64>) -> Self {
        self.epsilon_mbps = Some(values);
        self
    }

    /// Sweeps the capacity-grid ceiling.
    pub fn over_max_capacity(mut self, values: Vec<f64>) -> Self {
        self.max_capacity_mbps = Some(values);
        self
    }

    /// Expands the grid over a base configuration, returning
    /// `(label, config)` pairs in deterministic axis-major order.
    pub fn expand(&self, base: &VeritasConfig) -> Vec<(String, VeritasConfig)> {
        let mut variants: Vec<(String, VeritasConfig)> = vec![(String::new(), *base)];
        variants = cross_axis(variants, "sigma", self.sigma_mbps.as_deref(), |c, v| {
            c.sigma_mbps = v
        });
        variants = cross_axis(
            variants,
            "stay",
            self.stay_probability.as_deref(),
            |c, v| c.stay_probability = v,
        );
        variants = cross_axis(variants, "samples", self.num_samples.as_deref(), |c, v| {
            c.num_samples = v
        });
        variants = cross_axis(variants, "epsilon", self.epsilon_mbps.as_deref(), |c, v| {
            c.epsilon_mbps = v
        });
        variants = cross_axis(
            variants,
            "max_capacity",
            self.max_capacity_mbps.as_deref(),
            |c, v| c.max_capacity_mbps = v,
        );
        variants
    }

    /// Number of variants the sweep expands to (product of axis lengths).
    pub fn variant_count(&self) -> usize {
        [
            self.sigma_mbps.as_ref().map(Vec::len),
            self.stay_probability.as_ref().map(Vec::len),
            self.num_samples.as_ref().map(Vec::len),
            self.epsilon_mbps.as_ref().map(Vec::len),
            self.max_capacity_mbps.as_ref().map(Vec::len),
        ]
        .into_iter()
        .flatten()
        .product()
    }

    /// Checks the sweep against a base configuration: at least one axis,
    /// no empty axis, a bounded variant count, and every expanded variant
    /// must be a valid [`VeritasConfig`].
    pub fn validate(&self, base: &VeritasConfig) -> Result<(), String> {
        let axes = [
            ("sigma_mbps", self.sigma_mbps.as_ref().map(Vec::len)),
            (
                "stay_probability",
                self.stay_probability.as_ref().map(Vec::len),
            ),
            ("num_samples", self.num_samples.as_ref().map(Vec::len)),
            ("epsilon_mbps", self.epsilon_mbps.as_ref().map(Vec::len)),
            (
                "max_capacity_mbps",
                self.max_capacity_mbps.as_ref().map(Vec::len),
            ),
        ];
        if axes.iter().all(|(_, len)| len.is_none()) {
            return Err("sweep declares no axes".to_string());
        }
        for (name, len) in axes {
            if len == Some(0) {
                return Err(format!("sweep axis `{name}` is empty"));
            }
        }
        let float_axes = [
            ("sigma_mbps", &self.sigma_mbps),
            ("stay_probability", &self.stay_probability),
            ("epsilon_mbps", &self.epsilon_mbps),
            ("max_capacity_mbps", &self.max_capacity_mbps),
        ];
        for (name, axis) in float_axes {
            if let Some(values) = axis {
                let mut bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
                bits.sort_unstable();
                bits.dedup();
                if bits.len() != values.len() {
                    return Err(format!("sweep axis `{name}` repeats a value"));
                }
            }
        }
        if let Some(values) = &self.num_samples {
            let mut sorted = values.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != values.len() {
                return Err("sweep axis `num_samples` repeats a value".to_string());
            }
        }
        let variants = self.variant_count();
        if variants > MAX_SWEEP_VARIANTS {
            return Err(format!(
                "sweep expands to {variants} variants (limit {MAX_SWEEP_VARIANTS})"
            ));
        }
        for (label, config) in self.expand(base) {
            config
                .validate()
                .map_err(|e| format!("sweep variant `{label}`: {e}"))?;
        }
        Ok(())
    }
}

/// Crosses the variants accumulated so far with one sweep axis; an absent
/// axis leaves the variants (and their labels) untouched.
fn cross_axis<T: Copy + std::fmt::Display>(
    variants: Vec<(String, VeritasConfig)>,
    name: &str,
    values: Option<&[T]>,
    set: impl Fn(&mut VeritasConfig, T),
) -> Vec<(String, VeritasConfig)> {
    let Some(values) = values else {
        return variants;
    };
    let mut next = Vec::with_capacity(variants.len() * values.len());
    for (label, config) in &variants {
        for &value in values {
            let mut config = *config;
            set(&mut config, value);
            let label = if label.is_empty() {
                format!("{name}={value}")
            } else {
                format!("{label},{name}={value}")
            };
            next.push((label, config));
        }
    }
    next
}

impl<'de> Deserialize<'de> for ConfigSweep {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "sweep")?;
        let sweep = ConfigSweep {
            sigma_mbps: opt(&mut fields, "sigma_mbps")?,
            stay_probability: opt(&mut fields, "stay_probability")?,
            num_samples: opt(&mut fields, "num_samples")?,
            epsilon_mbps: opt(&mut fields, "epsilon_mbps")?,
            max_capacity_mbps: opt(&mut fields, "max_capacity_mbps")?,
        };
        reject_unknown(&fields, "sweep")?;
        Ok(sweep)
    }
}

/// The per-session scalar an aggregation query reduces.
///
/// `mean_capacity_mbps` comes straight from the abducted posterior (the
/// mean of the Viterbi GTBW trace); the QoE metrics replay the declared
/// scenario over the session's posterior samples and take the per-session
/// median of the metric (the Veritas-median outcome of the paper's §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateMetric {
    /// Mean of the Viterbi GTBW trace in Mbps (bandwidth posterior).
    MeanCapacityMbps,
    /// Mean SSIM of the scenario replay.
    MeanSsim,
    /// Rebuffering (stall) ratio of the scenario replay, in percent.
    RebufferRatioPercent,
    /// Average bitrate of the scenario replay, in Mbps.
    AvgBitrateMbps,
    /// Startup delay of the scenario replay, in seconds.
    StartupDelayS,
}

impl AggregateMetric {
    /// The wire name of this metric.
    pub fn as_str(&self) -> &'static str {
        match self {
            AggregateMetric::MeanCapacityMbps => "mean_capacity_mbps",
            AggregateMetric::MeanSsim => "mean_ssim",
            AggregateMetric::RebufferRatioPercent => "rebuffer_ratio_percent",
            AggregateMetric::AvgBitrateMbps => "avg_bitrate_mbps",
            AggregateMetric::StartupDelayS => "startup_delay_s",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "mean_capacity_mbps" => Some(AggregateMetric::MeanCapacityMbps),
            "mean_ssim" => Some(AggregateMetric::MeanSsim),
            "rebuffer_ratio_percent" => Some(AggregateMetric::RebufferRatioPercent),
            "avg_bitrate_mbps" => Some(AggregateMetric::AvgBitrateMbps),
            "startup_delay_s" => Some(AggregateMetric::StartupDelayS),
            _ => None,
        }
    }

    /// Whether computing this metric requires replaying a scenario (the
    /// QoE metrics) rather than reading the posterior directly.
    pub fn needs_replay(&self) -> bool {
        !matches!(self, AggregateMetric::MeanCapacityMbps)
    }

    /// Reads this metric out of one replay outcome.
    pub(crate) fn of_qoe(&self, qoe: &QoeSummary) -> f64 {
        match self {
            AggregateMetric::MeanCapacityMbps => {
                unreachable!("capacity metric is read from the posterior, not a replay")
            }
            AggregateMetric::MeanSsim => qoe.mean_ssim,
            AggregateMetric::RebufferRatioPercent => qoe.rebuffer_ratio_percent,
            AggregateMetric::AvgBitrateMbps => qoe.avg_bitrate_mbps,
            AggregateMetric::StartupDelayS => qoe.startup_delay_s,
        }
    }
}

impl Serialize for AggregateMetric {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for AggregateMetric {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            serde::Value::String(s) => AggregateMetric::parse(&s).ok_or_else(|| {
                de::Error::custom(format!(
                    "unknown aggregate metric `{s}` (expected mean_capacity_mbps | mean_ssim | \
                     rebuffer_ratio_percent | avg_bitrate_mbps | startup_delay_s)"
                ))
            }),
            other => Err(de::Error::custom(format!(
                "aggregate metric must be a string, got {other:?}"
            ))),
        }
    }
}

/// A declarative trace-level reduction for an aggregation query.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AggregateSpec {
    /// The per-session scalar to reduce.
    pub metric: AggregateMetric,
    /// Scenario the QoE metrics replay (an unset scenario replays the
    /// deployed setting); ignored by `mean_capacity_mbps`.
    pub scenario: Option<ScenarioSpec>,
}

impl AggregateSpec {
    /// An aggregation of `metric` under the deployed setting.
    pub fn of(metric: AggregateMetric) -> Self {
        Self {
            metric,
            scenario: None,
        }
    }

    /// Sets the scenario the QoE metrics replay.
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.metric.needs_replay() && self.scenario.is_some() {
            return Err(format!(
                "aggregate metric `{}` reads the posterior directly; a scenario is meaningless",
                self.metric.as_str()
            ));
        }
        Ok(())
    }
}

impl<'de> Deserialize<'de> for AggregateSpec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "aggregate")?;
        let spec = AggregateSpec {
            metric: req(&mut fields, "aggregate", "metric")?,
            scenario: opt(&mut fields, "scenario")?,
        };
        reject_unknown(&fields, "aggregate")?;
        Ok(spec)
    }
}

/// The folded result of one aggregation query, carried by its final
/// `session: "*"` record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateSummary {
    /// The reduced metric.
    pub metric: AggregateMetric,
    /// Number of sessions that contributed a value.
    pub sessions: usize,
    /// Mean of the per-session values.
    pub mean: f64,
    /// Median (p50) of the per-session values.
    pub p50: f64,
    /// 95th percentile of the per-session values.
    pub p95: f64,
    /// Minimum per-session value.
    pub min: f64,
    /// Maximum per-session value.
    pub max: f64,
}

impl AggregateSummary {
    /// Reduces a set of per-session values (order irrelevant).
    /// Percentiles come from [`veritas_trace::stats::percentile`] — the
    /// same linear-interpolation helper the figure experiments use.
    ///
    /// # Panics
    ///
    /// Panics on an empty value set; the run handle emits an error record
    /// instead of calling this when no session produced a value.
    pub fn reduce(metric: AggregateMetric, values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot reduce zero values");
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Self {
            metric,
            sessions: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: veritas_trace::stats::percentile(&sorted, 50.0),
            p95: veritas_trace::stats::percentile(&sorted, 95.0),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice of integers:
/// the value at 1-based rank `⌈q/100 · len⌉` (`q = 0` yields the
/// minimum). Always an actually observed value — the right convention for
/// latency counters, unlike the linear interpolation
/// [`veritas_trace::stats::percentile`] applies to continuous metrics.
pub(crate) fn percentile_u64(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Multiply before dividing: `q / 100.0` alone rounds up for many
    // integer q (e.g. 0.28000…02), and `ceil` would overshoot the rank by
    // one; `q · len / 100` is exact for integer q.
    let rank = ((q.clamp(0.0, 100.0) * sorted.len() as f64) / 100.0).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The columns of a session block that abduction itself consumes: the
/// observation series (chunk sizes, start times, observed throughputs)
/// and the TCP snapshot the emission model conditions on. Every query
/// kind abduces, so every kind demands at least these.
const ABDUCTION_COLUMNS: ColumnSet = ColumnSet::of(&[
    columns::SIZE_BYTES,
    columns::START_TIME_S,
    columns::THROUGHPUT_MBPS,
    columns::CWND_SEGMENTS,
    columns::SSTHRESH_SEGMENTS,
    columns::RTO_S,
    columns::SRTT_S,
    columns::MIN_RTT_S,
    columns::LAST_SEND_GAP_S,
]);

/// The per-chunk columns one query's work units read from each selected
/// session log, derived from the query kind and scenario presence alone
/// — never from the corpus or the logs, so demand derivation keeps
/// compilation decode-free.
///
/// * Every kind abduces, so every kind needs [`ABDUCTION_COLUMNS`].
/// * Interventional queries additionally read the logged
///   `download_time_s` of the decision chunk (the actual outcome echoed
///   next to the prediction).
/// * Counterfactual answers — the counterfactual kind itself, and a
///   sweep carrying a scenario — additionally read `end_time_s`: the
///   Baseline estimator interpolates over the logged download windows.
///   Aggregations replay scenarios over posterior-sampled traces only
///   (no Baseline), so they stay at the abduction demand.
///
/// Session-level scalars (durations, chunk count, ABR name) ride in the
/// block header and are always decoded; they are not columns.
fn query_column_demand(query: &Query) -> ColumnSet {
    let demand = ABDUCTION_COLUMNS;
    match query.kind {
        QueryKind::Abduction | QueryKind::Aggregate => demand,
        QueryKind::Interventional => demand.with(columns::DOWNLOAD_TIME_S),
        QueryKind::Counterfactual => demand.with(columns::END_TIME_S),
        QueryKind::Sweep => {
            if query.scenario.is_some() {
                demand.with(columns::END_TIME_S)
            } else {
                demand
            }
        }
    }
}

/// One configuration a plan executes under: the query set's base config
/// (label `None`) or a sweep variant (label `Some`), with its cache
/// fingerprint computed once at compile time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedConfig {
    /// Human-readable variant label (`None` for the base configuration),
    /// echoed as `variant` in result records.
    pub label: Option<String>,
    /// The configuration itself.
    pub config: VeritasConfig,
    /// Precomputed abduction-cache fingerprint of `config`.
    pub fingerprint: u64,
}

/// One executable unit of a plan: run `query` over `session` under
/// `config` (indices into the plan's query list, the corpus, and the
/// plan's config table respectively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Index of the query in the plan's query set.
    pub query: usize,
    /// Index of the session in the corpus the plan was compiled against.
    pub session: usize,
    /// Index into [`QueryPlan::configs`].
    pub config: usize,
}

/// A compiled, validated execution plan: the output of the **compile**
/// stage, the input of [`crate::Engine::submit`].
///
/// Compilation resolves everything that can fail or be shared up front:
/// session selectors (against the corpus the plan is compiled for), sweep
/// expansion into [`PlannedConfig`]s with precomputed fingerprints,
/// scenario materialization (one [`Scenario`] per distinct spec — a
/// ladder change re-encodes the corpus asset exactly once), and per-query
/// unit counts for aggregation bookkeeping. A plan is immutable and may
/// be submitted any number of times, but only over a corpus with the same
/// session count it was compiled against.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    set: QuerySet,
    sessions: usize,
    corpus_fingerprint: u64,
    configs: Vec<PlannedConfig>,
    units: Vec<WorkUnit>,
    scenarios: Vec<Option<Result<Scenario, String>>>,
    unit_counts: Vec<usize>,
    column_demand: Vec<ColumnSet>,
}

impl QueryPlan {
    /// Compiles a query set against a corpus.
    ///
    /// Fails fast on structural problems (empty corpus, invalid set,
    /// out-of-range session selectors). A bad scenario spec (unknown ABR
    /// or ladder name) is *not* a compile error: it is recorded and
    /// replicated as a per-unit error at execution time, so one broken
    /// query cannot abort a batch.
    ///
    /// Compilation only touches corpus *metadata* (session count,
    /// selectors, fingerprints, the deployed setting) — never a session
    /// log — so compiling against a lazy [`crate::LazyCorpus`] decodes
    /// nothing.
    pub fn compile(set: &QuerySet, corpus: &dyn Corpus) -> Result<Self, EngineError> {
        if corpus.is_empty() {
            return Err(EngineError::EmptyCorpus);
        }
        set.validate().map_err(EngineError::Query)?;
        let mut configs = vec![PlannedConfig {
            label: None,
            config: set.config,
            fingerprint: config_fingerprint(&set.config),
        }];
        let mut units = Vec::new();
        let mut scenarios = Vec::with_capacity(set.queries.len());
        let mut unit_counts = Vec::with_capacity(set.queries.len());
        // One materialization per *distinct* spec: a ladder change
        // re-encodes the corpus asset, which must not repeat per query.
        let mut memo: Vec<(ScenarioSpec, Result<Scenario, String>)> = Vec::new();
        let default_spec = ScenarioSpec::default();
        let mut materialize = |spec: &ScenarioSpec| -> Result<Scenario, String> {
            if let Some((_, result)) = memo.iter().find(|(known, _)| known == spec) {
                return result.clone();
            }
            let result = materialize_scenario(corpus, spec);
            memo.push((spec.clone(), result.clone()));
            result
        };
        let mut column_demand = vec![ColumnSet::empty(); corpus.len()];
        for (qi, query) in set.queries.iter().enumerate() {
            let selected = corpus
                .select(&query.sessions)
                .map_err(|e| EngineError::Query(format!("query `{}`: {e}", query.id)))?;
            let demand = query_column_demand(query);
            for &si in &selected {
                column_demand[si] = column_demand[si].union(demand);
            }
            let scenario = match query.kind {
                QueryKind::Counterfactual => Some(materialize(
                    query.scenario.as_ref().unwrap_or(&default_spec),
                )),
                QueryKind::Sweep => query.scenario.as_ref().map(&mut materialize),
                QueryKind::Aggregate => {
                    let spec = query.aggregate.as_ref().expect("validated aggregate query");
                    spec.metric
                        .needs_replay()
                        .then(|| materialize(spec.scenario.as_ref().unwrap_or(&default_spec)))
                }
                QueryKind::Abduction | QueryKind::Interventional => None,
            };
            scenarios.push(scenario);
            let before = units.len();
            if query.kind == QueryKind::Sweep {
                let sweep = query.sweep.as_ref().expect("validated sweep query");
                for (label, config) in sweep.expand(&set.config) {
                    let ci = configs.len();
                    configs.push(PlannedConfig {
                        label: Some(label),
                        fingerprint: config_fingerprint(&config),
                        config,
                    });
                    units.extend(selected.iter().map(|&si| WorkUnit {
                        query: qi,
                        session: si,
                        config: ci,
                    }));
                }
            } else {
                units.extend(selected.iter().map(|&si| WorkUnit {
                    query: qi,
                    session: si,
                    config: 0,
                }));
            }
            unit_counts.push(units.len() - before);
        }
        Ok(Self {
            set: set.clone(),
            sessions: corpus.len(),
            corpus_fingerprint: corpus.content_fingerprint(),
            configs,
            units,
            scenarios,
            unit_counts,
            column_demand,
        })
    }

    /// The query set the plan was compiled from.
    pub fn set(&self) -> &QuerySet {
        &self.set
    }

    /// Session count of the corpus the plan was compiled against; a
    /// submit over a corpus of a different size is rejected.
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Content fingerprint of the corpus the plan was compiled against:
    /// the per-session log fingerprints (in session order) folded with
    /// the deployed-setting fingerprint
    /// ([`crate::SessionCorpus::deployed_fingerprint`]).
    /// [`crate::Engine::submit`] rejects a corpus whose content differs —
    /// the plan's scenarios and selectors are resolved against one
    /// specific corpus, and a same-sized impostor (different logs *or* a
    /// different deployed ABR / player / asset) would silently replay the
    /// wrong setting.
    pub fn corpus_fingerprint(&self) -> u64 {
        self.corpus_fingerprint
    }

    /// The configuration table (base config first, then sweep variants in
    /// query order).
    pub fn configs(&self) -> &[PlannedConfig] {
        &self.configs
    }

    /// The flat unit list, in deterministic (query-major, variant-major,
    /// session-minor) order — the batch report's record order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// The materialized scenario of query `qi` (`None` when the query
    /// kind does not replay; `Some(Err(_))` when the spec was invalid and
    /// every unit of the query will report that error).
    pub(crate) fn scenario_for(&self, qi: usize) -> Option<&Result<Scenario, String>> {
        self.scenarios[qi].as_ref()
    }

    /// Number of work units query `qi` expands to.
    pub fn unit_count(&self, qi: usize) -> usize {
        self.unit_counts[qi]
    }

    /// The per-chunk columns the plan's units read from session
    /// `session`: the union of [the demand] of every query that selected
    /// it. Empty for sessions no query selected. The executor passes this
    /// to [`crate::Corpus::log_projected`] so a columnar store decodes
    /// only what the plan will touch.
    ///
    /// [the demand]: query_column_demand
    pub fn column_demand(&self, session: usize) -> ColumnSet {
        self.column_demand[session]
    }

    /// The union of [`Self::column_demand`] across every session — what a
    /// shard coordinator advertises to remote workers as the plan-wide
    /// column footprint.
    pub fn column_demand_union(&self) -> ColumnSet {
        self.column_demand
            .iter()
            .fold(ColumnSet::empty(), |acc, &d| acc.union(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{SessionCorpus, SyntheticSpec};
    use crate::query::Query;

    fn corpus() -> SessionCorpus {
        SyntheticSpec {
            sessions: 2,
            video_duration_s: 60.0,
            ..SyntheticSpec::default()
        }
        .build()
    }

    #[test]
    fn sweep_expands_the_cartesian_product_with_labels() {
        let sweep = ConfigSweep::new()
            .over_sigma(vec![0.25, 0.5])
            .over_stay_probability(vec![0.7, 0.8, 0.9]);
        assert_eq!(sweep.variant_count(), 6);
        let variants = sweep.expand(&VeritasConfig::paper_default());
        assert_eq!(variants.len(), 6);
        assert_eq!(variants[0].0, "sigma=0.25,stay=0.7");
        assert_eq!(variants[5].0, "sigma=0.5,stay=0.9");
        assert_eq!(variants[3].1.sigma_mbps, 0.5);
        assert_eq!(variants[3].1.stay_probability, 0.7);
        let labels: std::collections::HashSet<_> =
            variants.iter().map(|(label, _)| label.clone()).collect();
        assert_eq!(labels.len(), 6, "labels must be distinct");
        assert!(sweep.validate(&VeritasConfig::paper_default()).is_ok());
    }

    #[test]
    fn sweep_validation_rejects_bad_grids() {
        let base = VeritasConfig::paper_default();
        assert!(ConfigSweep::new()
            .validate(&base)
            .unwrap_err()
            .contains("no axes"));
        assert!(ConfigSweep::new()
            .over_sigma(vec![])
            .validate(&base)
            .unwrap_err()
            .contains("empty"));
        assert!(ConfigSweep::new()
            .over_sigma(vec![-1.0])
            .validate(&base)
            .unwrap_err()
            .contains("sigma"));
        assert!(ConfigSweep::new()
            .over_samples(vec![0])
            .validate(&base)
            .is_err());
        assert!(ConfigSweep::new()
            .over_sigma(vec![0.5, 0.5])
            .validate(&base)
            .unwrap_err()
            .contains("repeats"));
        assert!(ConfigSweep::new()
            .over_samples(vec![2, 2])
            .validate(&base)
            .unwrap_err()
            .contains("repeats"));
        let huge = ConfigSweep::new().over_sigma((0..300).map(|i| 0.1 + i as f64 * 0.01).collect());
        assert!(huge.validate(&base).unwrap_err().contains("limit"));
    }

    #[test]
    fn aggregate_spec_validates_scenario_usage() {
        assert!(AggregateSpec::of(AggregateMetric::MeanSsim)
            .with_scenario(ScenarioSpec::abr("bba"))
            .validate()
            .is_ok());
        assert!(AggregateSpec::of(AggregateMetric::MeanCapacityMbps)
            .validate()
            .is_ok());
        assert!(AggregateSpec::of(AggregateMetric::MeanCapacityMbps)
            .with_scenario(ScenarioSpec::abr("bba"))
            .validate()
            .unwrap_err()
            .contains("meaningless"));
    }

    #[test]
    fn aggregate_metric_wire_names_are_stable() {
        for metric in [
            AggregateMetric::MeanCapacityMbps,
            AggregateMetric::MeanSsim,
            AggregateMetric::RebufferRatioPercent,
            AggregateMetric::AvgBitrateMbps,
            AggregateMetric::StartupDelayS,
        ] {
            assert_eq!(AggregateMetric::parse(metric.as_str()), Some(metric));
        }
        assert_eq!(AggregateMetric::parse("qoe"), None);
    }

    #[test]
    fn aggregate_summary_reduces_exactly() {
        let summary = AggregateSummary::reduce(
            AggregateMetric::MeanCapacityMbps,
            &[4.0, 1.0, 3.0, 2.0, 5.0],
        );
        assert_eq!(summary.sessions, 5);
        assert_eq!(summary.mean, 3.0);
        assert_eq!(summary.p50, 3.0);
        assert_eq!(summary.min, 1.0);
        assert_eq!(summary.max, 5.0);
        assert!(summary.p95 > 4.5 && summary.p95 <= 5.0);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        assert_eq!(percentile_u64(&[10, 20, 30], 50.0), 20);
        assert_eq!(percentile_u64(&[10, 20, 30], 100.0), 30);
        assert_eq!(percentile_u64(&[], 50.0), 0);
        // Nearest rank is ⌈q/100 · len⌉, *not* round-half-up linear
        // indexing over len−1: p50 of four values is the 2nd (20), where
        // the old indexing scheme returned the 3rd (30).
        assert_eq!(percentile_u64(&[10, 20, 30, 40], 50.0), 20);
        assert_eq!(percentile_u64(&[10, 20, 30, 40], 50.1), 30);
        assert_eq!(percentile_u64(&[10, 20, 30, 40], 0.0), 10);
        assert_eq!(percentile_u64(&[10, 20, 30, 40], 25.0), 10);
        assert_eq!(percentile_u64(&[10, 20, 30, 40], 75.0), 30);
        assert_eq!(percentile_u64(&[10, 20, 30, 40], 95.0), 40);
        assert_eq!(percentile_u64(&[7], 50.0), 7);
        // Out-of-range quantiles clamp instead of indexing out of bounds.
        assert_eq!(percentile_u64(&[10, 20], -5.0), 10);
        assert_eq!(percentile_u64(&[10, 20], 250.0), 20);
        // Every percentile is an actually observed value.
        let sorted = [3u64, 9, 27, 81, 243];
        for q in 0..=100 {
            assert!(sorted.contains(&percentile_u64(&sorted, f64::from(q))));
        }
        // Float-rounding regression: q/100 alone rounds 0.07 up, so
        // ceil(0.07·100) was 8, not the correct rank 7. The exact rank
        // must hold for every integer (q, len) pair.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_u64(&hundred, 7.0), 7);
        for len in 1..=128usize {
            let sorted: Vec<u64> = (1..=len as u64).collect();
            for q in 0..=100u64 {
                let expected = (q as usize * len).div_ceil(100).max(1) as u64;
                assert_eq!(
                    percentile_u64(&sorted, q as f64),
                    expected,
                    "q={q} len={len}"
                );
            }
        }
    }

    #[test]
    fn compile_builds_flat_units_with_precomputed_fingerprints() {
        let corpus = corpus();
        let set = QuerySet::new("t", VeritasConfig::paper_default().with_samples(2))
            .with_query(Query::abduction("ab"))
            .with_query(Query::sweep(
                "sw",
                ConfigSweep::new().over_sigma(vec![0.25, 0.5, 1.0]),
            ))
            .with_query(Query::aggregate(
                "agg",
                AggregateSpec::of(AggregateMetric::MeanCapacityMbps),
            ));
        let plan = QueryPlan::compile(&set, &corpus).unwrap();
        // 2 abduction + 3 variants x 2 sessions + 2 aggregate units.
        assert_eq!(plan.units().len(), 2 + 6 + 2);
        assert_eq!(plan.unit_count(0), 2);
        assert_eq!(plan.unit_count(1), 6);
        assert_eq!(plan.unit_count(2), 2);
        assert_eq!(plan.configs().len(), 4, "base + three sweep variants");
        for planned in plan.configs() {
            assert_eq!(planned.fingerprint, config_fingerprint(&planned.config));
        }
        // Sweep variants with identical posterior-relevant fields share the
        // base fingerprint (σ=0.5 is the paper default).
        assert_eq!(
            plan.configs()[2].fingerprint,
            plan.configs()[0].fingerprint,
            "σ=0.5 variant matches the base posterior fingerprint"
        );
        // Unit order is query-major, variant-major, session-minor.
        let order: Vec<(usize, usize, usize)> = plan
            .units()
            .iter()
            .map(|u| (u.query, u.config, u.session))
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn column_demand_tracks_query_kind_and_selection() {
        let corpus = corpus();
        let base = ABDUCTION_COLUMNS;
        let set = QuerySet::new("t", VeritasConfig::paper_default().with_samples(2))
            .with_query(Query::abduction("ab").with_sessions(vec![0]))
            .with_query(Query::interventional("iv").with_sessions(vec![1]));
        let plan = QueryPlan::compile(&set, &corpus).unwrap();
        assert_eq!(plan.column_demand(0), base);
        assert_eq!(plan.column_demand(1), base.with(columns::DOWNLOAD_TIME_S));
        assert_eq!(
            plan.column_demand_union(),
            base.with(columns::DOWNLOAD_TIME_S)
        );

        // Counterfactual answers (including sweeps that carry a scenario)
        // add the download-window column for the Baseline estimator; a
        // scenario-less sweep is abduction-shaped.
        let set = QuerySet::new("t", VeritasConfig::paper_default().with_samples(2))
            .with_query(
                Query::counterfactual("cf", ScenarioSpec::abr("bba")).with_sessions(vec![0]),
            )
            .with_query(
                Query::sweep("sw", ConfigSweep::new().over_sigma(vec![0.25, 0.5]))
                    .with_sessions(vec![1]),
            );
        let plan = QueryPlan::compile(&set, &corpus).unwrap();
        assert_eq!(plan.column_demand(0), base.with(columns::END_TIME_S));
        assert_eq!(plan.column_demand(1), base);

        let set = QuerySet::new("t", VeritasConfig::paper_default().with_samples(2)).with_query(
            Query::sweep("sw", ConfigSweep::new().over_sigma(vec![0.25, 0.5]))
                .with_scenario(ScenarioSpec::abr("bba")),
        );
        let plan = QueryPlan::compile(&set, &corpus).unwrap();
        assert_eq!(plan.column_demand(0), base.with(columns::END_TIME_S));

        // Aggregations replay posterior samples, never the Baseline, so
        // they stay at the abduction demand; unselected sessions stay
        // empty.
        let set = QuerySet::new("t", VeritasConfig::paper_default().with_samples(2)).with_query(
            Query::aggregate("agg", AggregateSpec::of(AggregateMetric::MeanSsim))
                .with_sessions(vec![1]),
        );
        let plan = QueryPlan::compile(&set, &corpus).unwrap();
        assert_eq!(plan.column_demand(0), ColumnSet::empty());
        assert_eq!(plan.column_demand(1), base);
        // Every demand is a strict subset of the full column set — the
        // projection must actually prune something.
        assert!(ColumnSet::all().is_superset_of(base));
        assert!(base.len() < ColumnSet::all().len());
    }

    #[test]
    fn compile_rejects_structural_problems_but_not_bad_scenarios() {
        let corpus = corpus();
        let out_of_range = QuerySet::new("t", VeritasConfig::paper_default())
            .with_query(Query::abduction("a").with_sessions(vec![9]));
        assert!(QueryPlan::compile(&out_of_range, &corpus).is_err());
        let bad_abr = QuerySet::new("t", VeritasConfig::paper_default())
            .with_query(Query::counterfactual("c", ScenarioSpec::abr("pensieve")));
        let plan = QueryPlan::compile(&bad_abr, &corpus).unwrap();
        assert!(matches!(plan.scenario_for(0), Some(Err(_))));
    }
}
