//! The execute and consume stages: [`Engine::submit`] streams a compiled
//! [`QueryPlan`] over a corpus; [`RunHandle`] is the consumer's view.
//!
//! Execution model: every [`crate::WorkUnit`] (query × session × config)
//! is independent. Units are partitioned into corpus shards
//! ([`crate::SessionCorpus::shard`], one worker group per shard) and
//! claimed by atomic-cursor workers ([`crate::executor::stream_groups`]);
//! each unit resolves its abduction through the shared
//! [`AbductionCache`] using the plan's precomputed config fingerprints,
//! so a batch of N queries touching the same session runs
//! forward–backward once, not N times. Completed [`QueryRecord`]s flow
//! through a bounded channel the moment they finish:
//!
//! * **incremental** — `RunHandle` implements
//!   `Iterator<Item = QueryRecord>`, yielding records in completion
//!   order; [`RunHandle::into_summary`] then closes the run.
//! * **batch** — [`RunHandle::wait`] drains the stream, restores
//!   deterministic (query-major, variant-major, session-minor) order,
//!   and returns an [`EngineReport`]. [`Engine::run`] is exactly
//!   `compile → submit → wait`.
//!
//! Aggregation queries are folded *from the stream*: the handle retains
//! only each aggregation's per-session scalars (never the record set)
//! and emits one final `session: "*"` record per aggregation when its
//! last unit completes.

use std::collections::{BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use veritas::{
    baseline_trace, oracle_trace, Abduction, InterventionalPredictor, RangePrediction, Scenario,
};
use veritas_abr::abr_by_name;
use veritas_media::QualityLadder;
use veritas_player::QoeSummary;
use veritas_trace::stats::trace_mae;

use crate::cache::{infer_prefix, AbductionCache, CacheSource};
use crate::corpus::{Corpus, LogRef, SessionCorpus};
use crate::error::EngineError;
use crate::executor;
use crate::fault::{FaultPlan, FaultSite};
use crate::persist::DiskStore;
use crate::plan::{percentile_u64, AggregateSummary, PlannedConfig, QueryPlan};
use crate::query::{
    object_fields, opt, reject_unknown, req, Query, QueryKind, QuerySet, ScenarioSpec,
};

/// The session id carried by an aggregation's final folded record.
pub const AGGREGATE_SESSION: &str = "*";

/// Veritas(Low)/(High) and median summaries of a counterfactual range
/// prediction, one triple per QoE metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeSummary {
    /// Number of posterior samples behind the ranges.
    pub samples: usize,
    /// Veritas(Low) mean SSIM.
    pub ssim_low: f64,
    /// Veritas(High) mean SSIM.
    pub ssim_high: f64,
    /// Median mean SSIM across samples.
    pub ssim_median: f64,
    /// Veritas(Low) rebuffering ratio (percent).
    pub rebuffer_low: f64,
    /// Veritas(High) rebuffering ratio (percent).
    pub rebuffer_high: f64,
    /// Median rebuffering ratio across samples.
    pub rebuffer_median: f64,
    /// Veritas(Low) average bitrate (Mbps).
    pub bitrate_low: f64,
    /// Veritas(High) average bitrate (Mbps).
    pub bitrate_high: f64,
    /// Median average bitrate across samples.
    pub bitrate_median: f64,
}

impl RangeSummary {
    /// Summarizes a range prediction.
    pub fn of(prediction: &RangePrediction) -> Self {
        let (ssim_low, ssim_high) = prediction.ssim_range();
        let (rebuffer_low, rebuffer_high) = prediction.rebuffer_range();
        let (bitrate_low, bitrate_high) = prediction.bitrate_range();
        Self {
            samples: prediction.samples.len(),
            ssim_low,
            ssim_high,
            ssim_median: prediction.median_of(|q| q.mean_ssim),
            rebuffer_low,
            rebuffer_high,
            rebuffer_median: prediction.median_of(|q| q.rebuffer_ratio_percent),
            bitrate_low,
            bitrate_high,
            bitrate_median: prediction.median_of(|q| q.avg_bitrate_mbps),
        }
    }
}

/// The kind-specific payload of a successful query; fields irrelevant to
/// the query's kind are `null` in the JSONL output.
///
/// `Deserialize` is hand-written (like the query spec types) so that
/// every field is absent-tolerant: reports written by earlier engine
/// versions — before `variant`, `metric_value`, or `aggregate` existed —
/// still validate, while unknown fields are rejected.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct QueryOutput {
    /// Abduction: number of chunks conditioned on.
    pub chunks: Option<usize>,
    /// Abduction: mean of the Viterbi GTBW trace in Mbps.
    pub mean_capacity_mbps: Option<f64>,
    /// Abduction: MAE of the Viterbi trace against the ground truth, when
    /// the corpus carries one.
    pub viterbi_mae_vs_truth_mbps: Option<f64>,
    /// Interventional: expected GTBW for the candidate chunk in Mbps.
    pub expected_capacity_mbps: Option<f64>,
    /// Interventional: predicted download time in seconds.
    pub predicted_download_time_s: Option<f64>,
    /// Interventional: the logged download time at the decision point, when
    /// the predicted chunk exists in the log.
    pub actual_download_time_s: Option<f64>,
    /// Counterfactual: the Veritas range prediction.
    pub veritas: Option<RangeSummary>,
    /// Counterfactual: the Baseline (observed-throughput replay) outcome.
    pub baseline: Option<QoeSummary>,
    /// Counterfactual: the Oracle (ground-truth replay) outcome, when the
    /// corpus carries the truth.
    pub oracle: Option<QoeSummary>,
    /// Aggregate (per-session unit): this session's scalar contribution.
    pub metric_value: Option<f64>,
    /// Aggregate (final `session: "*"` record): the folded reduction.
    pub aggregate: Option<AggregateSummary>,
}

/// One line of the engine's JSONL result stream.
///
/// `Deserialize` is hand-written so optional fields (including the
/// PR-4-era `variant`) may be absent, keeping old reports readable by
/// `veritas validate`. `Serialize` is hand-written too: `attempts` is
/// *omitted* (not `null`) when unset, so records from runs without a
/// [`RetryPolicy`] — and every successful record — keep their exact
/// pre-supervision byte shape.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Id of the query this record answers.
    pub query_id: String,
    /// The query's kind.
    pub kind: QueryKind,
    /// Id of the corpus session the unit ran over, or
    /// [`AGGREGATE_SESSION`] for an aggregation's folded record.
    pub session: String,
    /// Sweep variant label (`None` for the base configuration).
    pub variant: Option<String>,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// Error description when `status == "error"`.
    pub error: Option<String>,
    /// `"hit"` (in-memory) / `"disk"` (restored from the persistent
    /// store) / `"miss"` (inferred) when the unit consulted the abduction
    /// cache, `"off"` when caching was disabled, `null` when the unit
    /// failed before inference.
    pub cache: Option<String>,
    /// Wall-clock time this unit took, in microseconds.
    pub elapsed_us: u64,
    /// The payload, present when `status == "ok"`.
    pub output: Option<QueryOutput>,
    /// Execution attempts the unit consumed, set only on *final error*
    /// records produced under a [`RetryPolicy`]. Successful records —
    /// including success-after-retry — leave it absent, so a retried
    /// run's output stays identical to the fault-free run.
    pub attempts: Option<u64>,
}

impl Serialize for QueryRecord {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let fields = 9 + usize::from(self.attempts.is_some());
        let mut state = serializer.serialize_struct("QueryRecord", fields)?;
        state.serialize_field("query_id", &self.query_id)?;
        state.serialize_field("kind", &self.kind)?;
        state.serialize_field("session", &self.session)?;
        state.serialize_field("variant", &self.variant)?;
        state.serialize_field("status", &self.status)?;
        state.serialize_field("error", &self.error)?;
        state.serialize_field("cache", &self.cache)?;
        state.serialize_field("elapsed_us", &self.elapsed_us)?;
        state.serialize_field("output", &self.output)?;
        if let Some(attempts) = &self.attempts {
            state.serialize_field("attempts", attempts)?;
        }
        state.end()
    }
}

impl QueryRecord {
    /// Whether the unit succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

impl<'de> Deserialize<'de> for QueryOutput {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "query output")?;
        let output = QueryOutput {
            chunks: opt(&mut fields, "chunks")?,
            mean_capacity_mbps: opt(&mut fields, "mean_capacity_mbps")?,
            viterbi_mae_vs_truth_mbps: opt(&mut fields, "viterbi_mae_vs_truth_mbps")?,
            expected_capacity_mbps: opt(&mut fields, "expected_capacity_mbps")?,
            predicted_download_time_s: opt(&mut fields, "predicted_download_time_s")?,
            actual_download_time_s: opt(&mut fields, "actual_download_time_s")?,
            veritas: opt(&mut fields, "veritas")?,
            baseline: opt(&mut fields, "baseline")?,
            oracle: opt(&mut fields, "oracle")?,
            metric_value: opt(&mut fields, "metric_value")?,
            aggregate: opt(&mut fields, "aggregate")?,
        };
        reject_unknown(&fields, "query output")?;
        Ok(output)
    }
}

impl<'de> Deserialize<'de> for QueryRecord {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "query record")?;
        let record = QueryRecord {
            query_id: req(&mut fields, "query record", "query_id")?,
            kind: req(&mut fields, "query record", "kind")?,
            session: req(&mut fields, "query record", "session")?,
            variant: opt(&mut fields, "variant")?,
            status: req(&mut fields, "query record", "status")?,
            error: opt(&mut fields, "error")?,
            cache: opt(&mut fields, "cache")?,
            elapsed_us: req(&mut fields, "query record", "elapsed_us")?,
            output: opt(&mut fields, "output")?,
            attempts: opt(&mut fields, "attempts")?,
        };
        reject_unknown(&fields, "query record")?;
        Ok(record)
    }
}

/// Latency aggregates of one query's units — the streaming path reports
/// the same timing fidelity as the batch report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryLatency {
    /// The query id.
    pub id: String,
    /// Worker units the query expanded to (aggregation fold records are
    /// excluded — they are bookkeeping, not work).
    pub units: usize,
    /// Median unit latency in microseconds.
    pub p50_us: u64,
    /// 95th-percentile unit latency in microseconds.
    pub p95_us: u64,
    /// Maximum unit latency in microseconds.
    pub max_us: u64,
}

/// Aggregate summary of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Name of the query set.
    pub queryset: String,
    /// Number of queries in the set.
    pub queries: usize,
    /// Number of sessions in the corpus.
    pub sessions: usize,
    /// Number of records the run produced (work units plus one folded
    /// record per aggregation query).
    pub units: usize,
    /// Records that succeeded.
    pub ok: usize,
    /// Records that failed.
    pub errors: usize,
    /// Abduction-cache hits served from memory during this run.
    pub cache_hits: u64,
    /// Abduction-cache misses (units that ran inference) during this run.
    pub cache_misses: u64,
    /// Posteriors restored from the persistent store during this run —
    /// nonzero on a warm start, and together with `cache_misses == 0` the
    /// proof that the run performed no EHMM inference at all.
    pub disk_hits: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Corpus shards the run was partitioned into.
    pub shards: usize,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: f64,
    /// Unit retries performed under the engine's [`RetryPolicy`] (zero
    /// when no policy is set).
    pub retries: u64,
    /// Session ids quarantined during the run: sessions where some unit
    /// still failed after exhausting [`RetryPolicy::max_attempts`], whose
    /// remaining units were short-circuited to typed errors. Sorted;
    /// empty when no policy is set.
    pub quarantined: Vec<String>,
    /// Worker-shard re-dispatches performed by a distributed coordinator
    /// ([`crate::dist::Coordinator`]); always zero for in-process runs.
    pub shard_retries: u64,
    /// Per-query latency aggregates, in query order.
    pub per_query: Vec<QueryLatency>,
}

/// Everything an engine run produced.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Records in deterministic (query-major, variant-major,
    /// session-minor) order, with aggregation fold records at the end.
    pub records: Vec<QueryRecord>,
    /// The run summary.
    pub summary: RunSummary,
}

impl EngineReport {
    /// Renders the records as JSON Lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&serde_json::to_string(record).expect("record serialization cannot fail"));
            out.push('\n');
        }
        out
    }

    /// The summary as a JSON object.
    pub fn summary_json(&self) -> String {
        serde_json::to_string_pretty(&self.summary).expect("summary serialization cannot fail")
    }

    /// The records answering one query, in session order.
    pub fn records_for(&self, query_id: &str) -> Vec<&QueryRecord> {
        self.records
            .iter()
            .filter(|r| r.query_id == query_id)
            .collect()
    }

    /// The folded [`AggregateSummary`] of an aggregation query, when the
    /// query exists and its fold succeeded.
    pub fn aggregate_for(&self, query_id: &str) -> Option<AggregateSummary> {
        self.records
            .iter()
            .find(|r| r.query_id == query_id && r.session == AGGREGATE_SESSION)
            .and_then(|r| r.output.as_ref())
            .and_then(|o| o.aggregate)
    }
}

/// Admission control shared between an [`Engine`] and the permits it
/// hands out: a plain atomic counter bounded by `bound`.
#[derive(Debug)]
struct AdmissionGate {
    bound: usize,
    active: AtomicUsize,
}

/// A granted admission slot. Holding it counts as one active plan; the
/// slot is released when the permit is dropped. Permits from an engine
/// without an admission bound are no-ops.
#[derive(Debug)]
pub struct AdmissionPermit {
    gate: Option<Arc<AdmissionGate>>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(gate) = &self.gate {
            gate.active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Per-unit retry with bounded exponential backoff and deterministic,
/// seeded jitter.
///
/// Set on [`EngineBuilder::retry_policy`]. A unit that fails (typed
/// error *or* isolated panic) is re-run up to `max_attempts` total
/// attempts, sleeping `base_backoff × 2^(attempt-1)` (clamped to
/// `max_backoff`) plus a jitter drawn deterministically from
/// `(seed, unit, attempt)` between attempts — so a chaos run's sleep
/// schedule is as reproducible as its fault schedule. When a unit still
/// fails after `max_attempts`, its session is quarantined: remaining
/// units on that session short-circuit to typed errors and the session
/// id is reported in [`RunSummary::quarantined`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per unit (at least 1; 1 means "no retries").
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The default policy with `max_attempts` total attempts.
    pub fn with_max_attempts(attempts: u32) -> Self {
        Self {
            max_attempts: attempts.max(1),
            ..Self::default()
        }
    }

    /// The sleep before retrying `unit`'s attempt number `attempt`
    /// (1-based; the attempt that just failed): exponential in the
    /// attempt, clamped, plus deterministic jitter in `[0, base_backoff)`.
    pub fn backoff_for(&self, unit: usize, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20));
        let clamped = exp.min(self.max_backoff);
        let base_nanos = self.base_backoff.as_nanos() as u64;
        if base_nanos == 0 {
            return clamped;
        }
        let hash = crate::fault::jitter_hash(self.seed, unit as u64, u64::from(attempt));
        clamped + Duration::from_nanos(hash % base_nanos)
    }
}

/// Configures and builds an [`Engine`] — the one construction path both
/// the `veritas` CLI and the `veritasd` service go through.
///
/// Every knob the old `Engine::with_*` combinators exposed lives here,
/// plus the two that only make sense at construction time: the
/// cache-hit floor ([`Self::min_cache_hits`]) and the admission bound
/// ([`Self::admission`]). [`Self::build`] validates the combination
/// (e.g. a cache directory with caching disabled is an
/// [`EngineError::Config`], not a silent no-op).
///
/// ```
/// use veritas_engine::Engine;
/// let engine = Engine::builder().threads(2).shards(2).build().unwrap();
/// assert_eq!(engine.admission_bound(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    threads: Option<usize>,
    shards: Option<usize>,
    cache_disabled: bool,
    cache_dir: Option<PathBuf>,
    min_cache_hits: Option<u64>,
    admission: Option<usize>,
    retry: Option<RetryPolicy>,
    fault: Option<Arc<FaultPlan>>,
}

impl EngineBuilder {
    /// A builder with every knob at its default: caching on, default
    /// thread count, one shard, no persistent store, no admission bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker-thread count. `0` means "pick the default"
    /// ([`executor::default_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Partitions every submitted corpus into `shards` worker groups
    /// (clamped to at least one; also clamped to the corpus size at
    /// submit time).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Disables the abduction cache — every unit re-infers. Exists for
    /// the `veritas bench` comparison; incompatible with
    /// [`Self::cache_dir`] and [`Self::min_cache_hits`].
    pub fn no_cache(mut self) -> Self {
        self.cache_disabled = true;
        self
    }

    /// Attaches a persistent abduction store rooted at `dir` (created at
    /// build time if absent) behind the in-memory cache.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Requires at least `hits` in-memory cache hits per run:
    /// [`Engine::verify_summary`] returns
    /// [`EngineError::CacheShortfall`] when a summary falls short.
    pub fn min_cache_hits(mut self, hits: u64) -> Self {
        self.min_cache_hits = Some(hits);
        self
    }

    /// Bounds the number of concurrently admitted plans:
    /// [`Engine::try_admit`] refuses with [`EngineError::Overloaded`]
    /// once `bound` permits are outstanding. A bound of zero sheds every
    /// plan (useful for drain/maintenance modes and tests).
    pub fn admission(mut self, bound: usize) -> Self {
        self.admission = Some(bound);
        self
    }

    /// Enables per-unit retry (and session quarantine on exhaustion)
    /// under `policy`. See [`RetryPolicy`].
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Attaches a deterministic fault-injection plan: compute faults and
    /// worker panics in the unit path, plus disk-cache read/write faults
    /// when a [`Self::cache_dir`] is configured. Chaos-testing only —
    /// production engines leave this unset.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Validates the configuration and builds the engine.
    pub fn build(self) -> Result<Engine, EngineError> {
        if self.cache_disabled && self.cache_dir.is_some() {
            return Err(EngineError::Config(
                "a persistent cache directory requires the cache; drop no_cache/--no-cache"
                    .to_string(),
            ));
        }
        if self.cache_disabled && self.min_cache_hits.is_some() {
            return Err(EngineError::Config(
                "a cache-hit floor cannot be satisfied with the cache disabled".to_string(),
            ));
        }
        let mut cache = AbductionCache::new();
        if let Some(dir) = self.cache_dir {
            let mut store = DiskStore::open(dir)?;
            if let Some(plan) = &self.fault {
                store = store.with_fault_plan(Arc::clone(plan));
            }
            cache.attach_disk_store(store);
        }
        Ok(Engine {
            retry: self.retry,
            fault: self.fault,
            threads: self.threads.map(|threads| {
                if threads == 0 {
                    executor::default_threads()
                } else {
                    threads
                }
            }),
            shards: self.shards.unwrap_or(1),
            cache_enabled: !self.cache_disabled,
            cache: Arc::new(cache),
            min_cache_hits: self.min_cache_hits,
            admission: self.admission.map(|bound| {
                Arc::new(AdmissionGate {
                    bound,
                    active: AtomicUsize::new(0),
                })
            }),
        })
    }
}

/// The batched, cached causal-query engine.
///
/// The API is a three-stage pipeline: **compile** a [`QuerySet`] into a
/// [`QueryPlan`] ([`QueryPlan::compile`]), **execute** it with
/// [`Engine::submit`], and **consume** the returned [`RunHandle`] either
/// incrementally (it is an `Iterator`) or as a batch
/// ([`RunHandle::wait`]). [`Engine::run`] wraps all three for the
/// blocking callers.
///
/// Construction goes through [`Engine::builder`]; the surviving
/// `with_*` combinators are thin deprecated wrappers over the same
/// fields.
#[derive(Debug)]
pub struct Engine {
    threads: Option<usize>,
    shards: usize,
    cache_enabled: bool,
    cache: Arc<AbductionCache>,
    min_cache_hits: Option<u64>,
    admission: Option<Arc<AdmissionGate>>,
    retry: Option<RetryPolicy>,
    fault: Option<Arc<FaultPlan>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with caching enabled, the default thread count, and a
    /// single shard.
    pub fn new() -> Self {
        EngineBuilder::new()
            .build()
            .expect("the default engine configuration is valid")
    }

    /// The canonical construction path: a fresh [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Overrides the worker-thread count. `0` is normalized to
    /// [`executor::default_threads`] at this boundary — the builder, not
    /// the executor, owns the "pick for me" convention, so a summary
    /// always reports the real thread count.
    ///
    /// Deprecated: prefer [`EngineBuilder::threads`] via
    /// [`Engine::builder`]. Kept as a thin wrapper so existing callers
    /// and tests keep working.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(if threads == 0 {
            executor::default_threads()
        } else {
            threads
        });
        self
    }

    /// Partitions every submitted corpus into `shards` worker groups
    /// (clamped to at least one; also clamped to the corpus size at
    /// submit time). Units of one shard are drained together, emulating a
    /// corpus split across engine instances.
    ///
    /// Deprecated: prefer [`EngineBuilder::shards`] via
    /// [`Engine::builder`]. Kept as a thin wrapper so existing callers
    /// and tests keep working.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Disables the abduction cache — every unit re-infers. Exists for the
    /// `veritas bench` comparison and for measuring cache effectiveness.
    ///
    /// Deprecated: prefer [`EngineBuilder::no_cache`] via
    /// [`Engine::builder`]. Kept as a thin wrapper so existing callers
    /// and tests keep working.
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Attaches a persistent abduction store rooted at `dir` (created if
    /// absent) behind the in-memory cache: posteriors inferred by this
    /// engine are written through to disk, and runs restore previously
    /// persisted posteriors instead of re-inferring — including across
    /// processes. Re-enables caching if [`Engine::without_cache`] was
    /// called earlier (a disk tier behind a disabled cache would be a
    /// silent no-op). Fails only if the directory cannot be created; read
    /// or write problems at run time degrade to cache misses
    /// (see [`crate::persist`]).
    ///
    /// Deprecated: prefer [`EngineBuilder::cache_dir`] via
    /// [`Engine::builder`] (which rejects the disabled-cache combination
    /// instead of silently re-enabling). Kept as a thin wrapper so
    /// existing callers and tests keep working.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Result<Self, EngineError> {
        let store = DiskStore::open(dir)?;
        self.cache_enabled = true;
        match Arc::get_mut(&mut self.cache) {
            // The builder normally still owns its cache exclusively:
            // attach in place, keeping any posteriors already in memory.
            Some(cache) => cache.attach_disk_store(store),
            None => self.cache = Arc::new(AbductionCache::new().with_disk_store(store)),
        }
        Ok(self)
    }

    /// The engine's abduction cache (shared across runs).
    pub fn cache(&self) -> &AbductionCache {
        &self.cache
    }

    /// The configured admission bound, when one was set
    /// ([`EngineBuilder::admission`]).
    pub fn admission_bound(&self) -> Option<usize> {
        self.admission.as_ref().map(|gate| gate.bound)
    }

    /// Plans currently holding an [`AdmissionPermit`]. Always zero for an
    /// engine without an admission bound.
    pub fn active_plans(&self) -> usize {
        self.admission
            .as_ref()
            .map_or(0, |gate| gate.active.load(Ordering::Acquire))
    }

    /// Claims an admission slot, refusing with
    /// [`EngineError::Overloaded`] when the configured bound is already
    /// saturated. Engines without a bound always grant (a no-op permit).
    /// Hold the permit for as long as the plan should count as active.
    pub fn try_admit(&self) -> Result<AdmissionPermit, EngineError> {
        let Some(gate) = &self.admission else {
            return Ok(AdmissionPermit { gate: None });
        };
        let mut active = gate.active.load(Ordering::Acquire);
        loop {
            if active >= gate.bound {
                return Err(EngineError::Overloaded {
                    active,
                    bound: gate.bound,
                });
            }
            match gate.active.compare_exchange_weak(
                active,
                active + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Ok(AdmissionPermit {
                        gate: Some(Arc::clone(gate)),
                    })
                }
                Err(current) => active = current,
            }
        }
    }

    /// The configured cache-hit floor, when one was set
    /// ([`EngineBuilder::min_cache_hits`]).
    pub fn min_cache_hits(&self) -> Option<u64> {
        self.min_cache_hits
    }

    /// Checks a finished run's summary against this engine's configured
    /// cache-hit floor ([`EngineBuilder::min_cache_hits`]); a shortfall
    /// is an [`EngineError::CacheShortfall`]. No-op without a floor.
    pub fn verify_summary(&self, summary: &RunSummary) -> Result<(), EngineError> {
        if let Some(expected) = self.min_cache_hits {
            if summary.cache_hits < expected {
                return Err(EngineError::CacheShortfall {
                    expected,
                    observed: summary.cache_hits,
                });
            }
        }
        Ok(())
    }

    /// Executes a query set over a corpus, blocking until every record is
    /// in: a thin `compile → submit → wait` wrapper. The plan is compiled
    /// against this very corpus in the same call, so the corpus-content
    /// verification that guards the public submit paths is skipped.
    pub fn run(&self, corpus: &SessionCorpus, set: &QuerySet) -> Result<EngineReport, EngineError> {
        let plan = QueryPlan::compile(set, corpus)?;
        Ok(self
            .submit_inner(Arc::new(corpus.clone()), Arc::new(plan), false, None)?
            .wait())
    }

    /// Submits a compiled plan for streaming execution over a corpus.
    ///
    /// Returns immediately with a [`RunHandle`]; workers push each
    /// completed [`QueryRecord`] through a bounded channel as it
    /// finishes. The corpus and plan are cloned into shared ownership —
    /// callers that already hold `Arc`s (or a lazy [`crate::LazyCorpus`],
    /// which must not be deep-copied) should use [`Engine::submit_shared`]
    /// to skip the copy.
    pub fn submit(
        &self,
        corpus: &SessionCorpus,
        plan: &QueryPlan,
    ) -> Result<RunHandle, EngineError> {
        self.submit_shared(Arc::new(corpus.clone()), Arc::new(plan.clone()))
    }

    /// [`Engine::submit`] without the defensive copies, over any
    /// [`Corpus`] implementation — eager [`SessionCorpus`] values and
    /// lazy [`crate::LazyCorpus`] views alike.
    ///
    /// Fails fast when the corpus is empty or its session count differs
    /// from the one the plan was compiled against (plans resolve session
    /// selectors and deployed-setting scenarios at compile time, so they
    /// are corpus-shaped).
    pub fn submit_shared(
        &self,
        corpus: Arc<dyn Corpus>,
        plan: Arc<QueryPlan>,
    ) -> Result<RunHandle, EngineError> {
        self.submit_inner(corpus, plan, true, None)
    }

    /// [`Engine::submit_shared`] restricted to one [`crate::CorpusShard`]
    /// of a `of`-way partition: only the plan units whose session falls
    /// in shard `index` (as produced by [`Corpus::shard`]) execute; every
    /// other unit is skipped entirely. This is the worker half of
    /// distributed execution ([`crate::dist`]): a coordinator hands each
    /// worker process a `(index, of)` pair and merges the resulting
    /// record streams.
    ///
    /// Aggregation queries are *not* folded on a restricted run — the
    /// handle yields only the shard's per-session `metric_value` records
    /// and never the final `session: "*"` record, because no single shard
    /// sees every contribution. The coordinator folds across shards.
    ///
    /// `index` at or past the actual partition width (the corpus clamps
    /// `of` to its session count) is an [`EngineError::Config`].
    pub fn submit_shard_shared(
        &self,
        corpus: Arc<dyn Corpus>,
        plan: Arc<QueryPlan>,
        index: usize,
        of: usize,
    ) -> Result<RunHandle, EngineError> {
        self.submit_inner(corpus, plan, true, Some((index, of)))
    }

    /// The one submit implementation. `verify_content` re-hashes the
    /// corpus to prove it is the one the plan was compiled against —
    /// required on the public paths, skipped by [`Engine::run`], which
    /// compiles and submits the same borrow in one call. `shard_sel`
    /// restricts execution to one shard of a fixed-width partition
    /// ([`Engine::submit_shard_shared`]).
    fn submit_inner(
        &self,
        corpus: Arc<dyn Corpus>,
        plan: Arc<QueryPlan>,
        verify_content: bool,
        shard_sel: Option<(usize, usize)>,
    ) -> Result<RunHandle, EngineError> {
        if corpus.is_empty() {
            return Err(EngineError::EmptyCorpus);
        }
        if plan.sessions() != corpus.len() {
            return Err(EngineError::CorpusMismatch(format!(
                "plan was compiled against {} sessions but the corpus has {}",
                plan.sessions(),
                corpus.len()
            )));
        }
        // Per-session log fingerprints, resolved once here instead of
        // once per cache lookup (a `.vcorp` corpus serves them from its
        // index without touching a session block) — and, on the public
        // paths, folded with the deployed setting to verify this is the
        // *same* corpus the plan's scenarios and selectors were resolved
        // against.
        let log_fps: Vec<u64> = (0..corpus.len())
            .map(|i| corpus.log_fingerprint(i))
            .collect();
        if verify_content {
            let content = crate::cache::combine_fingerprints(
                log_fps
                    .iter()
                    .copied()
                    .chain(std::iter::once(corpus.deployed_fingerprint())),
            );
            if content != plan.corpus_fingerprint() {
                return Err(EngineError::CorpusMismatch(
                    "plan was compiled against a different corpus (content fingerprints \
                     differ); recompile the plan for this corpus"
                        .to_string(),
                ));
            }
        }
        let threads = self.threads.unwrap_or_else(executor::default_threads);
        let started = Instant::now();

        // Partition units into shard groups: one worker group per corpus
        // shard, preserving plan order within each group. A restricted
        // submit instead keeps the single selected shard's units (in plan
        // order) and drops the rest of the plan on the floor.
        let (groups, shards) = match shard_sel {
            None => {
                let shard_views = corpus.shard(self.shards);
                let shards = shard_views.len();
                let mut shard_of = vec![0usize; corpus.len()];
                for shard in &shard_views {
                    for &si in &shard.sessions {
                        shard_of[si] = shard.index;
                    }
                }
                let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shards];
                for (ui, unit) in plan.units().iter().enumerate() {
                    groups[shard_of[unit.session]].push(ui);
                }
                (groups, shards)
            }
            Some((index, of)) => {
                let shard_views = corpus.shard(of);
                let shards = shard_views.len();
                if index >= shards {
                    return Err(EngineError::Config(format!(
                        "shard {index} out of range: the corpus partitions into {shards} shards"
                    )));
                }
                let mut mine = vec![false; corpus.len()];
                for &si in &shard_views[index].sessions {
                    mine[si] = true;
                }
                let group: Vec<usize> = plan
                    .units()
                    .iter()
                    .enumerate()
                    .filter(|(_, unit)| mine[unit.session])
                    .map(|(ui, _)| ui)
                    .collect();
                (vec![group], shards)
            }
        };
        let ctx = Arc::new(ExecCtx {
            corpus: Arc::clone(&corpus),
            plan: Arc::clone(&plan),
            cache: self.cache_enabled.then(|| Arc::clone(&self.cache)),
            log_fps,
            run_hits: AtomicU64::new(0),
            run_misses: AtomicU64::new(0),
            run_disk_hits: AtomicU64::new(0),
            retry: self.retry,
            fault: self.fault.clone(),
            run_retries: AtomicU64::new(0),
            quarantined: Mutex::new(BTreeSet::new()),
            projection: projection_enabled(),
        });
        let worker_ctx = Arc::clone(&ctx);
        let capacity = threads.saturating_mul(2).clamp(4, 1024);
        let (rx, workers) = executor::stream_groups(groups, threads, capacity, move |index| {
            worker_ctx.supervised_run(index)
        });

        let folds = plan
            .set()
            .queries
            .iter()
            .enumerate()
            .map(|(qi, query)| {
                (shard_sel.is_none() && query.kind == QueryKind::Aggregate).then(|| AggregateFold {
                    remaining: plan.unit_count(qi),
                    values: Vec::new(),
                    unit_errors: 0,
                })
            })
            .collect();
        let latencies = vec![Vec::new(); plan.set().queries.len()];
        Ok(RunHandle {
            rx: Some(rx),
            workers,
            plan,
            ctx,
            pending: VecDeque::new(),
            folds,
            latencies,
            ok: 0,
            errors: 0,
            sessions: corpus.len(),
            threads,
            shards,
            started,
        })
    }
}

/// Incremental fold state of one aggregation query: only the per-session
/// scalars are retained, never the records themselves. Shared with the
/// distributed coordinator ([`crate::dist`]), which folds the same way
/// across worker shards.
pub(crate) struct AggregateFold {
    pub(crate) remaining: usize,
    pub(crate) values: Vec<f64>,
    pub(crate) unit_errors: usize,
}

/// A live streaming run: the **consume** stage.
///
/// Iterate it for records in completion order (each `next()` blocks until
/// a worker finishes a unit), then call [`RunHandle::into_summary`]; or
/// call [`RunHandle::wait`] for the deterministic batch report. Dropping
/// the handle abandons the run: workers observe the closed channel and
/// stop after their in-flight unit.
///
/// Unit panics are *isolated*: a panicking unit becomes a typed error
/// record (via [`crate::executor::run_isolated`]), so the only panics
/// `wait`, `into_summary`, and the iterator can re-raise on join are
/// defects in the streaming machinery itself.
pub struct RunHandle {
    rx: Option<mpsc::Receiver<(usize, QueryRecord)>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    plan: Arc<QueryPlan>,
    /// Shared with the workers; carries this run's own cache counters so
    /// concurrent submits on one engine never pollute each other's
    /// summaries.
    ctx: Arc<ExecCtx>,
    /// Aggregation fold records waiting to be yielded.
    pending: VecDeque<(usize, QueryRecord)>,
    folds: Vec<Option<AggregateFold>>,
    latencies: Vec<Vec<u64>>,
    ok: usize,
    errors: usize,
    sessions: usize,
    threads: usize,
    shards: usize,
    started: Instant,
}

impl RunHandle {
    /// Yields the next record with its deterministic sort key (worker
    /// units sort by plan position; aggregation folds after all units).
    fn next_keyed(&mut self) -> Option<(usize, QueryRecord)> {
        if let Some(keyed) = self.pending.pop_front() {
            return Some(keyed);
        }
        let rx = self.rx.as_ref()?;
        match rx.recv() {
            Ok((key, record)) => {
                self.absorb_unit(key, &record);
                Some((key, record))
            }
            Err(_) => {
                self.rx = None;
                self.join_workers();
                None
            }
        }
    }

    /// Folds a completed worker unit into the summary statistics and the
    /// aggregation accumulators, queueing an aggregation's final record
    /// when its last unit arrives.
    fn absorb_unit(&mut self, key: usize, record: &QueryRecord) {
        self.count(record);
        let unit = self.plan.units()[key];
        self.latencies[unit.query].push(record.elapsed_us);
        let Some(fold) = self.folds[unit.query].as_mut() else {
            return;
        };
        match record.output.as_ref().and_then(|o| o.metric_value) {
            Some(value) => fold.values.push(value),
            None => fold.unit_errors += 1,
        }
        fold.remaining -= 1;
        if fold.remaining == 0 {
            let query = &self.plan.set().queries[unit.query];
            let final_record = aggregate_record(query, self.folds[unit.query].as_ref().unwrap());
            self.count(&final_record);
            // Keyed by query index so the batch report lists fold records
            // in query order regardless of which aggregation's last unit
            // happened to finish first.
            let final_key = self.plan.units().len() + unit.query;
            self.pending.push_back((final_key, final_record));
        }
    }

    fn count(&mut self, record: &QueryRecord) {
        if record.is_ok() {
            self.ok += 1;
        } else {
            self.errors += 1;
        }
    }

    fn join_workers(&mut self) {
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// The summary of everything absorbed so far.
    fn summary_now(&self) -> RunSummary {
        let per_query = self
            .plan
            .set()
            .queries
            .iter()
            .zip(&self.latencies)
            .map(|(query, elapsed)| {
                let mut sorted = elapsed.clone();
                sorted.sort_unstable();
                QueryLatency {
                    id: query.id.clone(),
                    units: sorted.len(),
                    p50_us: percentile_u64(&sorted, 50.0),
                    p95_us: percentile_u64(&sorted, 95.0),
                    max_us: sorted.last().copied().unwrap_or(0),
                }
            })
            .collect();
        RunSummary {
            queryset: self.plan.set().name.clone(),
            queries: self.plan.set().queries.len(),
            sessions: self.sessions,
            units: self.ok + self.errors,
            ok: self.ok,
            errors: self.errors,
            cache_hits: self.ctx.run_hits.load(Ordering::Relaxed),
            cache_misses: self.ctx.run_misses.load(Ordering::Relaxed),
            disk_hits: self.ctx.run_disk_hits.load(Ordering::Relaxed),
            threads: self.threads,
            shards: self.shards,
            elapsed_ms: self.started.elapsed().as_secs_f64() * 1e3,
            retries: self.ctx.run_retries.load(Ordering::Relaxed),
            quarantined: {
                let mut ids: Vec<String> = self
                    .ctx
                    .quarantined
                    .lock()
                    .iter()
                    .map(|&si| self.ctx.corpus.session_id(si).to_string())
                    .collect();
                ids.sort();
                ids
            },
            shard_retries: 0,
            per_query,
        }
    }

    /// Drains the remaining stream and returns the batch-shaped report:
    /// records restored to deterministic plan order (aggregation folds at
    /// the end). Records already taken through the iterator are *not*
    /// re-included; call `wait` on a fresh handle for the full batch.
    pub fn wait(mut self) -> EngineReport {
        let mut keyed: Vec<(usize, QueryRecord)> = Vec::with_capacity(self.plan.units().len());
        while let Some(entry) = self.next_keyed() {
            keyed.push(entry);
        }
        self.join_workers();
        keyed.sort_unstable_by_key(|(key, _)| *key);
        EngineReport {
            records: keyed.into_iter().map(|(_, record)| record).collect(),
            summary: self.summary_now(),
        }
    }

    /// Discards any remaining records and returns the run summary — the
    /// closing call of the incremental path, after the iterator has been
    /// consumed.
    pub fn into_summary(mut self) -> RunSummary {
        while self.next_keyed().is_some() {}
        self.join_workers();
        self.summary_now()
    }
}

impl Iterator for RunHandle {
    type Item = QueryRecord;

    fn next(&mut self) -> Option<QueryRecord> {
        self.next_keyed().map(|(_, record)| record)
    }
}

impl Drop for RunHandle {
    fn drop(&mut self) {
        // Close the channel first so blocked senders fail out, then let
        // the workers finish their in-flight units. Panics are not
        // re-raised here (a re-raise during an unwind would abort); the
        // consuming methods propagate them.
        self.rx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Everything a worker needs to execute plan units: shared, immutable,
/// and alive for as long as any worker runs.
struct ExecCtx {
    corpus: Arc<dyn Corpus>,
    plan: Arc<QueryPlan>,
    /// `None` when caching is disabled — units infer directly.
    cache: Option<Arc<AbductionCache>>,
    /// Per-session log fingerprints, precomputed at submit.
    log_fps: Vec<u64>,
    /// Cache hits observed by *this run's* units. Kept per run (not as a
    /// delta of the shared cache's global counters) so concurrent submits
    /// on one engine report accurate, independent summaries.
    run_hits: AtomicU64,
    /// Cache misses observed by this run's units.
    run_misses: AtomicU64,
    /// Posteriors this run's units restored from the persistent store.
    run_disk_hits: AtomicU64,
    /// The engine's retry policy, when one was configured.
    retry: Option<RetryPolicy>,
    /// The engine's fault plan, when one was configured (chaos testing).
    fault: Option<Arc<FaultPlan>>,
    /// Unit retries this run performed.
    run_retries: AtomicU64,
    /// Corpus session indices quarantined by retry exhaustion.
    quarantined: Mutex<BTreeSet<usize>>,
    /// Whether unit log loads pass the plan's column demand to
    /// [`Corpus::log_projected`] (the default) or force full decodes
    /// (`VERITAS_NO_PROJECTION=1`, the differential-testing escape
    /// hatch). Projection never changes an answer — only how many bytes
    /// a columnar store decodes to produce it.
    projection: bool,
}

/// Whether executors request column-projected logs (the default).
/// Setting `VERITAS_NO_PROJECTION=1` forces full decodes — the escape
/// hatch the projection differential tests and the ingest-smoke CI job
/// use to prove projected runs answer byte-identically.
fn projection_enabled() -> bool {
    !std::env::var("VERITAS_NO_PROJECTION").is_ok_and(|v| !v.is_empty() && v != "0")
}

impl ExecCtx {
    /// Loads a session log for unit execution, asking the corpus to
    /// decode only the columns the plan's queries will read (unless
    /// projection is disabled). [`Corpus::log_projected`] guarantees the
    /// selected fields are bit-identical to a full decode, so answers —
    /// and through the precomputed fingerprints, cache keys — do not
    /// depend on this choice.
    fn load_log(&self, si: usize) -> Result<LogRef<'_>, String> {
        if self.projection {
            self.corpus.log_projected(si, self.plan.column_demand(si))
        } else {
            self.corpus.log(si)
        }
    }

    /// The supervised unit path every worker goes through: quarantine
    /// short-circuit, panic isolation, and (under a [`RetryPolicy`])
    /// bounded retry with deterministic backoff.
    ///
    /// Panic isolation is unconditional — a panicking unit becomes a
    /// typed error record whether or not retries are enabled, so one
    /// poisoned unit can never kill the run. Retry treats a typed unit
    /// error and an isolated panic identically; a unit that exhausts
    /// `max_attempts` quarantines its session (subsequent units on that
    /// session answer a typed quarantine error without running).
    fn supervised_run(&self, index: usize) -> QueryRecord {
        let unit = self.plan.units()[index];
        if self.retry.is_some() && self.quarantined.lock().contains(&unit.session) {
            return self.synth_error_record(
                index,
                format!(
                    "session {} quarantined after repeated failures",
                    self.corpus.session_id(unit.session)
                ),
                None,
            );
        }
        let max_attempts = self
            .retry
            .map_or(1, |policy| u64::from(policy.max_attempts.max(1)));
        let mut attempt: u64 = 0;
        loop {
            attempt += 1;
            let outcome = executor::run_isolated(|| self.run_unit(index));
            let record = match outcome {
                Ok(record) => record,
                Err(panic_message) => self.synth_error_record(
                    index,
                    format!("worker panicked: {panic_message}"),
                    None,
                ),
            };
            if record.is_ok() {
                return record;
            }
            if attempt < max_attempts {
                self.run_retries.fetch_add(1, Ordering::Relaxed);
                let policy = self.retry.expect("max_attempts > 1 implies a policy");
                std::thread::sleep(policy.backoff_for(index, attempt as u32));
                continue;
            }
            if self.retry.is_some() {
                self.quarantined.lock().insert(unit.session);
                let mut record = record;
                record.attempts = Some(attempt);
                return record;
            }
            return record;
        }
    }

    /// A typed error record for unit `index` that did not come out of
    /// [`ExecCtx::run_unit`] (quarantine short-circuits and isolated
    /// panics).
    fn synth_error_record(
        &self,
        index: usize,
        error: String,
        attempts: Option<u64>,
    ) -> QueryRecord {
        let unit = self.plan.units()[index];
        let query = &self.plan.set().queries[unit.query];
        let planned = &self.plan.configs()[unit.config];
        QueryRecord {
            query_id: query.id.clone(),
            kind: query.kind,
            session: self.corpus.session_id(unit.session).to_string(),
            variant: planned.label.clone(),
            status: "error".to_string(),
            error: Some(error),
            cache: None,
            elapsed_us: 0,
            output: None,
            attempts,
        }
    }

    fn run_unit(&self, index: usize) -> QueryRecord {
        let unit = self.plan.units()[index];
        let query = &self.plan.set().queries[unit.query];
        let planned = &self.plan.configs()[unit.config];
        let session_id = self.corpus.session_id(unit.session).to_string();
        let started = Instant::now();
        let answered = match query.kind {
            QueryKind::Abduction => self.answer_abduction(planned, unit.session),
            QueryKind::Interventional => self.answer_interventional(planned, query, unit.session),
            QueryKind::Counterfactual => match self.plan.scenario_for(unit.query) {
                Some(Ok(scenario)) => {
                    self.answer_counterfactual(planned, query, unit.session, scenario)
                }
                Some(Err(error)) => Err(error.clone()),
                None => unreachable!("scenarios are materialized for every counterfactual query"),
            },
            QueryKind::Sweep => match self.plan.scenario_for(unit.query) {
                // A sweep with a scenario replays the counterfactual under
                // every config variant; without one it is abduction-shaped.
                Some(Ok(scenario)) => {
                    self.answer_counterfactual(planned, query, unit.session, scenario)
                }
                Some(Err(error)) => Err(error.clone()),
                None => self.answer_abduction(planned, unit.session),
            },
            QueryKind::Aggregate => self.answer_aggregate(planned, query, unit.query, unit.session),
        };
        let elapsed_us = started.elapsed().as_micros() as u64;
        match answered {
            Ok((output, cache)) => QueryRecord {
                query_id: query.id.clone(),
                kind: query.kind,
                session: session_id,
                variant: planned.label.clone(),
                status: "ok".to_string(),
                error: None,
                cache,
                elapsed_us,
                output: Some(output),
                attempts: None,
            },
            Err(error) => QueryRecord {
                query_id: query.id.clone(),
                kind: query.kind,
                session: session_id,
                variant: planned.label.clone(),
                status: "error".to_string(),
                error: Some(error),
                cache: None,
                elapsed_us,
                output: None,
                attempts: None,
            },
        }
    }

    /// Resolves a unit's abduction — through the cache when enabled —
    /// using the fingerprints precomputed at compile (config) and submit
    /// (log) time.
    fn abduce(
        &self,
        si: usize,
        horizon: usize,
        planned: &PlannedConfig,
    ) -> Result<(Arc<Abduction>, Option<String>), String> {
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::ComputePanic) {
                panic!("injected compute panic (fault plan)");
            }
            if fault.should_inject(FaultSite::Compute) {
                return Err("injected compute fault (fault plan)".to_string());
            }
        }
        // A lazy corpus decodes (or returns the resident copy of) the
        // session block here; a load failure surfaces as this unit's
        // per-record error, like any other per-unit failure.
        let log = self.load_log(si)?;
        match &self.cache {
            Some(cache) => {
                let (abduction, source) = cache
                    .get_or_infer_keyed(
                        self.corpus.session_id(si),
                        &log,
                        self.log_fps[si],
                        horizon,
                        &planned.config,
                        planned.fingerprint,
                    )
                    .map_err(|e| e.to_string())?;
                match source {
                    CacheSource::Memory => self.run_hits.fetch_add(1, Ordering::Relaxed),
                    CacheSource::Disk => self.run_disk_hits.fetch_add(1, Ordering::Relaxed),
                    CacheSource::Inferred => self.run_misses.fetch_add(1, Ordering::Relaxed),
                };
                Ok((abduction, Some(source.label().to_string())))
            }
            None => {
                let abduction =
                    infer_prefix(&log, horizon, &planned.config).map_err(|e| e.to_string())?;
                Ok((Arc::new(abduction), Some("off".to_string())))
            }
        }
    }

    fn answer_abduction(
        &self,
        planned: &PlannedConfig,
        si: usize,
    ) -> Result<(QueryOutput, Option<String>), String> {
        let log = self.load_log(si)?;
        let (abduction, cache) = self.abduce(si, log.records.len(), planned)?;
        let viterbi = abduction.viterbi_trace();
        let mae = self.corpus.truth(si).map(|truth| {
            let horizon = log.session_duration_s.min(truth.duration());
            trace_mae(
                &truth.with_duration(horizon),
                &viterbi,
                planned.config.delta_s,
            )
        });
        Ok((
            QueryOutput {
                chunks: Some(log.records.len()),
                mean_capacity_mbps: Some(viterbi.mean()),
                viterbi_mae_vs_truth_mbps: mae,
                ..QueryOutput::default()
            },
            cache,
        ))
    }

    fn answer_interventional(
        &self,
        planned: &PlannedConfig,
        query: &Query,
        si: usize,
    ) -> Result<(QueryOutput, Option<String>), String> {
        let log = self.load_log(si)?;
        let next_index = query.chunk_index.unwrap_or(log.records.len());
        if next_index == 0 || next_index > log.records.len() {
            return Err(format!(
                "chunk_index {next_index} out of range 1..={}",
                log.records.len()
            ));
        }
        let (abduction, cache) = self.abduce(si, next_index, planned)?;
        // At decision time the TCP state and (for replayed decisions) the
        // logged size of the next chunk are observable.
        let (tcp_info, logged) = if next_index < log.records.len() {
            let next = &log.records[next_index];
            (next.tcp_info, Some(next))
        } else {
            let last = log.records.last().expect("non-empty log");
            (last.tcp_info, None)
        };
        let candidate_size = query
            .candidate_size_bytes
            .or(logged.map(|r| r.size_bytes))
            .or(log.records.last().map(|r| r.size_bytes))
            .expect("non-empty log");
        let prediction = InterventionalPredictor::new(planned.config).predict_from_abduction(
            &abduction,
            &log,
            next_index,
            candidate_size,
            &tcp_info,
        );
        Ok((
            QueryOutput {
                expected_capacity_mbps: Some(prediction.expected_capacity_mbps),
                predicted_download_time_s: Some(prediction.download_time_s),
                actual_download_time_s: logged.map(|r| r.download_time_s),
                ..QueryOutput::default()
            },
            cache,
        ))
    }

    /// Samples the posterior and replays a scenario over every sampled
    /// trace — the shared core of counterfactual and aggregation answers.
    fn replay_prediction(
        &self,
        planned: &PlannedConfig,
        query: &Query,
        si: usize,
        scenario: &Scenario,
    ) -> Result<(Arc<Abduction>, RangePrediction, Option<String>), String> {
        let horizon = self.load_log(si)?.records.len();
        let (abduction, cache) = self.abduce(si, horizon, planned)?;
        let samples = query.samples.unwrap_or(planned.config.num_samples).max(1);
        let seed = query.seed.unwrap_or(planned.config.seed);
        let prediction = RangePrediction {
            samples: abduction
                .sample_traces_with_seed(samples, seed)
                .iter()
                .map(|trace| scenario.replay(trace))
                .collect(),
        };
        Ok((abduction, prediction, cache))
    }

    fn answer_counterfactual(
        &self,
        planned: &PlannedConfig,
        query: &Query,
        si: usize,
        scenario: &Scenario,
    ) -> Result<(QueryOutput, Option<String>), String> {
        let log = self.load_log(si)?;
        let (_, prediction, cache) = self.replay_prediction(planned, query, si, scenario)?;
        let baseline = scenario.replay(&baseline_trace(&log, planned.config.delta_s));
        let oracle = self
            .corpus
            .truth(si)
            .map(|truth| scenario.replay(&oracle_trace(truth, &log)));
        Ok((
            QueryOutput {
                veritas: Some(RangeSummary::of(&prediction)),
                baseline: Some(baseline),
                oracle,
                ..QueryOutput::default()
            },
            cache,
        ))
    }

    fn answer_aggregate(
        &self,
        planned: &PlannedConfig,
        query: &Query,
        qi: usize,
        si: usize,
    ) -> Result<(QueryOutput, Option<String>), String> {
        let spec = query.aggregate.as_ref().expect("validated aggregate query");
        let (value, cache) = if spec.metric.needs_replay() {
            let scenario = match self.plan.scenario_for(qi) {
                Some(Ok(scenario)) => scenario,
                Some(Err(error)) => return Err(error.clone()),
                None => unreachable!("replay metrics materialize a scenario at compile time"),
            };
            let (_, prediction, cache) = self.replay_prediction(planned, query, si, scenario)?;
            // The per-session contribution is the Veritas-median outcome
            // of the metric across posterior samples (paper §4.3).
            (prediction.median_of(|q| spec.metric.of_qoe(q)), cache)
        } else {
            let horizon = self.load_log(si)?.records.len();
            let (abduction, cache) = self.abduce(si, horizon, planned)?;
            (abduction.viterbi_trace().mean(), cache)
        };
        Ok((
            QueryOutput {
                metric_value: Some(value),
                ..QueryOutput::default()
            },
            cache,
        ))
    }
}

/// Builds the final `session: "*"` record of an aggregation query from
/// its fold state. [`AggregateSummary::reduce`] sorts the values itself,
/// so the fold is insensitive to the order contributions arrived in —
/// the property the distributed merge ([`crate::dist`]) relies on.
pub(crate) fn aggregate_record(query: &Query, fold: &AggregateFold) -> QueryRecord {
    let spec = query.aggregate.as_ref().expect("validated aggregate query");
    let mut record = QueryRecord {
        query_id: query.id.clone(),
        kind: QueryKind::Aggregate,
        session: AGGREGATE_SESSION.to_string(),
        variant: None,
        status: "ok".to_string(),
        error: None,
        cache: None,
        elapsed_us: 0,
        output: None,
        attempts: None,
    };
    if fold.values.is_empty() {
        record.status = "error".to_string();
        record.error = Some(format!(
            "no session produced a value to aggregate ({} unit errors)",
            fold.unit_errors
        ));
    } else {
        record.output = Some(QueryOutput {
            aggregate: Some(AggregateSummary::reduce(spec.metric, &fold.values)),
            ..QueryOutput::default()
        });
    }
    record
}

/// Builds the concrete replay [`Scenario`] a [`ScenarioSpec`] describes,
/// starting from a corpus's deployed setting. Fails (instead of panicking)
/// on unknown ABR or ladder names and invalid buffer sizes, so bad query
/// files surface as per-query errors.
pub fn materialize_scenario(corpus: &dyn Corpus, spec: &ScenarioSpec) -> Result<Scenario, String> {
    let abr = spec
        .abr
        .clone()
        .unwrap_or_else(|| corpus.deployed_abr().to_string());
    if abr_by_name(&abr).is_none() {
        return Err(format!("unknown ABR algorithm name: {abr}"));
    }
    let mut player = *corpus.player();
    if let Some(buffer) = spec.buffer_capacity_s {
        if !(buffer.is_finite() && buffer > 0.0) {
            return Err(format!("buffer_capacity_s must be positive, got {buffer}"));
        }
        player = player.with_buffer_capacity(buffer);
    }
    let asset = match spec.ladder.as_deref() {
        None => corpus.asset().clone(),
        Some("paper_default" | "default") => {
            corpus.asset().reencoded(QualityLadder::paper_default())
        }
        Some("higher" | "paper_higher" | "paper_higher_qualities") => corpus
            .asset()
            .reencoded(QualityLadder::paper_higher_qualities()),
        Some(other) => {
            return Err(format!(
                "unknown ladder `{other}` (expected paper_default | higher)"
            ))
        }
    };
    Ok(Scenario::new(&abr, player, asset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::SyntheticSpec;
    use crate::query::QuerySet;
    use veritas::{CounterfactualEngine, VeritasConfig};

    fn tiny_corpus() -> SessionCorpus {
        SyntheticSpec {
            sessions: 2,
            video_duration_s: 120.0,
            ..SyntheticSpec::default()
        }
        .build()
    }

    fn config() -> VeritasConfig {
        VeritasConfig::paper_default().with_samples(2)
    }

    #[test]
    fn scenario_materialization_validates_names() {
        let corpus = tiny_corpus();
        assert!(materialize_scenario(&corpus, &ScenarioSpec::abr("bba")).is_ok());
        assert!(
            materialize_scenario(&corpus, &ScenarioSpec::abr("pensieve"))
                .unwrap_err()
                .contains("unknown ABR")
        );
        assert!(materialize_scenario(&corpus, &ScenarioSpec::ladder("8k"))
            .unwrap_err()
            .contains("unknown ladder"));
        assert!(materialize_scenario(&corpus, &ScenarioSpec::buffer(-1.0)).is_err());
    }

    #[test]
    fn run_fans_out_and_orders_records() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::abduction("ab"))
            .with_query(
                Query::counterfactual("cf", ScenarioSpec::abr("bba")).with_sessions(vec![1]),
            );
        let engine = Engine::new();
        let report = engine.run(&corpus, &set).unwrap();
        assert_eq!(report.summary.units, 3);
        assert_eq!(report.summary.ok, 3);
        assert_eq!(report.summary.errors, 0);
        let ids: Vec<(&str, &str)> = report
            .records
            .iter()
            .map(|r| (r.query_id.as_str(), r.session.as_str()))
            .collect();
        assert_eq!(
            ids,
            vec![
                ("ab", "session-0"),
                ("ab", "session-1"),
                ("cf", "session-1")
            ]
        );
        // The counterfactual on session-1 reuses the abduction query's
        // posterior for that session.
        assert_eq!(report.summary.cache_misses, 2);
        assert_eq!(report.summary.cache_hits, 1);
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
    }

    #[test]
    fn per_unit_errors_do_not_abort_the_batch() {
        let corpus = tiny_corpus();
        let chunks = corpus.sessions[0].log.records.len();
        let set = QuerySet::new("t", config())
            .with_query(Query::interventional("bad").with_chunk_index(chunks + 5))
            .with_query(Query::counterfactual(
                "bad-abr",
                ScenarioSpec::abr("pensieve"),
            ))
            .with_query(Query::abduction("good"));
        let report = Engine::new().run(&corpus, &set).unwrap();
        assert_eq!(report.summary.errors, 4);
        assert_eq!(report.summary.ok, 2);
        for record in report.records_for("bad") {
            assert!(record.error.as_ref().unwrap().contains("out of range"));
        }
    }

    #[test]
    fn structural_problems_fail_fast() {
        let corpus = tiny_corpus();
        let out_of_range =
            QuerySet::new("t", config()).with_query(Query::abduction("a").with_sessions(vec![9]));
        assert!(matches!(
            Engine::new().run(&corpus, &out_of_range),
            Err(EngineError::Query(_))
        ));
        let empty = QuerySet::new("t", config());
        assert!(Engine::new().run(&corpus, &empty).is_err());
    }

    #[test]
    fn counterfactual_matches_the_core_engine_exactly() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::counterfactual("cf", ScenarioSpec::abr("bba")));
        let report = Engine::new().run(&corpus, &set).unwrap();
        let core = CounterfactualEngine::new(config());
        for (record, session) in report.records.iter().zip(&corpus.sessions) {
            let scenario = materialize_scenario(&corpus, &ScenarioSpec::abr("bba")).unwrap();
            let expected = core.veritas_predict(&session.log, &scenario);
            let output = record.output.as_ref().unwrap();
            let veritas = output.veritas.unwrap();
            assert_eq!(veritas.samples, 2);
            let (lo, hi) = expected.ssim_range();
            assert_eq!((veritas.ssim_low, veritas.ssim_high), (lo, hi));
            assert_eq!(
                output.baseline.unwrap(),
                core.baseline_predict(&session.log, &scenario)
            );
            assert_eq!(
                output.oracle.unwrap(),
                core.oracle_predict(session.truth.as_ref().unwrap(), &session.log, &scenario)
            );
        }
    }

    #[test]
    fn queryset_shares_one_abduction_per_session_and_config() {
        // The acceptance scenario: N interventional + counterfactual
        // queries over one session must run exactly one abduction.
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(
                Query::counterfactual("cf-bba", ScenarioSpec::abr("bba")).with_sessions(vec![0]),
            )
            .with_query(
                Query::counterfactual("cf-buffer", ScenarioSpec::buffer(30.0))
                    .with_sessions(vec![0]),
            )
            .with_query(
                Query::counterfactual("cf-seeded", ScenarioSpec::abr("bola"))
                    .with_sessions(vec![0])
                    .with_seed(99)
                    .with_samples(1),
            )
            .with_query(Query::interventional("iv-next").with_sessions(vec![0]))
            .with_query(Query::abduction("ab").with_sessions(vec![0]));
        let engine = Engine::new();
        let report = engine.run(&corpus, &set).unwrap();
        assert_eq!(report.summary.errors, 0);
        assert_eq!(
            report.summary.cache_misses, 1,
            "exactly one abduction per (session, config) pair"
        );
        assert_eq!(report.summary.cache_hits, 4);
        assert_eq!(engine.cache().entries(), 1);
        // Running the same set again is fully served from cache.
        let again = engine.run(&corpus, &set).unwrap();
        assert_eq!(again.summary.cache_misses, 0);
        assert_eq!(again.summary.cache_hits, 5);
    }

    #[test]
    fn disabling_the_cache_re_infers_every_unit() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::abduction("a"))
            .with_query(Query::counterfactual("b", ScenarioSpec::abr("bba")));
        let engine = Engine::new().without_cache();
        let report = engine.run(&corpus, &set).unwrap();
        assert_eq!(report.summary.cache_hits, 0);
        assert_eq!(report.summary.cache_misses, 0);
        assert!(report
            .records
            .iter()
            .all(|r| r.cache.as_deref() == Some("off")));
        // Identical results either way.
        let cached = Engine::new().run(&corpus, &set).unwrap();
        for (a, b) in report.records.iter().zip(&cached.records) {
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::abduction("a").with_sessions(vec![0]))
            .with_query(
                Query::interventional("i")
                    .with_sessions(vec![0])
                    .with_chunk_index(10),
            );
        let report = Engine::new().run(&corpus, &set).unwrap();
        for line in report.to_jsonl().lines() {
            let back: QueryRecord = serde_json::from_str(line).unwrap();
            assert!(report.records.contains(&back));
        }
        let summary: RunSummary = serde_json::from_str(&report.summary_json()).unwrap();
        assert_eq!(summary, report.summary);
    }

    #[test]
    fn with_threads_zero_normalizes_to_default() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config()).with_query(Query::abduction("a"));
        let report = Engine::new().with_threads(0).run(&corpus, &set).unwrap();
        assert_eq!(
            report.summary.threads,
            executor::default_threads(),
            "with_threads(0) must mean `pick the default`, not one thread"
        );
        let explicit = Engine::new().with_threads(3).run(&corpus, &set).unwrap();
        assert_eq!(explicit.summary.threads, 3);
    }

    #[test]
    fn summary_reports_per_query_latency_aggregates() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::abduction("a"))
            .with_query(Query::counterfactual("b", ScenarioSpec::abr("bba")));
        let report = Engine::new().run(&corpus, &set).unwrap();
        assert_eq!(report.summary.per_query.len(), 2);
        for latency in &report.summary.per_query {
            assert_eq!(latency.units, corpus.len());
            assert!(latency.p50_us <= latency.p95_us);
            assert!(latency.p95_us <= latency.max_us);
            assert!(latency.max_us > 0, "units take measurable time");
        }
        assert_eq!(report.summary.per_query[0].id, "a");
        assert_eq!(report.summary.per_query[1].id, "b");
    }

    #[test]
    fn submit_rejects_a_mismatched_corpus() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config()).with_query(Query::abduction("a"));
        let plan = QueryPlan::compile(&set, &corpus).unwrap();
        // Wrong session count.
        let bigger = SyntheticSpec {
            sessions: 3,
            video_duration_s: 60.0,
            ..SyntheticSpec::default()
        }
        .build();
        assert!(matches!(
            Engine::new().submit(&bigger, &plan),
            Err(EngineError::CorpusMismatch(_))
        ));
        // Same session count, different content: the plan's scenarios and
        // selectors were resolved against another corpus, so this must be
        // rejected rather than silently replaying the wrong assets.
        let impostor = SyntheticSpec {
            sessions: 2,
            video_duration_s: 120.0,
            seed: 999,
            ..SyntheticSpec::default()
        }
        .build();
        match Engine::new().submit(&impostor, &plan) {
            Err(EngineError::CorpusMismatch(message)) => {
                assert!(message.contains("different corpus"))
            }
            Err(other) => panic!("expected a corpus-mismatch error, got {other:?}"),
            Ok(_) => panic!("a same-sized impostor corpus must be rejected"),
        }
        // Identical logs but a different deployed setting: scenarios were
        // materialized from the original setting, so this too must be
        // rejected, not silently replayed.
        let mut redeployed = corpus.clone();
        redeployed.deployed_abr = "bba".to_string();
        assert!(
            Engine::new().submit(&redeployed, &plan).is_err(),
            "a changed deployed setting must invalidate the plan"
        );
        let mut rebuffered = corpus.clone();
        rebuffered.player = rebuffered.player.with_buffer_capacity(30.0);
        assert!(Engine::new().submit(&rebuffered, &plan).is_err());
        // The corpus it was compiled against still works.
        assert!(Engine::new().submit(&corpus, &plan).is_ok());
    }

    #[test]
    fn multiple_aggregations_fold_in_query_order() {
        use crate::plan::{AggregateMetric, AggregateSpec};
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::aggregate(
                "agg-a",
                AggregateSpec::of(AggregateMetric::MeanCapacityMbps),
            ))
            .with_query(Query::aggregate(
                "agg-b",
                AggregateSpec::of(AggregateMetric::MeanCapacityMbps),
            ));
        // Several runs with real parallelism: the two fold records must
        // always close the report in query order, no matter which
        // aggregation's last unit finished first.
        for _ in 0..3 {
            let report = Engine::new().with_threads(4).run(&corpus, &set).unwrap();
            let tail: Vec<(&str, &str)> = report.records[report.records.len() - 2..]
                .iter()
                .map(|r| (r.query_id.as_str(), r.session.as_str()))
                .collect();
            assert_eq!(
                tail,
                vec![("agg-a", AGGREGATE_SESSION), ("agg-b", AGGREGATE_SESSION)]
            );
        }
    }

    #[test]
    fn pre_variant_reports_still_deserialize() {
        // A record line written before `variant`/`metric_value`/`aggregate`
        // existed must stay readable by `veritas validate`.
        let old_line = r#"{"query_id":"posterior","kind":"abduction","session":"session-0","status":"ok","error":null,"cache":"miss","elapsed_us":1234,"output":{"chunks":60,"mean_capacity_mbps":5.5,"viterbi_mae_vs_truth_mbps":null,"expected_capacity_mbps":null,"predicted_download_time_s":null,"actual_download_time_s":null,"veritas":null,"baseline":null,"oracle":null}}"#;
        let record: QueryRecord = serde_json::from_str(old_line).unwrap();
        assert_eq!(record.query_id, "posterior");
        assert_eq!(record.variant, None);
        assert_eq!(record.output.as_ref().unwrap().chunks, Some(60));
        assert_eq!(record.output.as_ref().unwrap().metric_value, None);
        // Typos are still rejected.
        assert!(serde_json::from_str::<QueryRecord>(
            r#"{"query_id":"q","kind":"abduction","session":"s","status":"ok","elapsed_us":1,"varient":"x"}"#
        )
        .is_err());
    }

    #[test]
    fn builder_matches_the_legacy_combinators() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config()).with_query(Query::abduction("a"));
        let built = Engine::builder()
            .threads(3)
            .shards(2)
            .build()
            .unwrap()
            .run(&corpus, &set)
            .unwrap();
        let legacy = Engine::new()
            .with_threads(3)
            .with_shards(2)
            .run(&corpus, &set)
            .unwrap();
        assert_eq!(built.summary.threads, 3);
        assert_eq!(built.summary.shards, legacy.summary.shards);
        for (a, b) in built.records.iter().zip(&legacy.records) {
            assert_eq!(a.output, b.output);
        }
        // threads(0) means "pick the default", exactly like with_threads(0).
        let zero = Engine::builder().threads(0).build().unwrap();
        let report = zero.run(&corpus, &set).unwrap();
        assert_eq!(report.summary.threads, executor::default_threads());
        // no_cache() re-infers every unit, exactly like without_cache().
        let uncached = Engine::builder().no_cache().build().unwrap();
        let report = uncached.run(&corpus, &set).unwrap();
        assert_eq!(report.summary.cache_hits, 0);
        assert_eq!(report.summary.cache_misses, 0);
    }

    #[test]
    fn builder_rejects_inconsistent_cache_combinations() {
        assert!(matches!(
            Engine::builder().no_cache().cache_dir("/tmp/never").build(),
            Err(EngineError::Config(_))
        ));
        assert!(matches!(
            Engine::builder().no_cache().min_cache_hits(1).build(),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn admission_gate_bounds_concurrent_plans() {
        let engine = Engine::builder().admission(2).build().unwrap();
        assert_eq!(engine.admission_bound(), Some(2));
        assert_eq!(engine.active_plans(), 0);
        let first = engine.try_admit().unwrap();
        let _second = engine.try_admit().unwrap();
        assert_eq!(engine.active_plans(), 2);
        match engine.try_admit() {
            Err(EngineError::Overloaded { active, bound }) => {
                assert_eq!((active, bound), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Releasing a permit frees a slot.
        drop(first);
        assert_eq!(engine.active_plans(), 1);
        let _third = engine.try_admit().unwrap();
        // A zero bound sheds everything; no bound admits everything.
        let drained = Engine::builder().admission(0).build().unwrap();
        assert!(drained.try_admit().is_err());
        let unbounded = Engine::new();
        assert_eq!(unbounded.admission_bound(), None);
        for _ in 0..64 {
            // No-op permits: dropping them immediately must not underflow.
            let _ = unbounded.try_admit().unwrap();
        }
        assert_eq!(unbounded.active_plans(), 0);
    }

    #[test]
    fn verify_summary_enforces_the_cache_floor() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::abduction("a"))
            .with_query(Query::abduction("b"));
        let engine = Engine::builder().min_cache_hits(2).build().unwrap();
        let report = engine.run(&corpus, &set).unwrap();
        // Two queries over two sessions: 2 misses + 2 hits — floor met.
        engine.verify_summary(&report.summary).unwrap();
        let strict = Engine::builder().min_cache_hits(1_000).build().unwrap();
        let report = strict.run(&corpus, &set).unwrap();
        match strict.verify_summary(&report.summary) {
            Err(EngineError::CacheShortfall { expected, observed }) => {
                assert_eq!(expected, 1_000);
                assert_eq!(observed, report.summary.cache_hits);
            }
            other => panic!("expected CacheShortfall, got {other:?}"),
        }
        // Engines without a floor never object.
        Engine::new().verify_summary(&report.summary).unwrap();
    }
}
