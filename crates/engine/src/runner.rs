//! The engine proper: fans a [`QuerySet`] out over a corpus and streams
//! per-query results.
//!
//! Execution model: every (query, session) pair is one independent work
//! unit. Units are distributed across cores by the atomic-cursor executor
//! ([`crate::executor`]), and each unit resolves its abduction through the
//! shared [`AbductionCache`], so a batch of N queries touching the same
//! session runs forward–backward once, not N times. Results come back as
//! [`QueryRecord`]s — one JSON line each, with timing, cache, and error
//! status — in deterministic (query-major, session-minor) order.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use veritas::{
    baseline_trace, oracle_trace, Abduction, InterventionalPredictor, RangePrediction, Scenario,
    VeritasConfig,
};
use veritas_abr::abr_by_name;
use veritas_media::QualityLadder;
use veritas_player::QoeSummary;
use veritas_trace::stats::trace_mae;

use crate::cache::AbductionCache;
use crate::corpus::{CorpusSession, SessionCorpus};
use crate::error::EngineError;
use crate::executor;
use crate::query::{Query, QueryKind, QuerySet, ScenarioSpec};

/// Veritas(Low)/(High) and median summaries of a counterfactual range
/// prediction, one triple per QoE metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeSummary {
    /// Number of posterior samples behind the ranges.
    pub samples: usize,
    /// Veritas(Low) mean SSIM.
    pub ssim_low: f64,
    /// Veritas(High) mean SSIM.
    pub ssim_high: f64,
    /// Median mean SSIM across samples.
    pub ssim_median: f64,
    /// Veritas(Low) rebuffering ratio (percent).
    pub rebuffer_low: f64,
    /// Veritas(High) rebuffering ratio (percent).
    pub rebuffer_high: f64,
    /// Median rebuffering ratio across samples.
    pub rebuffer_median: f64,
    /// Veritas(Low) average bitrate (Mbps).
    pub bitrate_low: f64,
    /// Veritas(High) average bitrate (Mbps).
    pub bitrate_high: f64,
    /// Median average bitrate across samples.
    pub bitrate_median: f64,
}

impl RangeSummary {
    /// Summarizes a range prediction.
    pub fn of(prediction: &RangePrediction) -> Self {
        let (ssim_low, ssim_high) = prediction.ssim_range();
        let (rebuffer_low, rebuffer_high) = prediction.rebuffer_range();
        let (bitrate_low, bitrate_high) = prediction.bitrate_range();
        Self {
            samples: prediction.samples.len(),
            ssim_low,
            ssim_high,
            ssim_median: prediction.median_of(|q| q.mean_ssim),
            rebuffer_low,
            rebuffer_high,
            rebuffer_median: prediction.median_of(|q| q.rebuffer_ratio_percent),
            bitrate_low,
            bitrate_high,
            bitrate_median: prediction.median_of(|q| q.avg_bitrate_mbps),
        }
    }
}

/// The kind-specific payload of a successful query; fields irrelevant to
/// the query's kind are `null` in the JSONL output.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryOutput {
    /// Abduction: number of chunks conditioned on.
    pub chunks: Option<usize>,
    /// Abduction: mean of the Viterbi GTBW trace in Mbps.
    pub mean_capacity_mbps: Option<f64>,
    /// Abduction: MAE of the Viterbi trace against the ground truth, when
    /// the corpus carries one.
    pub viterbi_mae_vs_truth_mbps: Option<f64>,
    /// Interventional: expected GTBW for the candidate chunk in Mbps.
    pub expected_capacity_mbps: Option<f64>,
    /// Interventional: predicted download time in seconds.
    pub predicted_download_time_s: Option<f64>,
    /// Interventional: the logged download time at the decision point, when
    /// the predicted chunk exists in the log.
    pub actual_download_time_s: Option<f64>,
    /// Counterfactual: the Veritas range prediction.
    pub veritas: Option<RangeSummary>,
    /// Counterfactual: the Baseline (observed-throughput replay) outcome.
    pub baseline: Option<QoeSummary>,
    /// Counterfactual: the Oracle (ground-truth replay) outcome, when the
    /// corpus carries the truth.
    pub oracle: Option<QoeSummary>,
}

/// One line of the engine's JSONL result stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Id of the query this record answers.
    pub query_id: String,
    /// The query's kind.
    pub kind: QueryKind,
    /// Id of the corpus session the unit ran over.
    pub session: String,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// Error description when `status == "error"`.
    pub error: Option<String>,
    /// `"hit"` / `"miss"` when the unit consulted the abduction cache,
    /// `"off"` when caching was disabled, `null` when the unit failed
    /// before inference.
    pub cache: Option<String>,
    /// Wall-clock time this unit took, in microseconds.
    pub elapsed_us: u64,
    /// The payload, present when `status == "ok"`.
    pub output: Option<QueryOutput>,
}

impl QueryRecord {
    /// Whether the unit succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

/// Aggregate summary of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Name of the query set.
    pub queryset: String,
    /// Number of queries in the set.
    pub queries: usize,
    /// Number of sessions in the corpus.
    pub sessions: usize,
    /// Number of (query, session) work units executed.
    pub units: usize,
    /// Units that succeeded.
    pub ok: usize,
    /// Units that failed.
    pub errors: usize,
    /// Abduction-cache hits during this run.
    pub cache_hits: u64,
    /// Abduction-cache misses during this run.
    pub cache_misses: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: f64,
}

/// Everything an engine run produced.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-unit records in (query-major, session-minor) order.
    pub records: Vec<QueryRecord>,
    /// The run summary.
    pub summary: RunSummary,
}

impl EngineReport {
    /// Renders the records as JSON Lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&serde_json::to_string(record).expect("record serialization cannot fail"));
            out.push('\n');
        }
        out
    }

    /// The summary as a JSON object.
    pub fn summary_json(&self) -> String {
        serde_json::to_string_pretty(&self.summary).expect("summary serialization cannot fail")
    }

    /// The records answering one query, in session order.
    pub fn records_for(&self, query_id: &str) -> Vec<&QueryRecord> {
        self.records
            .iter()
            .filter(|r| r.query_id == query_id)
            .collect()
    }
}

/// The batched, cached causal-query engine.
#[derive(Debug)]
pub struct Engine {
    threads: Option<usize>,
    cache_enabled: bool,
    cache: AbductionCache,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with caching enabled and the default thread count.
    pub fn new() -> Self {
        Self {
            threads: None,
            cache_enabled: true,
            cache: AbductionCache::new(),
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Disables the abduction cache — every unit re-infers. Exists for the
    /// `veritas bench` comparison and for measuring cache effectiveness.
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// The engine's abduction cache (shared across runs).
    pub fn cache(&self) -> &AbductionCache {
        &self.cache
    }

    /// Executes a query set over a corpus.
    ///
    /// Fails fast on structural problems (empty corpus, invalid query set,
    /// out-of-range session selectors); per-unit inference or replay
    /// failures are reported in the returned records instead of aborting
    /// the batch.
    pub fn run(&self, corpus: &SessionCorpus, set: &QuerySet) -> Result<EngineReport, EngineError> {
        if corpus.is_empty() {
            return Err(EngineError::EmptyCorpus);
        }
        set.validate().map_err(EngineError::Query)?;
        let mut units: Vec<(usize, usize)> = Vec::new();
        for (qi, query) in set.queries.iter().enumerate() {
            let selected = corpus
                .select(&query.sessions)
                .map_err(|e| EngineError::Query(format!("query `{}`: {e}", query.id)))?;
            units.extend(selected.into_iter().map(|si| (qi, si)));
        }
        // Materialize counterfactual scenarios once per *distinct spec*,
        // not once per (query, session) unit — a ladder change re-encodes
        // the corpus asset, which must not happen again for every session
        // (or for every query repeating the same intervention). A bad spec
        // (unknown ABR/ladder) is replicated as a per-unit error below so
        // one broken query still doesn't abort the batch.
        let default_spec = ScenarioSpec::default();
        let mut scenarios: Vec<Option<Result<Scenario, String>>> =
            Vec::with_capacity(set.queries.len());
        for query in &set.queries {
            if query.kind != QueryKind::Counterfactual {
                scenarios.push(None);
                continue;
            }
            let spec = query.scenario.as_ref().unwrap_or(&default_spec);
            let reused = set.queries[..scenarios.len()]
                .iter()
                .zip(&scenarios)
                .find_map(|(earlier, materialized)| {
                    (earlier.kind == QueryKind::Counterfactual
                        && earlier.scenario.as_ref().unwrap_or(&default_spec) == spec)
                        .then(|| materialized.clone())
                })
                .flatten();
            scenarios.push(Some(
                reused.unwrap_or_else(|| materialize_scenario(corpus, spec)),
            ));
        }
        let threads = self.threads.unwrap_or_else(executor::default_threads);
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let started = Instant::now();
        let records = executor::execute(&units, threads, |&(qi, si)| {
            self.run_unit(corpus, set, &scenarios, qi, si)
        });
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let ok = records.iter().filter(|r| r.is_ok()).count();
        let summary = RunSummary {
            queryset: set.name.clone(),
            queries: set.queries.len(),
            sessions: corpus.len(),
            units: records.len(),
            ok,
            errors: records.len() - ok,
            cache_hits: self.cache.hits() - hits_before,
            cache_misses: self.cache.misses() - misses_before,
            threads,
            elapsed_ms,
        };
        Ok(EngineReport { records, summary })
    }

    fn run_unit(
        &self,
        corpus: &SessionCorpus,
        set: &QuerySet,
        scenarios: &[Option<Result<Scenario, String>>],
        qi: usize,
        si: usize,
    ) -> QueryRecord {
        let query = &set.queries[qi];
        let session = &corpus.sessions[si];
        let started = Instant::now();
        let answered = match (query.kind, &scenarios[qi]) {
            (QueryKind::Abduction, _) => self.answer_abduction(&set.config, session),
            (QueryKind::Interventional, _) => {
                self.answer_interventional(&set.config, query, session)
            }
            (QueryKind::Counterfactual, Some(Ok(scenario))) => {
                self.answer_counterfactual(&set.config, query, session, scenario)
            }
            (QueryKind::Counterfactual, Some(Err(error))) => Err(error.clone()),
            (QueryKind::Counterfactual, None) => {
                unreachable!("scenarios are materialized for every counterfactual query")
            }
        };
        let elapsed_us = started.elapsed().as_micros() as u64;
        match answered {
            Ok((output, cache)) => QueryRecord {
                query_id: query.id.clone(),
                kind: query.kind,
                session: session.id.clone(),
                status: "ok".to_string(),
                error: None,
                cache,
                elapsed_us,
                output: Some(output),
            },
            Err(error) => QueryRecord {
                query_id: query.id.clone(),
                kind: query.kind,
                session: session.id.clone(),
                status: "error".to_string(),
                error: Some(error),
                cache: None,
                elapsed_us,
                output: None,
            },
        }
    }

    /// Resolves the unit's abduction — through the cache when enabled —
    /// returning the posterior and the cache status string.
    fn abduce(
        &self,
        session: &CorpusSession,
        horizon: usize,
        config: &VeritasConfig,
    ) -> Result<(Arc<Abduction>, Option<String>), String> {
        if self.cache_enabled {
            let (abduction, hit) = self
                .cache
                .get_or_infer_prefix(&session.id, &session.log, horizon, config)
                .map_err(|e| e.to_string())?;
            Ok((
                abduction,
                Some(if hit { "hit" } else { "miss" }.to_string()),
            ))
        } else {
            let abduction = crate::cache::infer_prefix(&session.log, horizon, config)
                .map_err(|e| e.to_string())?;
            Ok((Arc::new(abduction), Some("off".to_string())))
        }
    }

    fn answer_abduction(
        &self,
        config: &VeritasConfig,
        session: &CorpusSession,
    ) -> Result<(QueryOutput, Option<String>), String> {
        let (abduction, cache) = self.abduce(session, session.log.records.len(), config)?;
        let viterbi = abduction.viterbi_trace();
        let mae = session.truth.as_ref().map(|truth| {
            let horizon = session.log.session_duration_s.min(truth.duration());
            trace_mae(&truth.with_duration(horizon), &viterbi, config.delta_s)
        });
        Ok((
            QueryOutput {
                chunks: Some(session.log.records.len()),
                mean_capacity_mbps: Some(viterbi.mean()),
                viterbi_mae_vs_truth_mbps: mae,
                ..QueryOutput::default()
            },
            cache,
        ))
    }

    fn answer_interventional(
        &self,
        config: &VeritasConfig,
        query: &Query,
        session: &CorpusSession,
    ) -> Result<(QueryOutput, Option<String>), String> {
        let log = &session.log;
        let next_index = query.chunk_index.unwrap_or(log.records.len());
        if next_index == 0 || next_index > log.records.len() {
            return Err(format!(
                "chunk_index {next_index} out of range 1..={}",
                log.records.len()
            ));
        }
        let (abduction, cache) = self.abduce(session, next_index, config)?;
        // At decision time the TCP state and (for replayed decisions) the
        // logged size of the next chunk are observable.
        let (tcp_info, logged) = if next_index < log.records.len() {
            let next = &log.records[next_index];
            (next.tcp_info, Some(next))
        } else {
            let last = log.records.last().expect("non-empty log");
            (last.tcp_info, None)
        };
        let candidate_size = query
            .candidate_size_bytes
            .or(logged.map(|r| r.size_bytes))
            .or(log.records.last().map(|r| r.size_bytes))
            .expect("non-empty log");
        let prediction = InterventionalPredictor::new(*config).predict_from_abduction(
            &abduction,
            log,
            next_index,
            candidate_size,
            &tcp_info,
        );
        Ok((
            QueryOutput {
                expected_capacity_mbps: Some(prediction.expected_capacity_mbps),
                predicted_download_time_s: Some(prediction.download_time_s),
                actual_download_time_s: logged.map(|r| r.download_time_s),
                ..QueryOutput::default()
            },
            cache,
        ))
    }

    fn answer_counterfactual(
        &self,
        config: &VeritasConfig,
        query: &Query,
        session: &CorpusSession,
        scenario: &Scenario,
    ) -> Result<(QueryOutput, Option<String>), String> {
        let (abduction, cache) = self.abduce(session, session.log.records.len(), config)?;
        let samples = query.samples.unwrap_or(config.num_samples).max(1);
        let seed = query.seed.unwrap_or(config.seed);
        let prediction = RangePrediction {
            samples: abduction
                .sample_traces_with_seed(samples, seed)
                .iter()
                .map(|trace| scenario.replay(trace))
                .collect(),
        };
        let baseline = scenario.replay(&baseline_trace(&session.log, config.delta_s));
        let oracle = session
            .truth
            .as_ref()
            .map(|truth| scenario.replay(&oracle_trace(truth, &session.log)));
        Ok((
            QueryOutput {
                veritas: Some(RangeSummary::of(&prediction)),
                baseline: Some(baseline),
                oracle,
                ..QueryOutput::default()
            },
            cache,
        ))
    }
}

/// Builds the concrete replay [`Scenario`] a [`ScenarioSpec`] describes,
/// starting from a corpus's deployed setting. Fails (instead of panicking)
/// on unknown ABR or ladder names and invalid buffer sizes, so bad query
/// files surface as per-query errors.
pub fn materialize_scenario(
    corpus: &SessionCorpus,
    spec: &ScenarioSpec,
) -> Result<Scenario, String> {
    let abr = spec
        .abr
        .clone()
        .unwrap_or_else(|| corpus.deployed_abr.clone());
    if abr_by_name(&abr).is_none() {
        return Err(format!("unknown ABR algorithm name: {abr}"));
    }
    let mut player = corpus.player;
    if let Some(buffer) = spec.buffer_capacity_s {
        if !(buffer.is_finite() && buffer > 0.0) {
            return Err(format!("buffer_capacity_s must be positive, got {buffer}"));
        }
        player = player.with_buffer_capacity(buffer);
    }
    let asset = match spec.ladder.as_deref() {
        None => corpus.asset.clone(),
        Some("paper_default" | "default") => corpus.asset.reencoded(QualityLadder::paper_default()),
        Some("higher" | "paper_higher" | "paper_higher_qualities") => corpus
            .asset
            .reencoded(QualityLadder::paper_higher_qualities()),
        Some(other) => {
            return Err(format!(
                "unknown ladder `{other}` (expected paper_default | higher)"
            ))
        }
    };
    Ok(Scenario::new(&abr, player, asset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::SyntheticSpec;
    use crate::query::QuerySet;
    use veritas::CounterfactualEngine;

    fn tiny_corpus() -> SessionCorpus {
        SyntheticSpec {
            sessions: 2,
            video_duration_s: 120.0,
            ..SyntheticSpec::default()
        }
        .build()
    }

    fn config() -> VeritasConfig {
        VeritasConfig::paper_default().with_samples(2)
    }

    #[test]
    fn scenario_materialization_validates_names() {
        let corpus = tiny_corpus();
        assert!(materialize_scenario(&corpus, &ScenarioSpec::abr("bba")).is_ok());
        assert!(
            materialize_scenario(&corpus, &ScenarioSpec::abr("pensieve"))
                .unwrap_err()
                .contains("unknown ABR")
        );
        assert!(materialize_scenario(&corpus, &ScenarioSpec::ladder("8k"))
            .unwrap_err()
            .contains("unknown ladder"));
        assert!(materialize_scenario(&corpus, &ScenarioSpec::buffer(-1.0)).is_err());
    }

    #[test]
    fn run_fans_out_and_orders_records() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::abduction("ab"))
            .with_query(
                Query::counterfactual("cf", ScenarioSpec::abr("bba")).with_sessions(vec![1]),
            );
        let engine = Engine::new();
        let report = engine.run(&corpus, &set).unwrap();
        assert_eq!(report.summary.units, 3);
        assert_eq!(report.summary.ok, 3);
        assert_eq!(report.summary.errors, 0);
        let ids: Vec<(&str, &str)> = report
            .records
            .iter()
            .map(|r| (r.query_id.as_str(), r.session.as_str()))
            .collect();
        assert_eq!(
            ids,
            vec![
                ("ab", "session-0"),
                ("ab", "session-1"),
                ("cf", "session-1")
            ]
        );
        // The counterfactual on session-1 reuses the abduction query's
        // posterior for that session.
        assert_eq!(report.summary.cache_misses, 2);
        assert_eq!(report.summary.cache_hits, 1);
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
    }

    #[test]
    fn per_unit_errors_do_not_abort_the_batch() {
        let corpus = tiny_corpus();
        let chunks = corpus.sessions[0].log.records.len();
        let set = QuerySet::new("t", config())
            .with_query(Query::interventional("bad").with_chunk_index(chunks + 5))
            .with_query(Query::counterfactual(
                "bad-abr",
                ScenarioSpec::abr("pensieve"),
            ))
            .with_query(Query::abduction("good"));
        let report = Engine::new().run(&corpus, &set).unwrap();
        assert_eq!(report.summary.errors, 4);
        assert_eq!(report.summary.ok, 2);
        for record in report.records_for("bad") {
            assert!(record.error.as_ref().unwrap().contains("out of range"));
        }
    }

    #[test]
    fn structural_problems_fail_fast() {
        let corpus = tiny_corpus();
        let out_of_range =
            QuerySet::new("t", config()).with_query(Query::abduction("a").with_sessions(vec![9]));
        assert!(matches!(
            Engine::new().run(&corpus, &out_of_range),
            Err(EngineError::Query(_))
        ));
        let empty = QuerySet::new("t", config());
        assert!(Engine::new().run(&corpus, &empty).is_err());
    }

    #[test]
    fn counterfactual_matches_the_core_engine_exactly() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::counterfactual("cf", ScenarioSpec::abr("bba")));
        let report = Engine::new().run(&corpus, &set).unwrap();
        let core = CounterfactualEngine::new(config());
        for (record, session) in report.records.iter().zip(&corpus.sessions) {
            let scenario = materialize_scenario(&corpus, &ScenarioSpec::abr("bba")).unwrap();
            let expected = core.veritas_predict(&session.log, &scenario);
            let output = record.output.as_ref().unwrap();
            let veritas = output.veritas.unwrap();
            assert_eq!(veritas.samples, 2);
            let (lo, hi) = expected.ssim_range();
            assert_eq!((veritas.ssim_low, veritas.ssim_high), (lo, hi));
            assert_eq!(
                output.baseline.unwrap(),
                core.baseline_predict(&session.log, &scenario)
            );
            assert_eq!(
                output.oracle.unwrap(),
                core.oracle_predict(session.truth.as_ref().unwrap(), &session.log, &scenario)
            );
        }
    }

    #[test]
    fn queryset_shares_one_abduction_per_session_and_config() {
        // The acceptance scenario: N interventional + counterfactual
        // queries over one session must run exactly one abduction.
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(
                Query::counterfactual("cf-bba", ScenarioSpec::abr("bba")).with_sessions(vec![0]),
            )
            .with_query(
                Query::counterfactual("cf-buffer", ScenarioSpec::buffer(30.0))
                    .with_sessions(vec![0]),
            )
            .with_query(
                Query::counterfactual("cf-seeded", ScenarioSpec::abr("bola"))
                    .with_sessions(vec![0])
                    .with_seed(99)
                    .with_samples(1),
            )
            .with_query(Query::interventional("iv-next").with_sessions(vec![0]))
            .with_query(Query::abduction("ab").with_sessions(vec![0]));
        let engine = Engine::new();
        let report = engine.run(&corpus, &set).unwrap();
        assert_eq!(report.summary.errors, 0);
        assert_eq!(
            report.summary.cache_misses, 1,
            "exactly one abduction per (session, config) pair"
        );
        assert_eq!(report.summary.cache_hits, 4);
        assert_eq!(engine.cache().entries(), 1);
        // Running the same set again is fully served from cache.
        let again = engine.run(&corpus, &set).unwrap();
        assert_eq!(again.summary.cache_misses, 0);
        assert_eq!(again.summary.cache_hits, 5);
    }

    #[test]
    fn disabling_the_cache_re_infers_every_unit() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::abduction("a"))
            .with_query(Query::counterfactual("b", ScenarioSpec::abr("bba")));
        let engine = Engine::new().without_cache();
        let report = engine.run(&corpus, &set).unwrap();
        assert_eq!(report.summary.cache_hits, 0);
        assert_eq!(report.summary.cache_misses, 0);
        assert!(report
            .records
            .iter()
            .all(|r| r.cache.as_deref() == Some("off")));
        // Identical results either way.
        let cached = Engine::new().run(&corpus, &set).unwrap();
        for (a, b) in report.records.iter().zip(&cached.records) {
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let corpus = tiny_corpus();
        let set = QuerySet::new("t", config())
            .with_query(Query::abduction("a").with_sessions(vec![0]))
            .with_query(
                Query::interventional("i")
                    .with_sessions(vec![0])
                    .with_chunk_index(10),
            );
        let report = Engine::new().run(&corpus, &set).unwrap();
        for line in report.to_jsonl().lines() {
            let back: QueryRecord = serde_json::from_str(line).unwrap();
            assert!(report.records.contains(&back));
        }
        let summary: RunSummary = serde_json::from_str(&report.summary_json()).unwrap();
        assert_eq!(summary, report.summary);
    }
}
