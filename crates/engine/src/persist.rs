//! The persistent abduction store: warm-starting inference across
//! processes.
//!
//! Abduction is the expensive step of every causal query, and everything
//! downstream (interventional and counterfactual replay, aggregation)
//! only *reads* the posterior. Within one process the [`crate::AbductionCache`]
//! already computes each posterior once; this module extends that cache
//! with a **disk tier**, so a second `veritas run` over an unchanged
//! corpus performs zero EHMM inferences.
//!
//! # Key scheme
//!
//! Entries are content-addressed by the
//! `(log_fingerprint, config_fingerprint, horizon)` triple the in-memory
//! cache already computes ([`crate::log_fingerprint`] /
//! [`crate::config_fingerprint`]): the log fingerprint covers every
//! observed variable inference conditions on, the config fingerprint
//! covers every posterior-relevant configuration field, and the horizon is
//! the conditioned-on record prefix. Session *ids* are deliberately not
//! part of the identity — two sessions with byte-identical logs share one
//! stored posterior, and a renamed corpus file warm-starts unchanged.
//! Invalidation is therefore purely structural: any change to the log or
//! the posterior-relevant config changes the fingerprint and naturally
//! misses; no stamp files or TTLs exist.
//!
//! # File format
//!
//! One file per posterior, named `ab-v1-<log>-<config>-<horizon>.vpost`
//! under the store directory. The payload is a fixed little-endian binary
//! layout (magic, format version, the key triple, the Viterbi decode, the
//! smoothed posteriors, and a trailing FNV-1a checksum). Floats are stored
//! as raw IEEE-754 bit patterns, so a reloaded posterior is *bit-equal* to
//! the one saved — no text round-trip error.
//!
//! # Failure philosophy
//!
//! Writes are atomic (write to a temp file in the store directory, then
//! rename), so a crash mid-write can never leave a half-entry under a live
//! key. Loads are corruption-tolerant: a missing, truncated, garbage, or
//! shape-inconsistent file is a **miss**, never an error — the cache
//! simply re-infers and overwrites the entry via the same atomic path.
//! [`DiskStore::load_classified`] additionally distinguishes the corrupt
//! case and deletes the bad file, so the re-inference + write-through
//! *heals* the store; the cache tier counts these heals
//! ([`crate::CacheStats::healed`]). A [`crate::FaultPlan`] can be
//! attached ([`DiskStore::with_fault_plan`]) to inject deterministic
//! read/write failures for chaos testing.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use veritas::{Abduction, VeritasConfig};
use veritas_ehmm::{EhmmWorkspace, Posteriors, StateMatrix, TransitionMatrix, ViterbiResult};
use veritas_player::SessionLog;

use crate::cache::{fnv_mix, FNV_OFFSET};
use crate::fault::{FaultPlan, FaultSite};

/// Version stamp embedded in every stored entry; bump on any layout
/// change so older binaries' files read as misses instead of garbage.
pub const FORMAT_VERSION: u64 = 1;

/// Version stamp of persisted kernel tables (`.vkern`); bumped
/// independently of [`FORMAT_VERSION`] — the two layouts evolve
/// separately.
pub const KERNEL_FORMAT_VERSION: u64 = 1;

/// Leading magic of every store file.
const MAGIC: [u8; 8] = *b"VRTSPOST";

/// Leading magic of every kernel-table file.
const KERNEL_MAGIC: [u8; 8] = *b"VRTSKERN";

/// Sanity ceiling on the kernel count of one stored table (distinct
/// chunk gaps per config; real corpora have at most a few hundred).
const MAX_KERNELS: u64 = 1 << 16;

/// Decode-time sanity ceilings: a corrupted length field must fail fast
/// instead of driving a multi-gigabyte allocation. Real sessions have
/// hundreds of chunks and tens of capacity states.
const MAX_OBS: u64 = 1 << 24;
const MAX_STATES: u64 = 1 << 16;

/// The content-addressed identity of one stored posterior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersistKey {
    /// [`crate::log_fingerprint`] of the session log.
    pub log: u64,
    /// [`crate::config_fingerprint`] of the posterior-relevant config.
    pub config: u64,
    /// Number of chunk records the posterior conditions on.
    pub horizon: usize,
}

/// A directory of persisted abduction posteriors — the disk tier behind
/// [`crate::AbductionCache`].
///
/// The store is safe to share between concurrent processes pointed at the
/// same directory: writes are write-then-rename atomic, loads validate a
/// checksum plus every shape, and both sides of a racing double-write
/// produce identical bytes (the key is a content address).
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Distinguishes concurrent temp files within one process; the file
    /// name also carries the process id for cross-process uniqueness.
    nonce: AtomicU64,
    /// Chaos hook: injects [`FaultSite::DiskRead`] /
    /// [`FaultSite::DiskWrite`] failures when set.
    fault: Option<Arc<FaultPlan>>,
}

/// What [`DiskStore::load_classified`] found for a key — the distinction
/// the self-healing cache tier needs and plain [`DiskStore::load`]
/// collapses.
#[derive(Debug)]
pub enum DiskLoadOutcome {
    /// A complete, checksum-valid entry restored into an [`Abduction`].
    Restored(Box<Abduction>),
    /// No entry on disk (or it was unreadable): an ordinary cold miss.
    Missing,
    /// An entry existed but failed validation (bad magic, checksum, key,
    /// or shapes) and *this caller* deleted it — the first half of a
    /// heal; re-inference plus the write-through completes it. Reported
    /// at most once per corrupt file: racing readers that lose the
    /// unlink see [`DiskLoadOutcome::Missing`].
    Healed,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            nonce: AtomicU64::new(0),
            fault: None,
        })
    }

    /// Attaches a fault plan: reads and writes consult it and fail
    /// deterministically (a read fault degrades to a miss, a write fault
    /// to a skipped write-through).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path an entry for `key` lives at.
    pub fn path_for(&self, key: &PersistKey) -> PathBuf {
        self.dir.join(format!(
            "ab-v{FORMAT_VERSION}-{:016x}-{:016x}-{:x}.vpost",
            key.log, key.config, key.horizon
        ))
    }

    /// Persists one abduction under `key`, atomically: the payload is
    /// written to a temp file in the store directory and renamed into
    /// place, so readers only ever observe complete entries.
    pub fn save(&self, key: &PersistKey, abduction: &Abduction) -> std::io::Result<()> {
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::DiskWrite) {
                return Err(std::io::Error::other("injected disk write fault"));
            }
        }
        let bytes = encode(key, abduction.viterbi(), abduction.posteriors());
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{:016x}",
            std::process::id(),
            self.nonce.fetch_add(1, Ordering::Relaxed),
            key.log
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            fs::rename(&tmp, self.path_for(key))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Loads the entry for `key` and restores it into an [`Abduction`]
    /// over `log` (already the horizon-truncated view) under `config`,
    /// resolving transition kernels through the shared `workspace`.
    ///
    /// Any failure — no file, unreadable file, wrong magic or version, a
    /// checksum or key mismatch, or artifacts whose shapes do not fit the
    /// log — returns `None`: a disk problem is a cache miss, never an
    /// error.
    pub fn load(
        &self,
        key: &PersistKey,
        log: &SessionLog,
        config: &VeritasConfig,
        workspace: Arc<EhmmWorkspace>,
    ) -> Option<Abduction> {
        match self.load_classified(key, log, config, workspace) {
            DiskLoadOutcome::Restored(abduction) => Some(*abduction),
            DiskLoadOutcome::Missing | DiskLoadOutcome::Healed => None,
        }
    }

    /// [`DiskStore::load`], but distinguishing a cold miss from a corrupt
    /// entry — and *removing* the corrupt file so the caller's
    /// re-inference plus write-through heals the store in place.
    ///
    /// The unlink doubles as an atomic claim: when several readers race
    /// on the same corrupt file, exactly one observes
    /// [`DiskLoadOutcome::Healed`]; the rest read the path as missing (or
    /// lose the `remove_file` race) and report an ordinary miss.
    pub fn load_classified(
        &self,
        key: &PersistKey,
        log: &SessionLog,
        config: &VeritasConfig,
        workspace: Arc<EhmmWorkspace>,
    ) -> DiskLoadOutcome {
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::DiskRead) {
                // A simulated unreadable entry: degrade to a miss, never
                // an error (matching the real unreadable-file path).
                return DiskLoadOutcome::Missing;
            }
        }
        let path = self.path_for(key);
        let Ok(bytes) = fs::read(&path) else {
            return DiskLoadOutcome::Missing;
        };
        let restored = decode(&bytes)
            .filter(|(stored_key, _, _)| stored_key == key)
            .and_then(|(_, viterbi, posteriors)| {
                Abduction::from_parts(log, config, workspace, viterbi, posteriors).ok()
            });
        match restored {
            Some(abduction) => DiskLoadOutcome::Restored(Box::new(abduction)),
            // The file exists but is garbage (truncated, bit-flipped,
            // foreign, or shape-inconsistent). Delete it; whoever wins
            // the unlink owns the heal.
            None => match fs::remove_file(&path) {
                Ok(()) => DiskLoadOutcome::Healed,
                Err(_) => DiskLoadOutcome::Missing,
            },
        }
    }

    /// The file path the kernel table of config fingerprint `config`
    /// lives at — content-addressed like the posterior entries, so every
    /// process pointed at one directory shares one table per config.
    pub fn kernel_path_for(&self, config: u64) -> PathBuf {
        self.dir
            .join(format!("kern-v{KERNEL_FORMAT_VERSION}-{config:016x}.vkern"))
    }

    /// Persists the materialized `A^Δ` kernel tables of one config's
    /// inference workspace ([`EhmmWorkspace::export_kernels`]),
    /// atomically (temp + rename, like [`DiskStore::save`]). Kernels are
    /// deterministic matrix powers, so racing writers of the same gap
    /// set produce identical bytes; writers with different gap sets
    /// last-write-wins a still-valid table.
    pub fn save_kernels(
        &self,
        config: u64,
        kernels: &[(u32, TransitionMatrix)],
    ) -> std::io::Result<()> {
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::DiskWrite) {
                return Err(std::io::Error::other("injected disk write fault"));
            }
        }
        let bytes = encode_kernels(config, kernels);
        let tmp = self.dir.join(format!(
            ".tmp-kern-{}-{}-{config:016x}",
            std::process::id(),
            self.nonce.fetch_add(1, Ordering::Relaxed),
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            fs::rename(&tmp, self.kernel_path_for(config))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Loads the persisted kernel table of config fingerprint `config`,
    /// validating the checksum, the embedded fingerprint, and that every
    /// matrix is `num_states`-square and row-stochastic. Like the
    /// posterior loads, every failure is a miss (`None`), and a corrupt
    /// file is deleted so the next write-through replaces it.
    pub fn load_kernels(
        &self,
        config: u64,
        num_states: usize,
    ) -> Option<Vec<(u32, TransitionMatrix)>> {
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::DiskRead) {
                return None;
            }
        }
        let path = self.kernel_path_for(config);
        let bytes = fs::read(&path).ok()?;
        let decoded = decode_kernels(&bytes)
            .filter(|&(stored_config, stored_states, _)| {
                stored_config == config && stored_states == num_states
            })
            .map(|(_, _, kernels)| kernels);
        if decoded.is_none() {
            let _ = fs::remove_file(&path);
        }
        decoded
    }
}

/// Append helpers: everything is little-endian, floats as raw bit patterns
/// (the reload is bit-exact by construction). Shared with the corpus
/// store ([`crate::store`]) so the two binary formats can never disagree
/// on encoding primitives.
pub(crate) fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, value: f64) {
    put_u64(buf, value.to_bits());
}

/// Serializes one entry: magic, version, key, Viterbi decode, posteriors,
/// trailing FNV-1a checksum over everything after the magic.
fn encode(key: &PersistKey, viterbi: &ViterbiResult, posteriors: &Posteriors) -> Vec<u8> {
    let num_obs = viterbi.path.len();
    let num_states = posteriors.gamma.cols();
    let mut buf = Vec::with_capacity(
        96 + 8
            * (num_obs
                + posteriors.gamma.as_slice().len()
                + posteriors.xi.len() * num_states * num_states),
    );
    buf.extend_from_slice(&MAGIC);
    put_u64(&mut buf, FORMAT_VERSION);
    put_u64(&mut buf, key.log);
    put_u64(&mut buf, key.config);
    put_u64(&mut buf, key.horizon as u64);
    put_u64(&mut buf, num_obs as u64);
    put_u64(&mut buf, num_states as u64);
    for &state in &viterbi.path {
        put_u64(&mut buf, state as u64);
    }
    put_f64(&mut buf, viterbi.log_likelihood);
    for &v in posteriors.gamma.as_slice() {
        put_f64(&mut buf, v);
    }
    put_u64(&mut buf, posteriors.xi.len() as u64);
    for pair in &posteriors.xi {
        for &v in pair.as_slice() {
            put_f64(&mut buf, v);
        }
    }
    put_f64(&mut buf, posteriors.log_likelihood);
    let checksum = fnv_checksum(&buf[MAGIC.len()..]);
    put_u64(&mut buf, checksum);
    buf
}

/// Serializes one kernel table: magic, version, config fingerprint, the
/// state count, the kernel count, each `(gap, A^Δ)` pair (floats as raw
/// bit patterns), and a trailing FNV-1a checksum over everything after
/// the magic — the same envelope discipline as the posterior entries.
fn encode_kernels(config: u64, kernels: &[(u32, TransitionMatrix)]) -> Vec<u8> {
    let num_states = kernels.first().map_or(0, |(_, matrix)| matrix.num_states());
    let mut buf = Vec::with_capacity(48 + kernels.len() * (8 + num_states * num_states * 8));
    buf.extend_from_slice(&KERNEL_MAGIC);
    put_u64(&mut buf, KERNEL_FORMAT_VERSION);
    put_u64(&mut buf, config);
    put_u64(&mut buf, num_states as u64);
    put_u64(&mut buf, kernels.len() as u64);
    for (gap, matrix) in kernels {
        assert_eq!(
            matrix.num_states(),
            num_states,
            "one table holds one spec's kernels"
        );
        put_u64(&mut buf, u64::from(*gap));
        for i in 0..num_states {
            for &p in matrix.row(i) {
                put_f64(&mut buf, p);
            }
        }
    }
    let checksum = fnv_checksum(&buf[KERNEL_MAGIC.len()..]);
    put_u64(&mut buf, checksum);
    buf
}

/// A decoded kernel table: the config fingerprint and state count it
/// was written for, plus the gap-sorted kernels themselves.
type KernelTable = (u64, usize, Vec<(u32, TransitionMatrix)>);

/// Parses one kernel table, validating magic, version, checksum, sanity
/// bounds, strictly increasing gaps, and (via the length check) the
/// declared shapes — before any large allocation. Row-stochasticity is
/// checked here too, so [`TransitionMatrix::from_rows`] can never panic
/// on disk garbage. Returns `(config, num_states, kernels)` or `None`.
fn decode_kernels(bytes: &[u8]) -> Option<KernelTable> {
    if bytes.len() < KERNEL_MAGIC.len() + 8 || bytes[..KERNEL_MAGIC.len()] != KERNEL_MAGIC {
        return None;
    }
    let payload = &bytes[KERNEL_MAGIC.len()..bytes.len() - 8];
    let stored_checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv_checksum(payload) != stored_checksum {
        return None;
    }
    let mut reader = Reader::new(payload);
    if reader.take_u64()? != KERNEL_FORMAT_VERSION {
        return None;
    }
    let config = reader.take_u64()?;
    let num_states = reader.take_u64()?;
    let count = reader.take_u64()?;
    if num_states == 0 || num_states > MAX_STATES || count == 0 || count > MAX_KERNELS {
        return None;
    }
    let (num_states, count) = (num_states as usize, count as usize);
    let cells = num_states.checked_mul(num_states)?;
    let expected_words = count.checked_mul(cells.checked_add(1)?)?;
    if payload.len() - reader.pos() != expected_words.checked_mul(8)? {
        return None;
    }
    let mut kernels = Vec::with_capacity(count);
    let mut last_gap: Option<u32> = None;
    for _ in 0..count {
        let gap = u32::try_from(reader.take_u64()?).ok()?;
        if last_gap.is_some_and(|last| gap <= last) {
            return None;
        }
        last_gap = Some(gap);
        let mut rows = Vec::with_capacity(num_states);
        for _ in 0..num_states {
            let mut row = Vec::with_capacity(num_states);
            let mut sum = 0.0_f64;
            for _ in 0..num_states {
                let p = reader.take_f64()?;
                if !(p.is_finite() && p >= 0.0) {
                    return None;
                }
                sum += p;
                row.push(p);
            }
            if (sum - 1.0).abs() >= 1e-6 {
                return None;
            }
            rows.push(row);
        }
        kernels.push((gap, TransitionMatrix::from_rows(rows)));
    }
    Some((config, num_states, kernels))
}

/// FNV-1a over a byte slice, word-at-a-time via the fingerprint mixer so
/// the store and the cache can never disagree on the hash function.
fn fnv_checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        fnv_mix(
            &mut hash,
            u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")),
        );
    }
    let remainder = chunks.remainder();
    if !remainder.is_empty() {
        let mut word = [0u8; 8];
        word[..remainder.len()].copy_from_slice(remainder);
        fnv_mix(&mut hash, u64::from_le_bytes(word));
    }
    hash
}

/// A bounds-checked little-endian reader; every take returns `None` past
/// the end instead of panicking, so arbitrary garbage decodes to a miss.
/// Shared with the corpus store ([`crate::store`]).
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn take_u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    pub(crate) fn take_f64(&mut self) -> Option<f64> {
        self.take_u64().map(f64::from_bits)
    }

    pub(crate) fn take_bytes(&mut self, count: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(count)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(bytes)
    }

    fn take_f64s(&mut self, count: usize) -> Option<Vec<f64>> {
        let end = self.pos.checked_add(count.checked_mul(8)?)?;
        if end > self.buf.len() {
            return None;
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(self.take_f64().expect("length checked above"));
        }
        Some(values)
    }
}

/// Parses one stored entry, validating magic, version, checksum, and every
/// declared length against the actual byte count *before* any large
/// allocation. Returns `None` on any inconsistency.
fn decode(bytes: &[u8]) -> Option<(PersistKey, ViterbiResult, Posteriors)> {
    if bytes.len() < MAGIC.len() + 8 || bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let payload = &bytes[MAGIC.len()..bytes.len() - 8];
    let stored_checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv_checksum(payload) != stored_checksum {
        return None;
    }
    let mut reader = Reader {
        buf: payload,
        pos: 0,
    };
    if reader.take_u64()? != FORMAT_VERSION {
        return None;
    }
    let key = PersistKey {
        log: reader.take_u64()?,
        config: reader.take_u64()?,
        horizon: usize::try_from(reader.take_u64()?).ok()?,
    };
    let num_obs = reader.take_u64()?;
    let num_states = reader.take_u64()?;
    if num_obs == 0 || num_obs > MAX_OBS || num_states == 0 || num_states > MAX_STATES {
        return None;
    }
    let (num_obs, num_states) = (num_obs as usize, num_states as usize);
    // The whole remaining layout is length-determined; verify it against
    // the payload size before allocating anything observation-sized.
    let xi_cells = num_states.checked_mul(num_states)?;
    let expected_words = num_obs // viterbi path
        .checked_add(1)? // viterbi log-likelihood
        .checked_add(num_obs.checked_mul(num_states)?)? // gamma
        .checked_add(1)? // xi count
        .checked_add((num_obs - 1).checked_mul(xi_cells)?)? // xi matrices
        .checked_add(1)?; // posterior log-likelihood
    if payload.len() - reader.pos != expected_words.checked_mul(8)? {
        return None;
    }
    let mut path = Vec::with_capacity(num_obs);
    for _ in 0..num_obs {
        let state = reader.take_u64()?;
        if state >= num_states as u64 {
            return None;
        }
        path.push(state as usize);
    }
    let viterbi = ViterbiResult {
        path,
        log_likelihood: reader.take_f64()?,
    };
    let gamma = StateMatrix::from_vec(num_obs, num_states, reader.take_f64s(num_obs * num_states)?);
    let xi_count = usize::try_from(reader.take_u64()?).ok()?;
    if xi_count != num_obs - 1 {
        return None;
    }
    let mut xi = Vec::with_capacity(xi_count);
    for _ in 0..xi_count {
        xi.push(StateMatrix::from_vec(
            num_states,
            num_states,
            reader.take_f64s(xi_cells)?,
        ));
    }
    let posteriors = Posteriors {
        gamma,
        xi,
        log_likelihood: reader.take_f64()?,
    };
    Some((key, viterbi, posteriors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds an entry directly from raw numbers (no inference), so the
    /// codec is testable over arbitrary bit patterns.
    fn entry(
        num_obs: usize,
        num_states: usize,
        values: &mut impl FnMut() -> f64,
    ) -> (PersistKey, ViterbiResult, Posteriors) {
        let key = PersistKey {
            log: 0xDEAD_BEEF_0BAD_F00D,
            config: 0x0123_4567_89AB_CDEF,
            horizon: num_obs,
        };
        let viterbi = ViterbiResult {
            path: (0..num_obs).map(|n| n % num_states).collect(),
            log_likelihood: values(),
        };
        let posteriors = Posteriors {
            gamma: StateMatrix::from_vec(
                num_obs,
                num_states,
                (0..num_obs * num_states).map(|_| values()).collect(),
            ),
            xi: (0..num_obs - 1)
                .map(|_| {
                    StateMatrix::from_vec(
                        num_states,
                        num_states,
                        (0..num_states * num_states).map(|_| values()).collect(),
                    )
                })
                .collect(),
            log_likelihood: values(),
        };
        (key, viterbi, posteriors)
    }

    proptest! {
        /// The codec must round-trip *bit patterns*, not values: NaNs,
        /// negative zero, subnormals, and infinities all come back
        /// byte-identical, and the re-encoded entry is the same byte
        /// stream.
        #[test]
        fn codec_round_trips_arbitrary_bit_patterns(
            seed in any::<u64>(),
            num_obs in 1usize..12,
            num_states in 1usize..6,
        ) {
            let mut state = seed;
            let mut values = move || {
                // xorshift64* over the full u64 space, reinterpreted as
                // f64 bits: covers NaN payloads, ±0, subnormals, ±inf.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                f64::from_bits(state.wrapping_mul(0x2545_F491_4F6C_DD1D))
            };
            let (key, viterbi, posteriors) = entry(num_obs, num_states, &mut values);
            let bytes = encode(&key, &viterbi, &posteriors);
            let (back_key, back_viterbi, back_posteriors) =
                decode(&bytes).expect("a just-encoded entry must decode");
            prop_assert_eq!(back_key, key);
            prop_assert_eq!(&back_viterbi.path, &viterbi.path);
            prop_assert_eq!(
                back_viterbi.log_likelihood.to_bits(),
                viterbi.log_likelihood.to_bits()
            );
            prop_assert_eq!(
                back_posteriors.log_likelihood.to_bits(),
                posteriors.log_likelihood.to_bits()
            );
            let bits = |m: &StateMatrix| -> Vec<u64> {
                m.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            prop_assert_eq!(bits(&back_posteriors.gamma), bits(&posteriors.gamma));
            prop_assert_eq!(back_posteriors.xi.len(), posteriors.xi.len());
            for (a, b) in back_posteriors.xi.iter().zip(&posteriors.xi) {
                prop_assert_eq!(bits(a), bits(b));
            }
            prop_assert_eq!(
                encode(&key, &back_viterbi, &back_posteriors),
                bytes,
                "re-encoding a decoded entry must be byte-identical"
            );
        }

        /// Any prefix truncation of a valid entry must decode to `None`
        /// (the checksum or a length check catches it) — never panic.
        #[test]
        fn truncated_entries_decode_to_none(
            cut in 0usize..200,
        ) {
            let mut counter = 0.0f64;
            let mut values = move || { counter += 1.5; counter };
            let (key, viterbi, posteriors) = entry(4, 3, &mut values);
            let bytes = encode(&key, &viterbi, &posteriors);
            let cut = cut.min(bytes.len().saturating_sub(1));
            prop_assert!(decode(&bytes[..cut]).is_none());
        }

        /// Flipping any single byte of a valid entry must decode to
        /// `None`: every byte is covered by the checksum (or is the
        /// checksum / magic itself).
        #[test]
        fn corrupted_entries_decode_to_none(position in 0usize..400, flip in 1u8..=255) {
            let mut counter = 0.0f64;
            let mut values = move || { counter += 0.25; counter };
            let (key, viterbi, posteriors) = entry(4, 3, &mut values);
            let mut bytes = encode(&key, &viterbi, &posteriors);
            let position = position % bytes.len();
            bytes[position] ^= flip;
            prop_assert!(decode(&bytes).is_none());
        }
    }

    #[test]
    fn garbage_and_empty_buffers_are_rejected() {
        assert!(decode(&[]).is_none());
        assert!(decode(b"not a store entry at all").is_none());
        let mut magic_only = MAGIC.to_vec();
        assert!(decode(&magic_only).is_none());
        magic_only.extend_from_slice(&[0u8; 64]);
        assert!(decode(&magic_only).is_none());
    }

    #[test]
    fn oversized_declared_shapes_are_rejected_before_allocating() {
        // A tiny buffer that *claims* billions of observations: decode
        // must bail on the sanity bound / length check, not try to
        // allocate.
        let key = PersistKey {
            log: 1,
            config: 2,
            horizon: 3,
        };
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_u64(&mut buf, FORMAT_VERSION);
        put_u64(&mut buf, key.log);
        put_u64(&mut buf, key.config);
        put_u64(&mut buf, key.horizon as u64);
        put_u64(&mut buf, u64::MAX); // num_obs
        put_u64(&mut buf, 4); // num_states
        let checksum = fnv_checksum(&buf[MAGIC.len()..]);
        put_u64(&mut buf, checksum);
        assert!(decode(&buf).is_none());
    }

    /// A small row-stochastic matrix with rows that sum to exactly 1.0 in
    /// floating point, so the codec's stochasticity re-check is exercised
    /// without tolerance games.
    fn stochastic(rows: Vec<Vec<f64>>) -> TransitionMatrix {
        TransitionMatrix::from_rows(rows)
    }

    fn kernel_table() -> Vec<(u32, TransitionMatrix)> {
        vec![
            (
                1,
                stochastic(vec![
                    vec![0.75, 0.25, 0.0],
                    vec![0.5, 0.25, 0.25],
                    vec![0.0, 0.0, 1.0],
                ]),
            ),
            (
                4,
                stochastic(vec![
                    vec![0.125, 0.375, 0.5],
                    vec![1.0, 0.0, 0.0],
                    vec![0.25, 0.25, 0.5],
                ]),
            ),
            (
                9,
                stochastic(vec![
                    vec![0.0, 1.0, 0.0],
                    vec![0.0, 0.0, 1.0],
                    vec![1.0, 0.0, 0.0],
                ]),
            ),
        ]
    }

    fn matrix_bits(matrix: &TransitionMatrix) -> Vec<u64> {
        (0..matrix.num_states())
            .flat_map(|i| matrix.row(i).iter().map(|p| p.to_bits()))
            .collect()
    }

    #[test]
    fn kernel_tables_round_trip_bit_exactly() {
        let dir = std::env::temp_dir().join("veritas_persist_kern_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let kernels = kernel_table();
        store.save_kernels(0xFEED_FACE, &kernels).unwrap();
        assert!(store.kernel_path_for(0xFEED_FACE).exists());

        let loaded = store
            .load_kernels(0xFEED_FACE, 3)
            .expect("a just-saved table must load");
        assert_eq!(loaded.len(), kernels.len());
        for ((gap, matrix), (back_gap, back_matrix)) in kernels.iter().zip(&loaded) {
            assert_eq!(gap, back_gap);
            assert_eq!(matrix_bits(matrix), matrix_bits(back_matrix));
        }
        // A different config fingerprint is a plain miss (distinct path).
        assert!(store.load_kernels(0xBAAD_CAFE, 3).is_none());
    }

    #[test]
    fn kernel_state_count_mismatch_is_a_healed_miss() {
        let dir = std::env::temp_dir().join("veritas_persist_kern_states");
        let _ = fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        store.save_kernels(7, &kernel_table()).unwrap();
        // Asking for a different state count (config/spec skew) misses and
        // deletes the stale table so the next write-through replaces it.
        assert!(store.load_kernels(7, 4).is_none());
        assert!(!store.kernel_path_for(7).exists());
    }

    #[test]
    fn corrupt_kernel_tables_are_misses_and_deleted() {
        let dir = std::env::temp_dir().join("veritas_persist_kern_corrupt");
        let _ = fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        store.save_kernels(11, &kernel_table()).unwrap();
        let path = store.kernel_path_for(11);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte: the checksum (or the stochasticity
        // re-check) must catch it, and the corrupt file must be removed.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_kernels(11, 3).is_none());
        assert!(!path.exists());
    }

    #[test]
    fn kernel_decode_rejects_unordered_gaps_and_bad_rows() {
        // Hand-build tables that pass the checksum but violate semantic
        // invariants: decode must return None, never panic (from_rows
        // would panic on a non-stochastic row).
        let build = |rows_per_kernel: &[(u64, Vec<f64>)], num_states: u64| {
            let mut buf = Vec::new();
            buf.extend_from_slice(&KERNEL_MAGIC);
            put_u64(&mut buf, KERNEL_FORMAT_VERSION);
            put_u64(&mut buf, 5); // config
            put_u64(&mut buf, num_states);
            put_u64(&mut buf, rows_per_kernel.len() as u64);
            for (gap, cells) in rows_per_kernel {
                put_u64(&mut buf, *gap);
                for &p in cells {
                    put_f64(&mut buf, p);
                }
            }
            let checksum = fnv_checksum(&buf[KERNEL_MAGIC.len()..]);
            put_u64(&mut buf, checksum);
            buf
        };
        let identity = vec![1.0, 0.0, 0.0, 1.0];
        // Gaps must be strictly increasing.
        let unordered = build(&[(3, identity.clone()), (3, identity.clone())], 2);
        assert!(decode_kernels(&unordered).is_none());
        // Rows must sum to 1 ...
        let not_stochastic = build(&[(1, vec![0.9, 0.2, 0.5, 0.5])], 2);
        assert!(decode_kernels(&not_stochastic).is_none());
        // ... with finite, non-negative entries.
        let negative = build(&[(1, vec![1.5, -0.5, 0.0, 1.0])], 2);
        assert!(decode_kernels(&negative).is_none());
        let nan = build(&[(1, vec![f64::NAN, 1.0, 0.0, 1.0])], 2);
        assert!(decode_kernels(&nan).is_none());
        // An empty table or an oversized declared count is rejected too.
        let empty = build(&[], 2);
        assert!(decode_kernels(&empty).is_none());
        // The valid counterpart decodes, confirming the builder itself is
        // not what the assertions above are catching.
        let valid = build(&[(3, identity)], 2);
        assert!(decode_kernels(&valid).is_some());
    }
}
