//! The persistent abduction store: warm-starting inference across
//! processes.
//!
//! Abduction is the expensive step of every causal query, and everything
//! downstream (interventional and counterfactual replay, aggregation)
//! only *reads* the posterior. Within one process the [`crate::AbductionCache`]
//! already computes each posterior once; this module extends that cache
//! with a **disk tier**, so a second `veritas run` over an unchanged
//! corpus performs zero EHMM inferences.
//!
//! # Key scheme
//!
//! Entries are content-addressed by the
//! `(log_fingerprint, config_fingerprint, horizon)` triple the in-memory
//! cache already computes ([`crate::log_fingerprint`] /
//! [`crate::config_fingerprint`]): the log fingerprint covers every
//! observed variable inference conditions on, the config fingerprint
//! covers every posterior-relevant configuration field, and the horizon is
//! the conditioned-on record prefix. Session *ids* are deliberately not
//! part of the identity — two sessions with byte-identical logs share one
//! stored posterior, and a renamed corpus file warm-starts unchanged.
//! Invalidation is therefore purely structural: any change to the log or
//! the posterior-relevant config changes the fingerprint and naturally
//! misses; no stamp files or TTLs exist.
//!
//! # File format
//!
//! One file per posterior, named `ab-v1-<log>-<config>-<horizon>.vpost`
//! under the store directory. The payload is a fixed little-endian binary
//! layout (magic, format version, the key triple, the Viterbi decode, the
//! smoothed posteriors, and a trailing FNV-1a checksum). Floats are stored
//! as raw IEEE-754 bit patterns, so a reloaded posterior is *bit-equal* to
//! the one saved — no text round-trip error.
//!
//! # Failure philosophy
//!
//! Writes are atomic (write to a temp file in the store directory, then
//! rename), so a crash mid-write can never leave a half-entry under a live
//! key. Loads are corruption-tolerant: a missing, truncated, garbage, or
//! shape-inconsistent file is a **miss**, never an error — the cache
//! simply re-infers and overwrites the entry via the same atomic path.
//! [`DiskStore::load_classified`] additionally distinguishes the corrupt
//! case and deletes the bad file, so the re-inference + write-through
//! *heals* the store; the cache tier counts these heals
//! ([`crate::CacheStats::healed`]). A [`crate::FaultPlan`] can be
//! attached ([`DiskStore::with_fault_plan`]) to inject deterministic
//! read/write failures for chaos testing.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use veritas::{Abduction, VeritasConfig};
use veritas_ehmm::{EhmmWorkspace, Posteriors, StateMatrix, ViterbiResult};
use veritas_player::SessionLog;

use crate::cache::{fnv_mix, FNV_OFFSET};
use crate::fault::{FaultPlan, FaultSite};

/// Version stamp embedded in every stored entry; bump on any layout
/// change so older binaries' files read as misses instead of garbage.
pub const FORMAT_VERSION: u64 = 1;

/// Leading magic of every store file.
const MAGIC: [u8; 8] = *b"VRTSPOST";

/// Decode-time sanity ceilings: a corrupted length field must fail fast
/// instead of driving a multi-gigabyte allocation. Real sessions have
/// hundreds of chunks and tens of capacity states.
const MAX_OBS: u64 = 1 << 24;
const MAX_STATES: u64 = 1 << 16;

/// The content-addressed identity of one stored posterior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersistKey {
    /// [`crate::log_fingerprint`] of the session log.
    pub log: u64,
    /// [`crate::config_fingerprint`] of the posterior-relevant config.
    pub config: u64,
    /// Number of chunk records the posterior conditions on.
    pub horizon: usize,
}

/// A directory of persisted abduction posteriors — the disk tier behind
/// [`crate::AbductionCache`].
///
/// The store is safe to share between concurrent processes pointed at the
/// same directory: writes are write-then-rename atomic, loads validate a
/// checksum plus every shape, and both sides of a racing double-write
/// produce identical bytes (the key is a content address).
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Distinguishes concurrent temp files within one process; the file
    /// name also carries the process id for cross-process uniqueness.
    nonce: AtomicU64,
    /// Chaos hook: injects [`FaultSite::DiskRead`] /
    /// [`FaultSite::DiskWrite`] failures when set.
    fault: Option<Arc<FaultPlan>>,
}

/// What [`DiskStore::load_classified`] found for a key — the distinction
/// the self-healing cache tier needs and plain [`DiskStore::load`]
/// collapses.
#[derive(Debug)]
pub enum DiskLoadOutcome {
    /// A complete, checksum-valid entry restored into an [`Abduction`].
    Restored(Box<Abduction>),
    /// No entry on disk (or it was unreadable): an ordinary cold miss.
    Missing,
    /// An entry existed but failed validation (bad magic, checksum, key,
    /// or shapes) and *this caller* deleted it — the first half of a
    /// heal; re-inference plus the write-through completes it. Reported
    /// at most once per corrupt file: racing readers that lose the
    /// unlink see [`DiskLoadOutcome::Missing`].
    Healed,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            nonce: AtomicU64::new(0),
            fault: None,
        })
    }

    /// Attaches a fault plan: reads and writes consult it and fail
    /// deterministically (a read fault degrades to a miss, a write fault
    /// to a skipped write-through).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path an entry for `key` lives at.
    pub fn path_for(&self, key: &PersistKey) -> PathBuf {
        self.dir.join(format!(
            "ab-v{FORMAT_VERSION}-{:016x}-{:016x}-{:x}.vpost",
            key.log, key.config, key.horizon
        ))
    }

    /// Persists one abduction under `key`, atomically: the payload is
    /// written to a temp file in the store directory and renamed into
    /// place, so readers only ever observe complete entries.
    pub fn save(&self, key: &PersistKey, abduction: &Abduction) -> std::io::Result<()> {
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::DiskWrite) {
                return Err(std::io::Error::other("injected disk write fault"));
            }
        }
        let bytes = encode(key, abduction.viterbi(), abduction.posteriors());
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{:016x}",
            std::process::id(),
            self.nonce.fetch_add(1, Ordering::Relaxed),
            key.log
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            fs::rename(&tmp, self.path_for(key))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Loads the entry for `key` and restores it into an [`Abduction`]
    /// over `log` (already the horizon-truncated view) under `config`,
    /// resolving transition kernels through the shared `workspace`.
    ///
    /// Any failure — no file, unreadable file, wrong magic or version, a
    /// checksum or key mismatch, or artifacts whose shapes do not fit the
    /// log — returns `None`: a disk problem is a cache miss, never an
    /// error.
    pub fn load(
        &self,
        key: &PersistKey,
        log: &SessionLog,
        config: &VeritasConfig,
        workspace: Arc<EhmmWorkspace>,
    ) -> Option<Abduction> {
        match self.load_classified(key, log, config, workspace) {
            DiskLoadOutcome::Restored(abduction) => Some(*abduction),
            DiskLoadOutcome::Missing | DiskLoadOutcome::Healed => None,
        }
    }

    /// [`DiskStore::load`], but distinguishing a cold miss from a corrupt
    /// entry — and *removing* the corrupt file so the caller's
    /// re-inference plus write-through heals the store in place.
    ///
    /// The unlink doubles as an atomic claim: when several readers race
    /// on the same corrupt file, exactly one observes
    /// [`DiskLoadOutcome::Healed`]; the rest read the path as missing (or
    /// lose the `remove_file` race) and report an ordinary miss.
    pub fn load_classified(
        &self,
        key: &PersistKey,
        log: &SessionLog,
        config: &VeritasConfig,
        workspace: Arc<EhmmWorkspace>,
    ) -> DiskLoadOutcome {
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::DiskRead) {
                // A simulated unreadable entry: degrade to a miss, never
                // an error (matching the real unreadable-file path).
                return DiskLoadOutcome::Missing;
            }
        }
        let path = self.path_for(key);
        let Ok(bytes) = fs::read(&path) else {
            return DiskLoadOutcome::Missing;
        };
        let restored = decode(&bytes)
            .filter(|(stored_key, _, _)| stored_key == key)
            .and_then(|(_, viterbi, posteriors)| {
                Abduction::from_parts(log, config, workspace, viterbi, posteriors).ok()
            });
        match restored {
            Some(abduction) => DiskLoadOutcome::Restored(Box::new(abduction)),
            // The file exists but is garbage (truncated, bit-flipped,
            // foreign, or shape-inconsistent). Delete it; whoever wins
            // the unlink owns the heal.
            None => match fs::remove_file(&path) {
                Ok(()) => DiskLoadOutcome::Healed,
                Err(_) => DiskLoadOutcome::Missing,
            },
        }
    }
}

/// Append helpers: everything is little-endian, floats as raw bit patterns
/// (the reload is bit-exact by construction). Shared with the corpus
/// store ([`crate::store`]) so the two binary formats can never disagree
/// on encoding primitives.
pub(crate) fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, value: f64) {
    put_u64(buf, value.to_bits());
}

/// Serializes one entry: magic, version, key, Viterbi decode, posteriors,
/// trailing FNV-1a checksum over everything after the magic.
fn encode(key: &PersistKey, viterbi: &ViterbiResult, posteriors: &Posteriors) -> Vec<u8> {
    let num_obs = viterbi.path.len();
    let num_states = posteriors.gamma.cols();
    let mut buf = Vec::with_capacity(
        96 + 8
            * (num_obs
                + posteriors.gamma.as_slice().len()
                + posteriors.xi.len() * num_states * num_states),
    );
    buf.extend_from_slice(&MAGIC);
    put_u64(&mut buf, FORMAT_VERSION);
    put_u64(&mut buf, key.log);
    put_u64(&mut buf, key.config);
    put_u64(&mut buf, key.horizon as u64);
    put_u64(&mut buf, num_obs as u64);
    put_u64(&mut buf, num_states as u64);
    for &state in &viterbi.path {
        put_u64(&mut buf, state as u64);
    }
    put_f64(&mut buf, viterbi.log_likelihood);
    for &v in posteriors.gamma.as_slice() {
        put_f64(&mut buf, v);
    }
    put_u64(&mut buf, posteriors.xi.len() as u64);
    for pair in &posteriors.xi {
        for &v in pair.as_slice() {
            put_f64(&mut buf, v);
        }
    }
    put_f64(&mut buf, posteriors.log_likelihood);
    let checksum = fnv_checksum(&buf[MAGIC.len()..]);
    put_u64(&mut buf, checksum);
    buf
}

/// FNV-1a over a byte slice, word-at-a-time via the fingerprint mixer so
/// the store and the cache can never disagree on the hash function.
fn fnv_checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        fnv_mix(
            &mut hash,
            u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")),
        );
    }
    let remainder = chunks.remainder();
    if !remainder.is_empty() {
        let mut word = [0u8; 8];
        word[..remainder.len()].copy_from_slice(remainder);
        fnv_mix(&mut hash, u64::from_le_bytes(word));
    }
    hash
}

/// A bounds-checked little-endian reader; every take returns `None` past
/// the end instead of panicking, so arbitrary garbage decodes to a miss.
/// Shared with the corpus store ([`crate::store`]).
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn take_u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    pub(crate) fn take_f64(&mut self) -> Option<f64> {
        self.take_u64().map(f64::from_bits)
    }

    pub(crate) fn take_bytes(&mut self, count: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(count)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(bytes)
    }

    fn take_f64s(&mut self, count: usize) -> Option<Vec<f64>> {
        let end = self.pos.checked_add(count.checked_mul(8)?)?;
        if end > self.buf.len() {
            return None;
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(self.take_f64().expect("length checked above"));
        }
        Some(values)
    }
}

/// Parses one stored entry, validating magic, version, checksum, and every
/// declared length against the actual byte count *before* any large
/// allocation. Returns `None` on any inconsistency.
fn decode(bytes: &[u8]) -> Option<(PersistKey, ViterbiResult, Posteriors)> {
    if bytes.len() < MAGIC.len() + 8 || bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let payload = &bytes[MAGIC.len()..bytes.len() - 8];
    let stored_checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv_checksum(payload) != stored_checksum {
        return None;
    }
    let mut reader = Reader {
        buf: payload,
        pos: 0,
    };
    if reader.take_u64()? != FORMAT_VERSION {
        return None;
    }
    let key = PersistKey {
        log: reader.take_u64()?,
        config: reader.take_u64()?,
        horizon: usize::try_from(reader.take_u64()?).ok()?,
    };
    let num_obs = reader.take_u64()?;
    let num_states = reader.take_u64()?;
    if num_obs == 0 || num_obs > MAX_OBS || num_states == 0 || num_states > MAX_STATES {
        return None;
    }
    let (num_obs, num_states) = (num_obs as usize, num_states as usize);
    // The whole remaining layout is length-determined; verify it against
    // the payload size before allocating anything observation-sized.
    let xi_cells = num_states.checked_mul(num_states)?;
    let expected_words = num_obs // viterbi path
        .checked_add(1)? // viterbi log-likelihood
        .checked_add(num_obs.checked_mul(num_states)?)? // gamma
        .checked_add(1)? // xi count
        .checked_add((num_obs - 1).checked_mul(xi_cells)?)? // xi matrices
        .checked_add(1)?; // posterior log-likelihood
    if payload.len() - reader.pos != expected_words.checked_mul(8)? {
        return None;
    }
    let mut path = Vec::with_capacity(num_obs);
    for _ in 0..num_obs {
        let state = reader.take_u64()?;
        if state >= num_states as u64 {
            return None;
        }
        path.push(state as usize);
    }
    let viterbi = ViterbiResult {
        path,
        log_likelihood: reader.take_f64()?,
    };
    let gamma = StateMatrix::from_vec(num_obs, num_states, reader.take_f64s(num_obs * num_states)?);
    let xi_count = usize::try_from(reader.take_u64()?).ok()?;
    if xi_count != num_obs - 1 {
        return None;
    }
    let mut xi = Vec::with_capacity(xi_count);
    for _ in 0..xi_count {
        xi.push(StateMatrix::from_vec(
            num_states,
            num_states,
            reader.take_f64s(xi_cells)?,
        ));
    }
    let posteriors = Posteriors {
        gamma,
        xi,
        log_likelihood: reader.take_f64()?,
    };
    Some((key, viterbi, posteriors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds an entry directly from raw numbers (no inference), so the
    /// codec is testable over arbitrary bit patterns.
    fn entry(
        num_obs: usize,
        num_states: usize,
        values: &mut impl FnMut() -> f64,
    ) -> (PersistKey, ViterbiResult, Posteriors) {
        let key = PersistKey {
            log: 0xDEAD_BEEF_0BAD_F00D,
            config: 0x0123_4567_89AB_CDEF,
            horizon: num_obs,
        };
        let viterbi = ViterbiResult {
            path: (0..num_obs).map(|n| n % num_states).collect(),
            log_likelihood: values(),
        };
        let posteriors = Posteriors {
            gamma: StateMatrix::from_vec(
                num_obs,
                num_states,
                (0..num_obs * num_states).map(|_| values()).collect(),
            ),
            xi: (0..num_obs - 1)
                .map(|_| {
                    StateMatrix::from_vec(
                        num_states,
                        num_states,
                        (0..num_states * num_states).map(|_| values()).collect(),
                    )
                })
                .collect(),
            log_likelihood: values(),
        };
        (key, viterbi, posteriors)
    }

    proptest! {
        /// The codec must round-trip *bit patterns*, not values: NaNs,
        /// negative zero, subnormals, and infinities all come back
        /// byte-identical, and the re-encoded entry is the same byte
        /// stream.
        #[test]
        fn codec_round_trips_arbitrary_bit_patterns(
            seed in any::<u64>(),
            num_obs in 1usize..12,
            num_states in 1usize..6,
        ) {
            let mut state = seed;
            let mut values = move || {
                // xorshift64* over the full u64 space, reinterpreted as
                // f64 bits: covers NaN payloads, ±0, subnormals, ±inf.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                f64::from_bits(state.wrapping_mul(0x2545_F491_4F6C_DD1D))
            };
            let (key, viterbi, posteriors) = entry(num_obs, num_states, &mut values);
            let bytes = encode(&key, &viterbi, &posteriors);
            let (back_key, back_viterbi, back_posteriors) =
                decode(&bytes).expect("a just-encoded entry must decode");
            prop_assert_eq!(back_key, key);
            prop_assert_eq!(&back_viterbi.path, &viterbi.path);
            prop_assert_eq!(
                back_viterbi.log_likelihood.to_bits(),
                viterbi.log_likelihood.to_bits()
            );
            prop_assert_eq!(
                back_posteriors.log_likelihood.to_bits(),
                posteriors.log_likelihood.to_bits()
            );
            let bits = |m: &StateMatrix| -> Vec<u64> {
                m.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            prop_assert_eq!(bits(&back_posteriors.gamma), bits(&posteriors.gamma));
            prop_assert_eq!(back_posteriors.xi.len(), posteriors.xi.len());
            for (a, b) in back_posteriors.xi.iter().zip(&posteriors.xi) {
                prop_assert_eq!(bits(a), bits(b));
            }
            prop_assert_eq!(
                encode(&key, &back_viterbi, &back_posteriors),
                bytes,
                "re-encoding a decoded entry must be byte-identical"
            );
        }

        /// Any prefix truncation of a valid entry must decode to `None`
        /// (the checksum or a length check catches it) — never panic.
        #[test]
        fn truncated_entries_decode_to_none(
            cut in 0usize..200,
        ) {
            let mut counter = 0.0f64;
            let mut values = move || { counter += 1.5; counter };
            let (key, viterbi, posteriors) = entry(4, 3, &mut values);
            let bytes = encode(&key, &viterbi, &posteriors);
            let cut = cut.min(bytes.len().saturating_sub(1));
            prop_assert!(decode(&bytes[..cut]).is_none());
        }

        /// Flipping any single byte of a valid entry must decode to
        /// `None`: every byte is covered by the checksum (or is the
        /// checksum / magic itself).
        #[test]
        fn corrupted_entries_decode_to_none(position in 0usize..400, flip in 1u8..=255) {
            let mut counter = 0.0f64;
            let mut values = move || { counter += 0.25; counter };
            let (key, viterbi, posteriors) = entry(4, 3, &mut values);
            let mut bytes = encode(&key, &viterbi, &posteriors);
            let position = position % bytes.len();
            bytes[position] ^= flip;
            prop_assert!(decode(&bytes).is_none());
        }
    }

    #[test]
    fn garbage_and_empty_buffers_are_rejected() {
        assert!(decode(&[]).is_none());
        assert!(decode(b"not a store entry at all").is_none());
        let mut magic_only = MAGIC.to_vec();
        assert!(decode(&magic_only).is_none());
        magic_only.extend_from_slice(&[0u8; 64]);
        assert!(decode(&magic_only).is_none());
    }

    #[test]
    fn oversized_declared_shapes_are_rejected_before_allocating() {
        // A tiny buffer that *claims* billions of observations: decode
        // must bail on the sanity bound / length check, not try to
        // allocate.
        let key = PersistKey {
            log: 1,
            config: 2,
            horizon: 3,
        };
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_u64(&mut buf, FORMAT_VERSION);
        put_u64(&mut buf, key.log);
        put_u64(&mut buf, key.config);
        put_u64(&mut buf, key.horizon as u64);
        put_u64(&mut buf, u64::MAX); // num_obs
        put_u64(&mut buf, 4); // num_states
        let checksum = fnv_checksum(&buf[MAGIC.len()..]);
        put_u64(&mut buf, checksum);
        assert!(decode(&buf).is_none());
    }
}
