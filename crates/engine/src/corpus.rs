//! Corpora: the sessions a query set runs over.
//!
//! A [`SessionCorpus`] pairs recorded [`SessionLog`]s with the deployed
//! setting they were recorded under (asset, player, ABR) — the raw material
//! every causal query conditions on. Corpora come from three places: loaded
//! from a directory of session-log JSON files (`veritas run --corpus DIR`),
//! synthesized end to end (hidden GTBW trace → player emulation) for
//! benchmarks, CI smoke runs, and examples, or served lazily from a
//! columnar `.vcorp` file ([`crate::LazyCorpus`]). The [`Corpus`] trait is
//! the seam that makes the three interchangeable to
//! [`crate::QueryPlan::compile`] and the executor. Ground-truth traces are
//! kept alongside synthetic sessions so counterfactual queries can report
//! the oracle outcome; loaded real logs have no truth and simply omit it.

use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use veritas_abr::abr_by_name;
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{run_session, PlayerConfig, SessionLog};
use veritas_trace::generators::{FccLike, TraceGenerator};
use veritas_trace::BandwidthTrace;

use crate::cache::{combine_fingerprints, log_fingerprint};
use crate::error::EngineError;
use crate::store::ColumnSet;

/// A session log borrowed from a corpus.
///
/// An eager corpus ([`SessionCorpus`]) hands out plain borrows; a lazy one
/// ([`crate::LazyCorpus`]) hands out shared ownership of a log decoded on
/// demand, which may be evicted from the resident set while still in use.
/// Both deref to [`SessionLog`], so call sites never branch.
#[derive(Debug, Clone)]
pub enum LogRef<'a> {
    /// A borrow from an eagerly loaded corpus.
    Borrowed(&'a SessionLog),
    /// Shared ownership of a lazily decoded log.
    Shared(Arc<SessionLog>),
}

impl Deref for LogRef<'_> {
    type Target = SessionLog;

    fn deref(&self) -> &SessionLog {
        match self {
            LogRef::Borrowed(log) => log,
            LogRef::Shared(log) => log,
        }
    }
}

/// What the engine needs from a corpus — the seam that makes JSON
/// directories, synthetic corpora, and `.vcorp` files interchangeable to
/// [`crate::QueryPlan::compile`] and [`crate::Engine::submit_shared`].
///
/// Everything except [`Corpus::log`] must be served from resident
/// metadata (ids, fingerprints, the deployed setting): plan compilation
/// and fingerprint checks never force a session load. Only the executor,
/// per work unit, calls `log` — which is where a lazy implementation
/// pays its decode, bounded by its resident set.
pub trait Corpus: Send + Sync {
    /// Number of sessions.
    fn len(&self) -> usize;

    /// Whether the corpus has no sessions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stable id of session `index` (cache key, record field).
    fn session_id(&self, index: usize) -> &str;

    /// The log of session `index`, loading it if necessary. Errors
    /// (e.g. a corrupt lazy block) become per-unit record errors, not
    /// run aborts.
    fn log(&self, index: usize) -> Result<LogRef<'_>, String>;

    /// The log of session `index` with *at least* the columns in
    /// `columns` populated — the seam query-aware column projection
    /// threads through ([`crate::QueryPlan::column_demand`] derives the
    /// set, the executor passes it here).
    ///
    /// # Contract
    ///
    /// * Every field backed by a selected column must be bit-identical
    ///   to what [`Corpus::log`] would return; unselected per-chunk
    ///   fields may come back zero-filled (callers must not read them —
    ///   the plan's demand derivation guarantees the engine never does).
    /// * Session-level scalars (ABR name, durations, chunk count) are
    ///   always populated, whatever the set.
    /// * [`Corpus::log_fingerprint`] is unaffected: projection is pure
    ///   I/O pruning and must never change fingerprints, cache keys, or
    ///   emitted records.
    ///
    /// The default delegates to the full [`Corpus::log`], which
    /// trivially satisfies the contract — eager corpora (JSON dirs,
    /// synthetic) already hold complete logs, so only lazily decoding
    /// implementations ([`crate::LazyCorpus`]) override this.
    fn log_projected(&self, index: usize, columns: ColumnSet) -> Result<LogRef<'_>, String> {
        let _ = columns;
        self.log(index)
    }

    /// The [`crate::log_fingerprint`] of session `index`, without
    /// necessarily loading the log (a `.vcorp` serves it from its index).
    fn log_fingerprint(&self, index: usize) -> u64;

    /// Ground-truth bandwidth trace of session `index`, when known
    /// (synthetic corpora only).
    fn truth(&self, index: usize) -> Option<&BandwidthTrace>;

    /// The video asset streamed in every session.
    fn asset(&self) -> &VideoAsset;

    /// The deployed player configuration.
    fn player(&self) -> &PlayerConfig;

    /// Name of the deployed ABR.
    fn deployed_abr(&self) -> &str;

    /// Fingerprint of the deployed setting (ABR, player, asset); see
    /// [`SessionCorpus::deployed_fingerprint`].
    fn deployed_fingerprint(&self) -> u64 {
        deployed_fingerprint_of(self.deployed_abr(), self.player(), self.asset())
    }

    /// Fingerprint of the corpus *content*: every session's log
    /// fingerprint chained with the deployed fingerprint. This is what
    /// binds a compiled [`crate::QueryPlan`] to the corpus it was
    /// compiled against.
    fn content_fingerprint(&self) -> u64 {
        combine_fingerprints(
            (0..self.len())
                .map(|index| self.log_fingerprint(index))
                .chain(std::iter::once(self.deployed_fingerprint())),
        )
    }

    /// Splits the corpus into at most `shards` contiguous, balanced
    /// session groups; see [`SessionCorpus::shard`].
    fn shard(&self, shards: usize) -> Vec<CorpusShard> {
        shard_indices(self.len(), shards)
    }

    /// Point-in-time residency and decode counters, for corpora that
    /// stream sessions through a bounded resident set. Eager corpora
    /// (everything resident, nothing decoded on demand) return `None`;
    /// [`crate::LazyCorpus`] reports its resident window, high-water
    /// marks, and cumulative decode volume — surfaced by
    /// `veritas bench --load-sessions` and the daemon's
    /// `{"metrics": true}` snapshot.
    fn residency(&self) -> Option<ResidencyStats> {
        None
    }

    /// Resolves a query's session selector against this corpus: `None`
    /// selects every session, `Some(indices)` is validated to be in
    /// range.
    fn select(&self, sessions: &Option<Vec<usize>>) -> Result<Vec<usize>, String> {
        match sessions {
            None => Ok((0..self.len()).collect()),
            Some(indices) => {
                for &index in indices {
                    if index >= self.len() {
                        return Err(format!(
                            "session index {index} out of range (corpus has {} sessions)",
                            self.len()
                        ));
                    }
                }
                Ok(indices.clone())
            }
        }
    }
}

/// Point-in-time residency counters of a lazily backed corpus (see
/// [`Corpus::residency`]): how much of it is decoded right now, the
/// high-water marks, and the cumulative decode volume — the numbers that
/// make column projection's I/O pruning observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ResidencyStats {
    /// Decoded logs currently resident.
    pub resident_sessions: usize,
    /// Projected bytes of the currently resident decoded logs.
    pub resident_bytes: usize,
    /// High-water mark of concurrently resident decoded logs.
    pub peak_resident_sessions: usize,
    /// High-water mark of resident projected log bytes.
    pub peak_resident_bytes: usize,
    /// Cumulative block bytes decoded (header + selected columns, summed
    /// over every decode).
    pub bytes_decoded: u64,
    /// Cumulative per-session columns decoded.
    pub columns_decoded: u64,
}

/// One session of a corpus: an id (stable across runs, used as the cache
/// key), the recorded log, and — when known — the hidden ground truth.
#[derive(Debug, Clone)]
pub struct CorpusSession {
    /// Stable identifier (file stem for loaded corpora, `session-N` for
    /// synthetic ones).
    pub id: String,
    /// The recorded session log.
    pub log: SessionLog,
    /// The ground-truth bandwidth trace, if available (synthetic corpora
    /// only); enables oracle outcomes in counterfactual results.
    pub truth: Option<BandwidthTrace>,
}

/// A corpus of sessions plus the deployed setting they share.
#[derive(Debug, Clone)]
pub struct SessionCorpus {
    /// The video asset streamed in every session (counterfactual replays
    /// re-encode it when a ladder change is queried).
    pub asset: VideoAsset,
    /// The deployed player configuration.
    pub player: PlayerConfig,
    /// Name of the deployed ABR.
    pub deployed_abr: String,
    /// The sessions.
    pub sessions: Vec<CorpusSession>,
}

/// One shard of a corpus: a view over a subset of its sessions, produced
/// by [`SessionCorpus::shard`]. Holds indices, not copies — the sessions
/// stay in the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusShard {
    /// This shard's position in `0..of`.
    pub index: usize,
    /// Total number of shards the corpus was split into.
    pub of: usize,
    /// Corpus session indices belonging to this shard (never empty).
    pub sessions: Vec<usize>,
}

/// Parameters for synthesizing a corpus.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of sessions.
    pub sessions: usize,
    /// FCC-like per-trace mean bandwidth range in Mbps.
    pub bandwidth_range_mbps: (f64, f64),
    /// Deployed ABR name.
    pub deployed_abr: String,
    /// Deployed player configuration.
    pub player: PlayerConfig,
    /// Video duration in seconds.
    pub video_duration_s: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            sessions: 4,
            bandwidth_range_mbps: (3.0, 8.0),
            deployed_abr: "mpc".to_string(),
            player: PlayerConfig::paper_default(),
            video_duration_s: 240.0,
            seed: 20_260_001,
        }
    }
}

impl SyntheticSpec {
    /// Builds the corpus: generates hidden traces, runs the deployed
    /// setting over each, and records the logs.
    ///
    /// # Panics
    ///
    /// Panics if `deployed_abr` is not a recognized algorithm name; the
    /// corpus-opening paths (CLI, service) use [`SyntheticSpec::try_build`]
    /// and answer a typed error instead.
    pub fn build(&self) -> SessionCorpus {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid synthetic spec: {e}"))
    }

    /// [`SyntheticSpec::build`], but an unrecognized `deployed_abr` is a
    /// typed [`EngineError::Query`] instead of a panic — the variant the
    /// user-facing corpus-open paths go through.
    pub fn try_build(&self) -> Result<SessionCorpus, EngineError> {
        // Validate before the (expensive) trace generation so a typo
        // fails instantly.
        if abr_by_name(&self.deployed_abr).is_none() {
            return Err(EngineError::Query(format!(
                "unknown deployed ABR `{}` (expected one of: mpc, robust_mpc, bba, bola, \
                 throughput, random:<seed>, fixed:<rung>)",
                self.deployed_abr
            )));
        }
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            self.video_duration_s,
            2.0,
            VbrParams::default(),
            self.seed,
        );
        let player = self.player;
        let generator = FccLike::new(self.bandwidth_range_mbps.0, self.bandwidth_range_mbps.1);
        // Traces must outlast the session even under poor conditions.
        let trace_duration = self.video_duration_s * 6.0;
        let sessions = (0..self.sessions as u64)
            .map(|i| {
                let truth = generator.generate(trace_duration, self.seed ^ (0x9E37 + i));
                let mut abr =
                    abr_by_name(&self.deployed_abr).expect("deployed ABR validated above");
                let log = run_session(&asset, abr.as_mut(), &truth, &player);
                CorpusSession {
                    id: format!("session-{i}"),
                    log,
                    truth: Some(truth),
                }
            })
            .collect();
        Ok(SessionCorpus {
            asset,
            player,
            deployed_abr: self.deployed_abr.clone(),
            sessions,
        })
    }
}

impl SessionCorpus {
    /// Synthesizes a corpus of `sessions` sessions from `seed` with the
    /// default deployed setting (MPC, 5 s buffer, 4-minute video).
    pub fn synthetic(sessions: usize, seed: u64) -> Self {
        SyntheticSpec {
            sessions,
            seed,
            ..SyntheticSpec::default()
        }
        .build()
    }

    /// Loads every `*.json` session log in `dir` (sorted by file name with
    /// numeric awareness, so `session-2.json` precedes `session-10.json`;
    /// the file stem becomes the session id).
    ///
    /// Counterfactual replays need a deployed setting to start from. The
    /// player's buffer capacity and the asset's chunk duration are restored
    /// from the first loaded log (logs record both); the video asset itself
    /// — encoding ladder, content seed, duration — is *not* recoverable
    /// from a log, so the paper's default asset regenerated at the logged
    /// chunk duration stands in for it. Ground truth is unknown for loaded
    /// logs, so oracle outcomes are omitted.
    pub fn from_dir(dir: &Path) -> Result<Self, EngineError> {
        let paths = sorted_json_paths(dir)?;
        let mut sessions = Vec::with_capacity(paths.len());
        for path in paths {
            let data = std::fs::read_to_string(&path)?;
            let log = SessionLog::from_json(&data)?;
            let id = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| format!("session-{}", sessions.len()));
            sessions.push(CorpusSession {
                id,
                log,
                truth: None,
            });
        }
        if sessions.is_empty() {
            return Err(EngineError::EmptyCorpus);
        }
        let first = &sessions[0].log;
        let spec = SyntheticSpec::default();
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            first.records.len() as f64 * first.chunk_duration_s,
            first.chunk_duration_s,
            VbrParams::default(),
            spec.seed,
        );
        Ok(SessionCorpus {
            asset,
            player: PlayerConfig::paper_default().with_buffer_capacity(first.buffer_capacity_s),
            deployed_abr: spec.deployed_abr,
            sessions,
        })
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the corpus has no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Fingerprints the deployed setting — the ABR name, player
    /// configuration (buffer, startup threshold, link), and the full
    /// video asset (ladder bitrates, per-chunk sizes and SSIMs).
    /// Combined with the per-session log fingerprints into the
    /// [`crate::QueryPlan`] corpus fingerprint: counterfactual scenarios
    /// are materialized *from* this setting at compile time, so a corpus
    /// with identical logs but a different deployed setting must not
    /// accept a stale plan.
    pub fn deployed_fingerprint(&self) -> u64 {
        deployed_fingerprint_of(&self.deployed_abr, &self.player, &self.asset)
    }

    /// Splits the corpus into at most `shards` contiguous, balanced
    /// session groups. Shard sizes differ by at most one session, no
    /// shard is empty (so `shards` is clamped to the session count, and
    /// an empty corpus yields no shards at all), and every session
    /// appears in exactly one shard.
    ///
    /// Shards are views (session index lists), so one corpus can be
    /// divided across engine instances or — as [`crate::Engine::submit`]
    /// does with [`crate::Engine::with_shards`] — across worker groups of
    /// a single streaming run.
    pub fn shard(&self, shards: usize) -> Vec<CorpusShard> {
        shard_indices(self.len(), shards)
    }

    /// Resolves a query's session selector against this corpus: `None`
    /// selects every session, `Some(indices)` is validated to be in range.
    pub fn select(&self, sessions: &Option<Vec<usize>>) -> Result<Vec<usize>, String> {
        Corpus::select(self, sessions)
    }
}

impl Corpus for SessionCorpus {
    fn len(&self) -> usize {
        self.sessions.len()
    }

    fn session_id(&self, index: usize) -> &str {
        &self.sessions[index].id
    }

    fn log(&self, index: usize) -> Result<LogRef<'_>, String> {
        Ok(LogRef::Borrowed(&self.sessions[index].log))
    }

    fn log_fingerprint(&self, index: usize) -> u64 {
        log_fingerprint(&self.sessions[index].log)
    }

    fn truth(&self, index: usize) -> Option<&BandwidthTrace> {
        self.sessions[index].truth.as_ref()
    }

    fn asset(&self) -> &VideoAsset {
        &self.asset
    }

    fn player(&self) -> &PlayerConfig {
        &self.player
    }

    fn deployed_abr(&self) -> &str {
        &self.deployed_abr
    }
}

/// Fingerprints a deployed setting — the ABR name, player configuration
/// (buffer, startup threshold, link), and the full video asset (ladder
/// bitrates, per-chunk sizes and SSIMs). The one implementation behind
/// [`Corpus::deployed_fingerprint`] for every corpus kind, so an eager
/// corpus and its ingested `.vcorp` can never hash the setting
/// differently.
pub(crate) fn deployed_fingerprint_of(abr: &str, player: &PlayerConfig, asset: &VideoAsset) -> u64 {
    use crate::cache::{fnv_mix, fnv_mix_f64, FNV_OFFSET};
    let mut hash = FNV_OFFSET;
    fnv_mix(&mut hash, abr.len() as u64);
    for byte in abr.bytes() {
        fnv_mix(&mut hash, u64::from(byte));
    }
    fnv_mix_f64(&mut hash, player.buffer_capacity_s);
    fnv_mix(&mut hash, player.startup_chunks as u64);
    fnv_mix_f64(&mut hash, player.link.one_way_delay_s);
    fnv_mix_f64(&mut hash, player.link.mss_bytes);
    fnv_mix_f64(&mut hash, player.link.queue_segments);
    fnv_mix(&mut hash, asset.num_chunks() as u64);
    fnv_mix(&mut hash, asset.num_qualities() as u64);
    fnv_mix_f64(&mut hash, asset.chunk_duration_s());
    for chunk in 0..asset.num_chunks() {
        for quality in 0..asset.num_qualities() {
            fnv_mix_f64(&mut hash, asset.size_bytes(chunk, quality));
            fnv_mix_f64(&mut hash, asset.ssim(chunk, quality));
        }
    }
    hash
}

/// Contiguous balanced sharding over `len` sessions — the one
/// implementation behind [`Corpus::shard`]. Shard sizes differ by at most
/// one, no shard is empty, every session appears exactly once.
fn shard_indices(len: usize, shards: usize) -> Vec<CorpusShard> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut start = 0;
    (0..shards)
        .map(|index| {
            let size = base + usize::from(index < extra);
            let shard = CorpusShard {
                index,
                of: shards,
                sessions: (start..start + size).collect(),
            };
            start += size;
            shard
        })
        .collect()
}

/// Lists every `*.json` file in `dir` in the numeric-aware name order
/// corpora load in — shared by [`SessionCorpus::from_dir`] and
/// [`crate::store::ingest_dir`], so a directory and its ingested `.vcorp`
/// always agree on session order (and therefore on the corpus content
/// fingerprint).
pub(crate) fn sorted_json_paths(dir: &Path) -> Result<Vec<PathBuf>, EngineError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    // Numeric-aware order, not lexicographic: plain `sort()` put
    // `session-10.json` before `session-2.json`, silently changing
    // the record order — and the corpus-content fingerprint — of any
    // corpus with ≥ 10 sessions relative to its synthetic twin.
    paths.sort_by(|a, b| {
        natural_cmp(
            &a.file_name().unwrap_or_default().to_string_lossy(),
            &b.file_name().unwrap_or_default().to_string_lossy(),
        )
        .then_with(|| a.cmp(b))
    });
    Ok(paths)
}

/// Compares two file names with numeric awareness: maximal digit runs
/// compare as integers (of any length — compared by stripped length, then
/// digits, so nothing overflows), everything else byte-wise. Equal-valued
/// runs with different zero padding (`02` vs `2`) fall back to the longer
/// (more padded) run first, keeping the order total and deterministic.
pub(crate) fn natural_cmp(a: &str, b: &str) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].is_ascii_digit() && b[j].is_ascii_digit() {
            let run = |s: &[u8], start: usize| {
                let mut end = start;
                while end < s.len() && s[end].is_ascii_digit() {
                    end += 1;
                }
                end
            };
            let (ai, bj) = (run(a, i), run(b, j));
            fn strip(digits: &[u8]) -> &[u8] {
                let lead = digits.iter().take_while(|&&d| d == b'0').count();
                &digits[lead.min(digits.len() - 1)..]
            }
            let (da, db) = (strip(&a[i..ai]), strip(&b[j..bj]));
            let by_value = da.len().cmp(&db.len()).then_with(|| da.cmp(db));
            if by_value != Ordering::Equal {
                return by_value;
            }
            // Same numeric value: more leading zeros sorts first.
            let by_padding = (bj - j).cmp(&(ai - i));
            if by_padding != Ordering::Equal {
                return by_padding;
            }
            (i, j) = (ai, bj);
        } else {
            let by_byte = a[i].cmp(&b[j]);
            if by_byte != Ordering::Equal {
                return by_byte;
            }
            (i, j) = (i + 1, j + 1);
        }
    }
    (a.len() - i).cmp(&(b.len() - j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_unknown_deployed_abr_is_a_typed_error_not_a_panic() {
        let spec = SyntheticSpec {
            sessions: 1,
            deployed_abr: "warp_drive".to_string(),
            ..SyntheticSpec::default()
        };
        let error = spec.try_build().expect_err("an unknown ABR must fail");
        assert_eq!(error.kind(), "invalid_query");
        let message = error.to_string();
        assert!(message.contains("warp_drive"), "message was: {message}");
        assert!(message.contains("mpc"), "message must list valid names");
        // Known names still build.
        let ok = SyntheticSpec {
            sessions: 1,
            deployed_abr: "bba".to_string(),
            video_duration_s: 12.0,
            ..SyntheticSpec::default()
        };
        assert_eq!(ok.try_build().expect("bba is valid").len(), 1);
    }

    #[test]
    fn natural_order_compares_digit_runs_numerically() {
        use std::cmp::Ordering;
        assert_eq!(natural_cmp("session-2", "session-10"), Ordering::Less);
        assert_eq!(natural_cmp("session-10", "session-2"), Ordering::Greater);
        assert_eq!(natural_cmp("session-2", "session-2"), Ordering::Equal);
        assert_eq!(natural_cmp("a-2-b-3", "a-2-b-12"), Ordering::Less);
        assert_eq!(natural_cmp("a10b1", "a10b2"), Ordering::Less);
        // Padding: equal values order deterministically (padded first).
        assert_eq!(natural_cmp("s-02", "s-2"), Ordering::Less);
        assert_eq!(natural_cmp("s-000", "s-0"), Ordering::Less);
        // Mixed digit/non-digit boundaries fall back to bytes.
        assert_eq!(natural_cmp("abc", "abd"), Ordering::Less);
        assert_eq!(natural_cmp("ab", "ab1"), Ordering::Less);
        assert_eq!(natural_cmp("1ab", "ab"), Ordering::Less);
        // Long runs beyond u64 still compare correctly (by length first).
        assert_eq!(
            natural_cmp("x99999999999999999999", "x100000000000000000000"),
            Ordering::Less
        );
        let mut names = vec![
            "session-10.json",
            "session-2.json",
            "session-1.json",
            "session-21.json",
            "session-3.json",
        ];
        names.sort_by(|x, y| natural_cmp(x, y));
        assert_eq!(
            names,
            vec![
                "session-1.json",
                "session-2.json",
                "session-3.json",
                "session-10.json",
                "session-21.json",
            ]
        );
    }

    #[test]
    fn from_dir_orders_sessions_numerically() {
        // A 12-session corpus written to disk must load in the same order
        // it was built — lexicographic sorting put session-10 before
        // session-2 and silently changed the corpus fingerprint.
        let corpus = SyntheticSpec {
            sessions: 12,
            video_duration_s: 60.0,
            ..SyntheticSpec::default()
        }
        .build();
        let dir = std::env::temp_dir().join("veritas_engine_natural_order_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for session in &corpus.sessions {
            std::fs::write(
                dir.join(format!("{}.json", session.id)),
                session.log.to_json(),
            )
            .unwrap();
        }
        let loaded = SessionCorpus::from_dir(&dir).unwrap();
        let ids: Vec<&str> = loaded.sessions.iter().map(|s| s.id.as_str()).collect();
        let expected: Vec<String> = (0..12).map(|i| format!("session-{i}")).collect();
        assert_eq!(ids, expected, "session-2 must order before session-10");
        for (loaded, built) in loaded.sessions.iter().zip(&corpus.sessions) {
            assert_eq!(loaded.log, built.log);
        }
    }

    #[test]
    fn synthetic_corpus_is_consistent_and_deterministic() {
        let spec = SyntheticSpec {
            sessions: 2,
            video_duration_s: 60.0,
            ..SyntheticSpec::default()
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.len(), 2);
        for session in &a.sessions {
            assert!(session.truth.is_some());
            session
                .log
                .check_invariants()
                .expect("synthetic logs must be consistent");
        }
        assert_eq!(a.sessions[0].log, b.sessions[0].log);
        assert_eq!(a.sessions[0].id, "session-0");
    }

    #[test]
    fn selectors_resolve_and_validate() {
        let corpus = SyntheticSpec {
            sessions: 3,
            video_duration_s: 60.0,
            ..SyntheticSpec::default()
        }
        .build();
        assert_eq!(corpus.select(&None).unwrap(), vec![0, 1, 2]);
        assert_eq!(corpus.select(&Some(vec![2, 0])).unwrap(), vec![2, 0]);
        assert!(corpus.select(&Some(vec![3])).is_err());
    }

    #[test]
    fn corpus_round_trips_through_a_directory() {
        let corpus = SyntheticSpec {
            sessions: 2,
            video_duration_s: 60.0,
            ..SyntheticSpec::default()
        }
        .build();
        let dir = std::env::temp_dir().join("veritas_engine_corpus_test");
        std::fs::create_dir_all(&dir).unwrap();
        for session in &corpus.sessions {
            std::fs::write(
                dir.join(format!("{}.json", session.id)),
                session.log.to_json(),
            )
            .unwrap();
        }
        let loaded = SessionCorpus::from_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.sessions[0].id, "session-0");
        assert_eq!(loaded.sessions[0].log, corpus.sessions[0].log);
        assert!(loaded.sessions[0].truth.is_none());
    }

    #[test]
    fn sharding_is_balanced_and_complete() {
        let corpus = SyntheticSpec {
            sessions: 5,
            video_duration_s: 60.0,
            ..SyntheticSpec::default()
        }
        .build();
        let shards = corpus.shard(2);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].sessions, vec![0, 1, 2]);
        assert_eq!(shards[1].sessions, vec![3, 4]);
        assert!(shards.iter().all(|s| s.of == 2));
        // More shards than sessions clamps; zero clamps to one.
        assert_eq!(corpus.shard(9).len(), 5);
        let single = corpus.shard(0);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].sessions, vec![0, 1, 2, 3, 4]);
        // Every session appears exactly once across shards.
        let mut all: Vec<usize> = corpus
            .shard(3)
            .into_iter()
            .flat_map(|s| s.sessions)
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // An empty corpus has no shards — never an empty shard.
        let empty = SessionCorpus {
            sessions: Vec::new(),
            ..corpus
        };
        assert!(empty.shard(4).is_empty());
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = std::env::temp_dir().join("veritas_engine_empty_corpus_test");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            SessionCorpus::from_dir(&dir),
            Err(EngineError::EmptyCorpus)
        ));
    }
}
