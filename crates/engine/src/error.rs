//! Engine-level errors.

use std::fmt;
use std::io;

use veritas::AbductionError;

/// Why an engine operation failed as a whole. Per-query failures do not
/// abort a run — they are reported in the per-query records — so these
/// cover corpus loading and query-file problems.
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem error while loading a corpus or writing a report.
    Io(io::Error),
    /// A query file or session log failed to parse.
    Json(serde_json::Error),
    /// The query set is inconsistent (duplicate ids, bad selectors, ...).
    Query(String),
    /// The corpus has no sessions to run over.
    EmptyCorpus,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "i/o error: {e}"),
            EngineError::Json(e) => write!(f, "json error: {e}"),
            EngineError::Query(reason) => write!(f, "invalid query set: {reason}"),
            EngineError::EmptyCorpus => write!(f, "corpus contains no sessions"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<serde_json::Error> for EngineError {
    fn from(e: serde_json::Error) -> Self {
        EngineError::Json(e)
    }
}

impl From<AbductionError> for EngineError {
    fn from(e: AbductionError) -> Self {
        EngineError::Query(e.to_string())
    }
}
