//! The one engine error type: every way a run, a build, or a service
//! request can fail as a whole, with a stable wire representation.
//!
//! Per-query failures do not abort a run — they are reported in the
//! per-query records — so these variants cover corpus loading, query-file
//! problems, engine construction, and the `veritasd` service boundary.
//!
//! Three derived views keep callers out of the string-matching business:
//!
//! * [`EngineError::kind`] — a stable machine-readable tag.
//! * [`EngineError::to_wire`] / [`EngineError::wire_json`] — the service's
//!   error envelope, `{"error": {"kind": ..., "detail": ...}}`.
//! * [`EngineError::exit_code`] — the process exit code the CLI binaries
//!   map each failure class to.

use std::fmt;
use std::io;

use serde::{Deserialize, Serialize};
use veritas::AbductionError;

use crate::store::VcorpError;

/// Why an engine operation failed as a whole.
///
/// The variants partition into failure classes (see
/// [`EngineError::exit_code`]): *bad input* (`Query`, `Config`, `Json`,
/// `Protocol`, `EmptyCorpus`, `CorpusMismatch`, `CorpusFormat`,
/// `Unauthorized`), *failed work* (`Abduction`, `UnitFailures`,
/// `CacheShortfall`), *environment* (`Io`), and *load shedding*
/// (`Overloaded`, `ConnectionsExhausted`, `Draining`).
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem error while loading a corpus, opening a cache
    /// directory, binding a listener, or writing a report.
    Io(io::Error),
    /// A query file or session log failed to parse.
    Json(serde_json::Error),
    /// A binary `.vcorp` corpus failed to open or decode: unsupported
    /// schema version, failed checksum or digest, truncation, ...
    /// (see [`crate::store::VcorpError`]).
    CorpusFormat(String),
    /// The query set is inconsistent (duplicate ids, bad selectors, ...)
    /// or cannot be compiled into a plan.
    Query(String),
    /// The engine was configured inconsistently (e.g. a persistent cache
    /// directory combined with caching disabled).
    Config(String),
    /// The corpus has no sessions to run over.
    EmptyCorpus,
    /// A compiled plan was submitted against a corpus other than the one
    /// it was compiled for (session count or content fingerprint differ).
    CorpusMismatch(String),
    /// EHMM inference failed in a way that aborts the whole operation
    /// (per-unit inference failures stay per-record).
    Abduction(AbductionError),
    /// Admission control refused the plan: `active` plans were already
    /// running against a bound of `bound`. The service maps this to its
    /// `429`-style shed response; callers should retry later.
    Overloaded {
        /// Plans running when admission was refused.
        active: usize,
        /// The configured admission bound.
        bound: usize,
    },
    /// The service refused a new *connection*: `active` connections were
    /// already open against a `--max-connections` bound of `bound`. Same
    /// `"overloaded"` wire kind as [`EngineError::Overloaded`] (both are
    /// retry-later shed responses), distinguishable by detail text.
    ConnectionsExhausted {
        /// Connections open when the accept was shed.
        active: usize,
        /// The configured connection bound.
        bound: usize,
    },
    /// A service request violated the wire protocol (not a JSON object,
    /// no recognized request field, conflicting request fields, ...).
    Protocol(String),
    /// The service is draining: a shutdown was requested, in-flight plans
    /// are finishing, and no new plans are admitted. A retry-later shed
    /// response, like [`EngineError::Overloaded`], but terminal for this
    /// process — clients should fail over rather than retry here.
    Draining,
    /// The service requires an auth token (`--auth-token`) and the
    /// request carried a missing or mismatched `auth` field. The
    /// connection is closed after this answer.
    Unauthorized,
    /// A run finished but observed fewer cache hits than the configured
    /// floor ([`crate::EngineBuilder::min_cache_hits`]) — the cache-reuse
    /// assertion CLI callers opt into.
    CacheShortfall {
        /// The configured minimum.
        expected: u64,
        /// Cache hits actually observed.
        observed: u64,
    },
    /// A run finished but some records carry per-unit errors and the
    /// caller did not opt into tolerating them (`--allow-errors`).
    UnitFailures {
        /// Records that failed.
        failed: usize,
        /// Total records produced.
        units: usize,
    },
}

impl EngineError {
    /// The stable machine-readable tag of this failure — the `kind` field
    /// of the wire envelope. These strings are part of the service
    /// protocol: existing values never change meaning.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::Io(_) => "io",
            EngineError::Json(_) => "json",
            EngineError::CorpusFormat(_) => "corpus_format",
            EngineError::Query(_) => "invalid_query",
            EngineError::Config(_) => "invalid_config",
            EngineError::EmptyCorpus => "empty_corpus",
            EngineError::CorpusMismatch(_) => "corpus_mismatch",
            EngineError::Abduction(_) => "abduction",
            EngineError::Overloaded { .. } | EngineError::ConnectionsExhausted { .. } => {
                "overloaded"
            }
            EngineError::Protocol(_) => "protocol",
            EngineError::Draining => "draining",
            EngineError::Unauthorized => "unauthorized",
            EngineError::CacheShortfall { .. } => "cache_shortfall",
            EngineError::UnitFailures { .. } => "unit_failures",
        }
    }

    /// The process exit code the CLI binaries map this failure to:
    ///
    /// | code | class | variants |
    /// |------|-------|----------|
    /// | 1 | failed work | `Abduction`, `UnitFailures`, `CacheShortfall` |
    /// | 2 | bad input | `Query`, `Config`, `Json`, `Protocol`, `EmptyCorpus`, `CorpusMismatch`, `CorpusFormat`, `Unauthorized` |
    /// | 3 | environment | `Io` |
    /// | 4 | load shed | `Overloaded`, `ConnectionsExhausted`, `Draining` |
    pub fn exit_code(&self) -> u8 {
        match self {
            EngineError::Abduction(_)
            | EngineError::UnitFailures { .. }
            | EngineError::CacheShortfall { .. } => 1,
            EngineError::Query(_)
            | EngineError::Config(_)
            | EngineError::Json(_)
            | EngineError::Protocol(_)
            | EngineError::EmptyCorpus
            | EngineError::CorpusMismatch(_)
            | EngineError::CorpusFormat(_)
            | EngineError::Unauthorized => 2,
            EngineError::Io(_) => 3,
            EngineError::Overloaded { .. }
            | EngineError::ConnectionsExhausted { .. }
            | EngineError::Draining => 4,
        }
    }

    /// This error as the typed wire representation.
    pub fn to_wire(&self) -> WireError {
        WireError {
            kind: self.kind().to_string(),
            detail: self.to_string(),
        }
    }

    /// This error as one service response line:
    /// `{"error": {"kind": ..., "detail": ...}}`.
    pub fn wire_json(&self) -> String {
        serde_json::to_string(&ErrorEnvelope {
            error: self.to_wire(),
        })
        .expect("error serialization cannot fail")
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "i/o error: {e}"),
            EngineError::Json(e) => write!(f, "json error: {e}"),
            EngineError::CorpusFormat(reason) => write!(f, "corpus format error: {reason}"),
            EngineError::Query(reason) => write!(f, "invalid query set: {reason}"),
            EngineError::Config(reason) => write!(f, "invalid engine configuration: {reason}"),
            EngineError::EmptyCorpus => write!(f, "corpus contains no sessions"),
            EngineError::CorpusMismatch(reason) => write!(f, "corpus mismatch: {reason}"),
            EngineError::Abduction(e) => write!(f, "abduction failed: {e}"),
            EngineError::Overloaded { active, bound } => write!(
                f,
                "overloaded: {active} plans already running (admission bound {bound}); retry later"
            ),
            EngineError::ConnectionsExhausted { active, bound } => write!(
                f,
                "overloaded: {active} connections already open (connection bound {bound}); retry later"
            ),
            EngineError::Protocol(reason) => write!(f, "protocol error: {reason}"),
            EngineError::Draining => write!(
                f,
                "draining: the service is shutting down; no new plans are admitted"
            ),
            EngineError::Unauthorized => {
                write!(f, "unauthorized: missing or invalid auth token")
            }
            EngineError::CacheShortfall { expected, observed } => write!(
                f,
                "expected at least {expected} cache hits, observed {observed}"
            ),
            EngineError::UnitFailures { failed, units } => write!(
                f,
                "{failed} of {units} records failed (pass --allow-errors to exit 0 anyway)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<serde_json::Error> for EngineError {
    fn from(e: serde_json::Error) -> Self {
        EngineError::Json(e)
    }
}

impl From<AbductionError> for EngineError {
    fn from(e: AbductionError) -> Self {
        EngineError::Abduction(e)
    }
}

impl From<VcorpError> for EngineError {
    fn from(e: VcorpError) -> Self {
        match e {
            // An i/o failure is an environment problem, not a format one.
            VcorpError::Io(io) => EngineError::Io(io),
            other => EngineError::CorpusFormat(other.to_string()),
        }
    }
}

/// The stable wire representation of an [`EngineError`] — what a service
/// client can parse without knowing the Rust enum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// The machine-readable tag ([`EngineError::kind`]).
    pub kind: String,
    /// The human-readable description ([`EngineError`]'s `Display`).
    pub detail: String,
}

/// The envelope an error travels in on the wire:
/// `{"error": {"kind": ..., "detail": ...}}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorEnvelope {
    /// The typed error payload.
    pub error: WireError,
}

impl ErrorEnvelope {
    /// Parses one response line as an error envelope, returning `None`
    /// for lines that are not error envelopes (records, summaries,
    /// metrics, or garbage).
    pub fn parse(line: &str) -> Option<WireError> {
        serde_json::from_str::<ErrorEnvelope>(line)
            .ok()
            .map(|envelope| envelope.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_maps_to_a_stable_kind_and_exit_code() {
        let samples: Vec<(EngineError, &str, u8)> = vec![
            (EngineError::Io(io::Error::other("disk on fire")), "io", 3),
            (EngineError::Query("dup id".into()), "invalid_query", 2),
            (
                EngineError::Config("cache dir without cache".into()),
                "invalid_config",
                2,
            ),
            (EngineError::EmptyCorpus, "empty_corpus", 2),
            (
                EngineError::CorpusMismatch("fingerprints differ".into()),
                "corpus_mismatch",
                2,
            ),
            (
                EngineError::Abduction(AbductionError::EmptySession),
                "abduction",
                1,
            ),
            (
                EngineError::Overloaded {
                    active: 4,
                    bound: 4,
                },
                "overloaded",
                4,
            ),
            (
                EngineError::ConnectionsExhausted {
                    active: 64,
                    bound: 64,
                },
                "overloaded",
                4,
            ),
            (
                EngineError::CorpusFormat("unsupported corpus format version 9".into()),
                "corpus_format",
                2,
            ),
            (EngineError::Protocol("not an object".into()), "protocol", 2),
            (EngineError::Draining, "draining", 4),
            (EngineError::Unauthorized, "unauthorized", 2),
            (
                EngineError::CacheShortfall {
                    expected: 3,
                    observed: 1,
                },
                "cache_shortfall",
                1,
            ),
            (
                EngineError::UnitFailures {
                    failed: 2,
                    units: 10,
                },
                "unit_failures",
                1,
            ),
        ];
        for (error, kind, code) in samples {
            assert_eq!(error.kind(), kind);
            assert_eq!(error.exit_code(), code);
        }
    }

    #[test]
    fn wire_envelope_round_trips() {
        let error = EngineError::Overloaded {
            active: 2,
            bound: 2,
        };
        let line = error.wire_json();
        assert!(line.starts_with(r#"{"error":{"#), "line was: {line}");
        let wire = ErrorEnvelope::parse(&line).expect("an envelope must parse");
        assert_eq!(wire.kind, "overloaded");
        assert!(wire.detail.contains("admission bound 2"));
        // Non-envelope lines are None, not errors.
        assert_eq!(ErrorEnvelope::parse(r#"{"query_id":"q"}"#), None);
        assert_eq!(ErrorEnvelope::parse("garbage"), None);
    }

    #[test]
    fn display_messages_keep_their_established_phrasing() {
        // The CLI tests and CI smoke greps match on these fragments.
        assert!(EngineError::UnitFailures {
            failed: 1,
            units: 2
        }
        .to_string()
        .contains("--allow-errors"));
        assert!(
            EngineError::CorpusMismatch("content fingerprints differ".into())
                .to_string()
                .contains("corpus mismatch")
        );
    }
}
