//! The `veritas` CLI: run declarative query sets through the engine.
//!
//! ```text
//! veritas run <queries.json> [--corpus DIR | --synthetic N] [--seed S]
//!             [--threads N] [--out FILE] [--summary FILE] [--no-cache]
//!             [--min-cache-hits N]
//! veritas bench [--sessions N] [--queries N] [--threads N] [--json FILE]
//! veritas example-queries
//! veritas validate <report.jsonl>
//! ```
//!
//! `run` executes a query file over a corpus (loaded from a directory of
//! session-log JSON files, or synthesized) and writes one JSON line per
//! (query, session) unit plus a summary. `bench` times the same synthetic
//! query set with and without the abduction cache and reports the speedup.
//! `example-queries` prints a starter query file. `validate` checks that a
//! report is well-formed JSONL.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use veritas_engine::{
    Engine, EngineReport, QueryKind, QueryRecord, QuerySet, SessionCorpus, SyntheticSpec,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("example-queries") => {
            println!("{}", QuerySet::example().to_json());
            Ok(())
        }
        Some("validate") => cmd_validate(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("veritas: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "veritas — batched causal queries over video streaming traces\n\n\
         USAGE:\n\
         \x20 veritas run <queries.json> [--corpus DIR | --synthetic N] [--seed S]\n\
         \x20                            [--threads N] [--out FILE] [--summary FILE]\n\
         \x20                            [--no-cache] [--min-cache-hits N]\n\
         \x20 veritas bench [--sessions N] [--queries N] [--threads N] [--json FILE]\n\
         \x20 veritas example-queries\n\
         \x20 veritas validate <report.jsonl>"
    );
}

/// One parsed `--flag value` option set.
struct Options {
    positional: Vec<String>,
    corpus: Option<PathBuf>,
    synthetic: Option<usize>,
    seed: u64,
    threads: Option<usize>,
    out: Option<PathBuf>,
    summary: Option<PathBuf>,
    no_cache: bool,
    min_cache_hits: Option<u64>,
    sessions: usize,
    queries: usize,
    json: Option<PathBuf>,
}

/// Parses `args`, accepting only the flags in `allowed` — a flag another
/// subcommand understands is rejected here, not silently ignored.
fn parse_options(args: &[String], allowed: &[&str]) -> Result<Options, String> {
    let mut options = Options {
        positional: Vec::new(),
        corpus: None,
        synthetic: None,
        seed: 7,
        threads: None,
        out: None,
        summary: None,
        no_cache: false,
        min_cache_hits: None,
        sessions: 4,
        queries: 10,
        json: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg.starts_with("--") && !allowed.contains(&arg.as_str()) {
            return Err(format!(
                "unknown flag `{arg}` for this subcommand (accepted: {})",
                if allowed.is_empty() {
                    "none".to_string()
                } else {
                    allowed.join(", ")
                }
            ));
        }
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--corpus" => options.corpus = Some(PathBuf::from(value_for("--corpus")?)),
            "--synthetic" => options.synthetic = Some(parse_num(&value_for("--synthetic")?)?),
            "--seed" => options.seed = parse_num(&value_for("--seed")?)?,
            "--threads" => options.threads = Some(parse_num(&value_for("--threads")?)?),
            "--out" => options.out = Some(PathBuf::from(value_for("--out")?)),
            "--summary" => options.summary = Some(PathBuf::from(value_for("--summary")?)),
            "--no-cache" => options.no_cache = true,
            "--min-cache-hits" => {
                options.min_cache_hits = Some(parse_num(&value_for("--min-cache-hits")?)?)
            }
            "--sessions" => options.sessions = parse_num(&value_for("--sessions")?)?,
            "--queries" => options.queries = parse_num(&value_for("--queries")?)?,
            "--json" => options.json = Some(PathBuf::from(value_for("--json")?)),
            positional => options.positional.push(positional.to_string()),
        }
    }
    Ok(options)
}

fn parse_num<T: std::str::FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("invalid numeric value `{text}`"))
}

fn load_corpus(options: &Options) -> Result<SessionCorpus, String> {
    match (&options.corpus, options.synthetic) {
        (Some(_), Some(_)) => Err("--corpus and --synthetic are mutually exclusive".to_string()),
        (Some(dir), None) => SessionCorpus::from_dir(dir).map_err(|e| e.to_string()),
        (None, n) => {
            let spec = SyntheticSpec {
                sessions: n.unwrap_or(4),
                seed: options.seed,
                ..SyntheticSpec::default()
            };
            eprintln!(
                "synthesizing corpus: {} sessions, seed {}",
                spec.sessions, spec.seed
            );
            Ok(spec.build())
        }
    }
}

fn build_engine(options: &Options) -> Engine {
    let mut engine = Engine::new();
    if let Some(threads) = options.threads {
        engine = engine.with_threads(threads);
    }
    if options.no_cache {
        engine = engine.without_cache();
    }
    engine
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let options = parse_options(
        args,
        &[
            "--corpus",
            "--synthetic",
            "--seed",
            "--threads",
            "--out",
            "--summary",
            "--no-cache",
            "--min-cache-hits",
        ],
    )?;
    let [query_path] = options.positional.as_slice() else {
        return Err("run expects exactly one <queries.json> argument".to_string());
    };
    if options.no_cache && options.min_cache_hits.is_some() {
        return Err("--min-cache-hits cannot be satisfied with --no-cache".to_string());
    }
    let json = std::fs::read_to_string(query_path)
        .map_err(|e| format!("cannot read {query_path}: {e}"))?;
    let set = QuerySet::from_json(&json).map_err(|e| format!("cannot parse {query_path}: {e}"))?;
    let corpus = load_corpus(&options)?;
    let engine = build_engine(&options);
    let report = engine.run(&corpus, &set).map_err(|e| e.to_string())?;

    match &options.out {
        Some(path) => std::fs::write(path, report.to_jsonl())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{}", report.to_jsonl()),
    }
    if let Some(path) = &options.summary {
        std::fs::write(path, report.summary_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    let s = &report.summary;
    eprintln!(
        "queryset={} units={} ok={} errors={} cache_hits={} cache_misses={} threads={} elapsed_ms={:.1}",
        s.queryset, s.units, s.ok, s.errors, s.cache_hits, s.cache_misses, s.threads, s.elapsed_ms
    );
    if s.errors > 0 {
        return Err(format!("{} of {} units failed", s.errors, s.units));
    }
    if let Some(min) = options.min_cache_hits {
        if s.cache_hits < min {
            return Err(format!(
                "expected at least {min} cache hits, observed {}",
                s.cache_hits
            ));
        }
    }
    Ok(())
}

/// Machine-readable summary of one `veritas bench` invocation — written
/// with `--json PATH` so engine-level wall-times land next to the
/// criterion medians (`BENCH_*.json`) and future PRs can track the perf
/// trajectory beyond kernel microbenchmarks.
#[derive(serde::Serialize)]
struct BenchJson {
    sessions: usize,
    queries: usize,
    threads: usize,
    units: usize,
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let options = parse_options(
        args,
        &["--sessions", "--queries", "--threads", "--seed", "--json"],
    )?;
    let spec = SyntheticSpec {
        sessions: options.sessions,
        video_duration_s: 120.0,
        seed: options.seed,
        ..SyntheticSpec::default()
    };
    eprintln!(
        "benchmarking: {} sessions x {} queries",
        spec.sessions, options.queries
    );
    let corpus = spec.build();
    let set = QuerySet::cache_stress(options.queries);
    let threads = options.threads.unwrap_or(1);

    let run = |engine: Engine| -> Result<(EngineReport, f64), String> {
        let started = Instant::now();
        let report = engine.run(&corpus, &set).map_err(|e| e.to_string())?;
        Ok((report, started.elapsed().as_secs_f64() * 1e3))
    };
    // Warm once to stabilize, then time uncached vs cached (fresh cache).
    let _ = run(Engine::new().with_threads(threads))?;
    let (uncached_report, uncached_ms) = run(Engine::new().with_threads(threads).without_cache())?;
    let (cached_report, cached_ms) = run(Engine::new().with_threads(threads))?;
    assert_eq!(uncached_report.summary.ok, cached_report.summary.ok);

    println!(
        "uncached: {uncached_ms:.1} ms   cached: {cached_ms:.1} ms   speedup: {:.2}x",
        uncached_ms / cached_ms.max(1e-9)
    );
    println!(
        "cached run: {} misses, {} hits over {} units",
        cached_report.summary.cache_misses,
        cached_report.summary.cache_hits,
        cached_report.summary.units
    );
    if let Some(path) = &options.json {
        let report = BenchJson {
            sessions: options.sessions,
            queries: options.queries,
            threads,
            units: cached_report.summary.units,
            uncached_ms,
            cached_ms,
            speedup: uncached_ms / cached_ms.max(1e-9),
            cache_hits: cached_report.summary.cache_hits,
            cache_misses: cached_report.summary.cache_misses,
        };
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialization: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote bench summary to {}", path.display());
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let options = parse_options(args, &[])?;
    let [path] = options.positional.as_slice() else {
        return Err("validate expects exactly one <report.jsonl> argument".to_string());
    };
    let data =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut ok = 0usize;
    let mut errors = 0usize;
    let mut kinds = [0usize; 3];
    for (number, line) in data.lines().enumerate() {
        let record: QueryRecord = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: invalid record: {e}", number + 1))?;
        if record.is_ok() {
            ok += 1;
        } else {
            errors += 1;
        }
        kinds[match record.kind {
            QueryKind::Abduction => 0,
            QueryKind::Interventional => 1,
            QueryKind::Counterfactual => 2,
        }] += 1;
    }
    if ok + errors == 0 {
        return Err(format!("{path} contains no records"));
    }
    println!(
        "{path}: {} records ({ok} ok, {errors} error) — {} abduction, {} interventional, {} counterfactual",
        ok + errors,
        kinds[0],
        kinds[1],
        kinds[2]
    );
    Ok(())
}
