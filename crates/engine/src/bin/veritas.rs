//! The `veritas` CLI: compile declarative query sets into execution plans
//! and run them through the streaming engine.
//!
//! ```text
//! veritas run <queries.json> [--corpus DIR|FILE.vcorp | --synthetic N]
//!             [--seed S] [--threads N] [--shards N] [--stream] [--out FILE]
//!             [--summary FILE] [--no-cache] [--cache-dir DIR]
//!             [--min-cache-hits N] [--allow-errors] [--fault-spec SPEC]
//!             [--retry N] [--workers N] [--worker-cmd CMD] [--mmap]
//! veritas worker [--addr HOST:PORT] ...              # veritasd under another name
//! veritas ingest <DIR> --out FILE.vcorp [--append]
//! veritas synth --out DIR [--sessions N] [--seed S]
//! veritas bench [--sessions N] [--queries N] [--threads N]
//!               [--cache-dir DIR] [--load-sessions N] [--json FILE]
//! veritas serve [--addr HOST:PORT] [--corpus DIR|FILE.vcorp | --synthetic N] ...
//! veritas example-queries
//! veritas validate <report.jsonl>
//! ```
//!
//! `run` compiles a query file into a [`QueryPlan`], executes it over a
//! corpus (a directory of session-log JSON files, a columnar binary
//! `.vcorp` corpus served lazily, or a synthesized one), and writes one
//! JSON line per record plus a summary. `ingest` converts a JSON session
//! directory into a `.vcorp` (`--append` merges new logs into an
//! existing file and compacts it); `synth` writes a synthetic corpus
//! *as* a JSON directory, the raw-material generator for ingest smoke
//! tests. By
//! default records are written in deterministic batch order once the run
//! completes; `--stream` writes each line the moment its unit finishes
//! (completion order), and `--shards N` partitions the corpus across N
//! worker groups. `--cache-dir DIR` attaches the persistent abduction
//! store: posteriors are written through to `DIR` and restored on later
//! runs, so a repeat run over an unchanged corpus performs zero EHMM
//! inferences (the summary's `disk_hits` counts the restorations). The
//! exit code is nonzero when any record carries an error, unless
//! `--allow-errors` is passed. `--fault-spec SPEC` (or the
//! `VERITAS_FAULT_SPEC` environment variable) attaches a seeded,
//! deterministic fault-injection plan (see
//! `veritas_engine::FaultPlan::parse`; e.g.
//! `seed=42,compute=0.1,disk_read=0.2`) so CI can chaos-test the real
//! binary, and `--retry N` enables per-unit supervision: failed units
//! are re-run up to N attempts with deterministic exponential backoff,
//! and sessions that exhaust their attempts are quarantined. `--mmap`
//! backs `.vcorp` column decodes with a read-only memory map instead of
//! positioned reads (ignored silently on platforms without `mmap`;
//! rejected for non-`.vcorp` corpora).
//!
//! `--workers N` switches `run` to distributed execution: the corpus is
//! partitioned into shards and farmed to N locally spawned worker
//! processes (`veritas worker`, or whatever `--worker-cmd` names) by a
//! `veritas_engine::dist::Coordinator`; the merged output is
//! byte-identical (after timing normalization) to the single-process
//! run, `--retry` bounds the coordinator's shard re-dispatches, and
//! `--fault-spec` is forwarded to the workers rather than armed
//! locally. `worker` is the daemon under another name — `veritas worker
//! --addr 127.0.0.1:0 --corpus ...` is exactly `veritasd` with the same
//! flags, which is how spawned pools work without a second binary on
//! `PATH`.
//!
//! `bench` times the same synthetic query set
//! with and without the abduction cache and reports the speedup — plus,
//! with `--cache-dir`, a disk-warm pass restored entirely from the
//! persistent store. `serve` runs the same engine as the `veritasd`
//! daemon (see `veritas_engine::service`). `example-queries` prints a
//! starter query file. `validate` checks that a report is well-formed
//! JSONL.
//!
//! Exit codes follow `EngineError::exit_code`: 1 for failed work (unit
//! failures, cache-floor shortfall), 2 for bad input (usage, query, or
//! config errors), 3 for environment (I/O) errors, 4 for load shedding.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use veritas::VeritasConfig;
use veritas_engine::{
    append_dir, columns, ingest_dir, service, worker_command, ColumnSet, Coordinator, Corpus,
    DistConfig, Engine, EngineError, EngineReport, FaultPlan, LazyCorpus, Query, QueryKind,
    QueryPlan, QueryRecord, QuerySet, RetryPolicy, RunSummary, SessionCorpus, SyntheticSpec,
};

/// What a subcommand can fail with: a usage problem (bad flags or
/// arguments — exit 2, like [`EngineError::Config`]) or a typed engine
/// failure, whose [`EngineError::exit_code`] becomes the process exit
/// code.
enum CliError {
    Usage(String),
    Engine(EngineError),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Engine(error) => error.exit_code(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "{message}"),
            CliError::Engine(error) => write!(f, "{error}"),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

impl From<EngineError> for CliError {
    fn from(error: EngineError) -> Self {
        CliError::Engine(error)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("serve") => service::run_cli(&args[1..]).map_err(CliError::Engine),
        // The worker alias keeps spawned pools single-binary: the dist
        // coordinator launches `current_exe() worker ...` and gets a full
        // veritasd without needing the daemon binary on PATH.
        Some("worker") => service::run_cli(&args[1..]).map_err(CliError::Engine),
        Some("example-queries") => {
            println!("{}", QuerySet::example().to_json());
            Ok(())
        }
        Some("validate") => cmd_validate(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown subcommand `{other}` (try --help)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("veritas: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}

fn print_usage() {
    println!(
        "veritas — batched causal queries over video streaming traces\n\n\
         USAGE:\n\
         \x20 veritas run <queries.json> [--corpus DIR|FILE.vcorp | --synthetic N]\n\
         \x20                            [--seed S] [--threads N] [--shards N] [--stream]\n\
         \x20                            [--out FILE] [--summary FILE] [--no-cache]\n\
         \x20                            [--cache-dir DIR] [--min-cache-hits N]\n\
         \x20                            [--allow-errors] [--fault-spec SPEC] [--retry N]\n\
         \x20                            [--workers N] [--worker-cmd CMD] [--mmap]\n\
         \x20 veritas worker [--addr HOST:PORT] ...   (veritasd under another name)\n\
         \x20 veritas ingest <DIR> --out FILE.vcorp [--append]\n\
         \x20 veritas synth --out DIR [--sessions N] [--seed S]\n\
         \x20 veritas bench [--sessions N] [--queries N] [--threads N]\n\
         \x20               [--cache-dir DIR] [--load-sessions N] [--json FILE]\n\
         \x20 veritas serve [--addr HOST:PORT] [--corpus DIR|FILE.vcorp | --synthetic N]\n\
         \x20               [--seed S] [--threads N] [--shards N] [--cache-dir DIR]\n\
         \x20               [--admission N] [--io-timeout SECS] [--max-connections N]\n\
         \x20               [--auth-token SECRET] [--fault-spec SPEC]\n\
         \x20 veritas example-queries\n\
         \x20 veritas validate <report.jsonl>"
    );
}

/// One parsed `--flag value` option set.
struct Options {
    positional: Vec<String>,
    corpus: Option<PathBuf>,
    synthetic: Option<usize>,
    seed: u64,
    threads: Option<usize>,
    shards: Option<usize>,
    stream: bool,
    out: Option<PathBuf>,
    summary: Option<PathBuf>,
    no_cache: bool,
    cache_dir: Option<PathBuf>,
    min_cache_hits: Option<u64>,
    allow_errors: bool,
    append: bool,
    sessions: usize,
    queries: usize,
    load_sessions: Option<usize>,
    json: Option<PathBuf>,
    fault_spec: Option<String>,
    retry: Option<u32>,
    workers: usize,
    worker_cmd: Option<String>,
    mmap: bool,
}

/// Parses `args`, accepting only the flags in `allowed` — a flag another
/// subcommand understands is rejected here, not silently ignored.
fn parse_options(args: &[String], allowed: &[&str]) -> Result<Options, String> {
    let mut options = Options {
        positional: Vec::new(),
        corpus: None,
        synthetic: None,
        seed: 7,
        threads: None,
        shards: None,
        stream: false,
        out: None,
        summary: None,
        no_cache: false,
        cache_dir: None,
        min_cache_hits: None,
        allow_errors: false,
        append: false,
        sessions: 4,
        queries: 10,
        load_sessions: None,
        json: None,
        fault_spec: None,
        retry: None,
        workers: 0,
        worker_cmd: None,
        mmap: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg.starts_with("--") && !allowed.contains(&arg.as_str()) {
            return Err(format!(
                "unknown flag `{arg}` for this subcommand (accepted: {})",
                if allowed.is_empty() {
                    "none".to_string()
                } else {
                    allowed.join(", ")
                }
            ));
        }
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--corpus" => options.corpus = Some(PathBuf::from(value_for("--corpus")?)),
            "--synthetic" => options.synthetic = Some(parse_num(&value_for("--synthetic")?)?),
            "--seed" => options.seed = parse_num(&value_for("--seed")?)?,
            "--threads" => options.threads = Some(parse_num(&value_for("--threads")?)?),
            "--shards" => options.shards = Some(parse_num(&value_for("--shards")?)?),
            "--stream" => options.stream = true,
            "--out" => options.out = Some(PathBuf::from(value_for("--out")?)),
            "--summary" => options.summary = Some(PathBuf::from(value_for("--summary")?)),
            "--no-cache" => options.no_cache = true,
            "--cache-dir" => options.cache_dir = Some(PathBuf::from(value_for("--cache-dir")?)),
            "--min-cache-hits" => {
                options.min_cache_hits = Some(parse_num(&value_for("--min-cache-hits")?)?)
            }
            "--allow-errors" => options.allow_errors = true,
            "--append" => options.append = true,
            "--sessions" => options.sessions = parse_num(&value_for("--sessions")?)?,
            "--queries" => options.queries = parse_num(&value_for("--queries")?)?,
            "--load-sessions" => {
                options.load_sessions = Some(parse_num(&value_for("--load-sessions")?)?)
            }
            "--json" => options.json = Some(PathBuf::from(value_for("--json")?)),
            "--fault-spec" => options.fault_spec = Some(value_for("--fault-spec")?),
            "--retry" => options.retry = Some(parse_num(&value_for("--retry")?)?),
            "--workers" => options.workers = parse_num(&value_for("--workers")?)?,
            "--worker-cmd" => options.worker_cmd = Some(value_for("--worker-cmd")?),
            "--mmap" => options.mmap = true,
            positional => options.positional.push(positional.to_string()),
        }
    }
    Ok(options)
}

fn parse_num<T: std::str::FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("invalid numeric value `{text}`"))
}

/// The fault spec string a run would arm: `--fault-spec` wins, else the
/// `VERITAS_FAULT_SPEC` environment variable, else none.
fn resolved_fault_spec(options: &Options) -> Option<String> {
    options.fault_spec.clone().or_else(|| {
        std::env::var("VERITAS_FAULT_SPEC")
            .ok()
            .filter(|value| !value.is_empty())
    })
}

/// Resolves the run's fault plan ([`resolved_fault_spec`]). A malformed
/// spec is a usage error (exit 2).
fn resolve_fault_plan(options: &Options) -> Result<Option<Arc<FaultPlan>>, CliError> {
    resolved_fault_spec(options)
        .map(|spec| {
            FaultPlan::parse(&spec)
                .map(Arc::new)
                .map_err(|e| CliError::Usage(format!("invalid fault spec `{spec}`: {e}")))
        })
        .transpose()
}

/// Loads the corpus a `--corpus`/`--synthetic` pair names. A `--corpus`
/// path ending in `.vcorp` opens the columnar binary store lazily
/// ([`LazyCorpus`]); any other path is a JSON session directory. A
/// fault plan, when present, arms the `.vcorp` block-decode injection
/// point.
fn load_corpus(
    options: &Options,
    fault: Option<&Arc<FaultPlan>>,
) -> Result<Arc<dyn Corpus>, CliError> {
    let is_vcorp = options
        .corpus
        .as_deref()
        .is_some_and(|path| path.extension().is_some_and(|ext| ext == "vcorp"));
    if options.mmap && !is_vcorp {
        return Err(CliError::Usage(
            "--mmap applies only to `.vcorp` corpora".to_string(),
        ));
    }
    match (&options.corpus, options.synthetic) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--corpus and --synthetic are mutually exclusive".to_string(),
        )),
        (Some(path), None) if path.extension().is_some_and(|ext| ext == "vcorp") => {
            let mut corpus = LazyCorpus::open(path).map_err(EngineError::from)?;
            if options.mmap {
                // Falls back to positioned reads silently where mapping is
                // unavailable; `is_mapped` reports what actually happened.
                corpus = corpus.with_mmap();
            }
            Ok(Arc::new(match fault {
                Some(plan) => corpus.with_fault_plan(Arc::clone(plan)),
                None => corpus,
            }))
        }
        (Some(dir), None) => Ok(Arc::new(SessionCorpus::from_dir(dir)?)),
        (None, n) => {
            let spec = SyntheticSpec {
                sessions: n.unwrap_or(4),
                seed: options.seed,
                ..SyntheticSpec::default()
            };
            eprintln!(
                "synthesizing corpus: {} sessions, seed {}",
                spec.sessions, spec.seed
            );
            Ok(Arc::new(spec.try_build()?))
        }
    }
}

/// Constructs the engine through [`Engine::builder`]; inconsistent flag
/// combinations (e.g. `--no-cache` with `--cache-dir`) surface as
/// [`EngineError::Config`] from the builder.
fn build_engine(options: &Options, fault: Option<&Arc<FaultPlan>>) -> Result<Engine, CliError> {
    let mut builder = Engine::builder();
    if let Some(threads) = options.threads {
        builder = builder.threads(threads);
    }
    if let Some(shards) = options.shards {
        builder = builder.shards(shards);
    }
    if options.no_cache {
        builder = builder.no_cache();
    }
    if let Some(dir) = &options.cache_dir {
        builder = builder.cache_dir(dir);
    }
    if let Some(min) = options.min_cache_hits {
        builder = builder.min_cache_hits(min);
    }
    if let Some(plan) = fault {
        builder = builder.fault_plan(Arc::clone(plan));
    }
    if let Some(attempts) = options.retry {
        builder = builder.retry_policy(RetryPolicy::with_max_attempts(attempts));
    }
    Ok(builder.build()?)
}

/// Where `run` writes its JSONL record lines.
fn record_writer(out: &Option<PathBuf>) -> Result<Box<dyn Write>, String> {
    match out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            Ok(Box::new(std::io::BufWriter::new(file)))
        }
        None => Ok(Box::new(std::io::stdout().lock())),
    }
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(
        args,
        &[
            "--corpus",
            "--synthetic",
            "--seed",
            "--threads",
            "--shards",
            "--stream",
            "--out",
            "--summary",
            "--no-cache",
            "--cache-dir",
            "--min-cache-hits",
            "--allow-errors",
            "--fault-spec",
            "--retry",
            "--workers",
            "--worker-cmd",
            "--mmap",
        ],
    )?;
    let [query_path] = options.positional.as_slice() else {
        return Err(CliError::Usage(
            "run expects exactly one <queries.json> argument".to_string(),
        ));
    };
    let json = std::fs::read_to_string(query_path)
        .map_err(|e| format!("cannot read {query_path}: {e}"))?;
    let set = QuerySet::from_json(&json).map_err(|e| format!("cannot parse {query_path}: {e}"))?;

    let summary = if options.workers > 0 {
        if options.no_cache {
            return Err(CliError::Usage(
                "--no-cache cannot be combined with --workers (spawned workers always run a \
                 cache; share one across them with --cache-dir)"
                    .to_string(),
            ));
        }
        run_distributed(&options, &set)?
    } else {
        // The builder validates the flag combinations (`--no-cache` vs
        // `--cache-dir` / `--min-cache-hits`) before any work happens. The
        // same fault plan is shared by the engine and the corpus, so every
        // injection point draws from one seeded decision stream.
        let fault = resolve_fault_plan(&options)?;
        let engine = build_engine(&options, fault.as_ref())?;
        // The CLI owns both values, so they are shared with the workers via
        // `submit_shared` instead of paying `submit`'s defensive deep copies.
        let corpus = load_corpus(&options, fault.as_ref())?;
        let plan = Arc::new(QueryPlan::compile(&set, corpus.as_ref())?);
        if options.stream {
            // Incremental consumption: each record is written (and flushed)
            // the moment its unit completes, in completion order.
            let mut handle = engine.submit_shared(Arc::clone(&corpus), Arc::clone(&plan))?;
            let mut writer = record_writer(&options.out)?;
            for record in &mut handle {
                let line =
                    serde_json::to_string(&record).expect("record serialization cannot fail");
                writeln!(writer, "{line}").map_err(|e| format!("cannot write record: {e}"))?;
                writer
                    .flush()
                    .map_err(|e| format!("cannot flush record: {e}"))?;
            }
            handle.into_summary()
        } else {
            let report = engine
                .submit_shared(Arc::clone(&corpus), Arc::clone(&plan))?
                .wait();
            let mut writer = record_writer(&options.out)?;
            write!(writer, "{}", report.to_jsonl())
                .and_then(|()| writer.flush())
                .map_err(|e| format!("cannot write records: {e}"))?;
            report.summary
        }
    };

    if let Some(path) = &options.summary {
        let json =
            serde_json::to_string_pretty(&summary).expect("summary serialization cannot fail");
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    report_summary(&summary);
    if summary.errors > 0 && !options.allow_errors {
        return Err(CliError::Engine(EngineError::UnitFailures {
            failed: summary.errors,
            units: summary.units,
        }));
    }
    // The `--min-cache-hits` floor, checked the same way for both
    // execution paths (`Engine::verify_summary` semantics): a shortfall
    // is the typed `CacheShortfall`, exit 1.
    if let Some(expected) = options.min_cache_hits {
        if summary.cache_hits < expected {
            return Err(CliError::Engine(EngineError::CacheShortfall {
                expected,
                observed: summary.cache_hits,
            }));
        }
    }
    Ok(())
}

/// The `--workers N` execution path: compile the plan locally, spawn a
/// local worker pool, farm the corpus shards to it through a
/// [`Coordinator`], and write the merged records exactly where the
/// in-process path writes them. `--retry` bounds the coordinator's
/// shard-level re-dispatches; `--shards` fixes the partition width
/// (default: one shard per worker).
fn run_distributed(options: &Options, set: &QuerySet) -> Result<RunSummary, CliError> {
    // The coordinator's corpus copy is only partitioned and key-mapped,
    // never decoded, so the fault plan is not armed locally — the spec
    // string is forwarded so the *workers* inject the faults.
    let corpus = load_corpus(options, None)?;
    let plan = Arc::new(QueryPlan::compile(set, corpus.as_ref())?);
    let mut forward: Vec<String> = Vec::new();
    match (&options.corpus, options.synthetic) {
        (Some(path), _) => forward.extend(["--corpus".to_string(), path.display().to_string()]),
        (None, n) => forward.extend([
            "--synthetic".to_string(),
            n.unwrap_or(4).to_string(),
            "--seed".to_string(),
            options.seed.to_string(),
        ]),
    }
    if let Some(dir) = &options.cache_dir {
        forward.extend(["--cache-dir".to_string(), dir.display().to_string()]);
    }
    if let Some(threads) = options.threads {
        forward.extend(["--threads".to_string(), threads.to_string()]);
    }
    if let Some(spec) = resolved_fault_spec(options) {
        forward.extend(["--fault-spec".to_string(), spec]);
    }
    let command = worker_command(options.worker_cmd.as_deref())?;
    let coordinator = Coordinator::spawn(
        options.workers,
        &command,
        &forward,
        DistConfig {
            shards: options.shards.unwrap_or(0),
            retry: options
                .retry
                .map(RetryPolicy::with_max_attempts)
                .unwrap_or_default(),
            ..DistConfig::default()
        },
    )?;
    let summary = if options.stream {
        let mut handle = coordinator.submit(Arc::clone(&corpus), Arc::clone(&plan))?;
        let mut writer = record_writer(&options.out)?;
        for record in &mut handle {
            let line = serde_json::to_string(&record).expect("record serialization cannot fail");
            writeln!(writer, "{line}").map_err(|e| format!("cannot write record: {e}"))?;
            writer
                .flush()
                .map_err(|e| format!("cannot flush record: {e}"))?;
        }
        handle.into_summary()
    } else {
        let report = coordinator
            .submit(Arc::clone(&corpus), Arc::clone(&plan))?
            .wait();
        let mut writer = record_writer(&options.out)?;
        write!(writer, "{}", report.to_jsonl())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot write records: {e}"))?;
        report.summary
    };
    Ok(summary)
}

/// `veritas ingest <DIR> --out FILE.vcorp [--append]`: convert a JSON
/// session directory into the columnar binary store (or merge new logs
/// into an existing one and compact it).
fn cmd_ingest(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args, &["--out", "--append"])?;
    let [dir] = options.positional.as_slice() else {
        return Err(CliError::Usage(
            "ingest expects exactly one <DIR> argument".to_string(),
        ));
    };
    let Some(out) = &options.out else {
        return Err(CliError::Usage(
            "ingest requires --out FILE.vcorp".to_string(),
        ));
    };
    let dir = Path::new(dir);
    let report = if options.append && out.exists() {
        append_dir(dir, out)?
    } else {
        ingest_dir(dir, out)?
    };
    println!(
        "ingested {} sessions into {} ({} bytes; {} carried over, {} replaced)",
        report.sessions,
        out.display(),
        report.bytes,
        report.carried_over,
        report.replaced
    );
    Ok(())
}

/// `veritas synth --out DIR [--sessions N] [--seed S]`: write a synthetic
/// corpus *as* a JSON session directory — raw material for `ingest` and
/// for smoke tests that need a directory-shaped corpus on disk.
fn cmd_synth(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args, &["--out", "--sessions", "--seed"])?;
    if !options.positional.is_empty() {
        return Err(CliError::Usage(
            "synth takes no positional arguments".to_string(),
        ));
    }
    let Some(out) = &options.out else {
        return Err(CliError::Usage("synth requires --out DIR".to_string()));
    };
    let spec = SyntheticSpec {
        sessions: options.sessions,
        seed: options.seed,
        ..SyntheticSpec::default()
    };
    let corpus = spec.try_build()?;
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    for session in &corpus.sessions {
        let path = out.join(format!("{}.json", session.id));
        std::fs::write(&path, session.log.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    println!(
        "wrote {} synthetic sessions (seed {}) to {}",
        corpus.len(),
        spec.seed,
        out.display()
    );
    Ok(())
}

fn report_summary(s: &RunSummary) {
    eprintln!(
        "queryset={} units={} ok={} errors={} cache_hits={} cache_misses={} disk_hits={} \
         retries={} quarantined={} shard_retries={} threads={} shards={} elapsed_ms={:.1}",
        s.queryset,
        s.units,
        s.ok,
        s.errors,
        s.cache_hits,
        s.cache_misses,
        s.disk_hits,
        s.retries,
        s.quarantined.len(),
        s.shard_retries,
        s.threads,
        s.shards,
        s.elapsed_ms
    );
}

/// Machine-readable summary of one `veritas bench` invocation — written
/// with `--json PATH` so engine-level wall-times land next to the
/// criterion medians (`BENCH_*.json`) and future PRs can track the perf
/// trajectory beyond kernel microbenchmarks.
#[derive(serde::Serialize)]
struct BenchJson {
    sessions: usize,
    queries: usize,
    threads: usize,
    units: usize,
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    /// Wall time of a run warm-started entirely from `--cache-dir`
    /// (`null` when no cache dir was benchmarked).
    disk_warm_ms: Option<f64>,
    /// Posteriors the disk-warm run restored from the store.
    disk_hits: Option<u64>,
    /// `--load-sessions`: JSON-directory open + first query, ms.
    json_load_ms: Option<f64>,
    /// `--load-sessions`: `.vcorp` open + first query, ms.
    vcorp_open_ms: Option<f64>,
    /// `json_load_ms / vcorp_open_ms`.
    load_speedup: Option<f64>,
    /// Peak concurrently resident decoded logs during a full lazy pass
    /// over the `.vcorp` corpus (bounded at 64 for the benchmark).
    peak_resident_sessions: Option<usize>,
    /// Peak resident decoded-log bytes during the full lazy pass.
    peak_resident_bytes: Option<usize>,
    /// Block bytes decoded by the full (every-column) lazy pass.
    bytes_decoded_full: Option<u64>,
    /// Block bytes decoded by the 3-column projected aggregate pass over
    /// the same corpus.
    bytes_decoded_projected: Option<u64>,
    /// Per-session columns the projected pass decoded.
    columns_decoded_projected: Option<u64>,
    /// `bytes_decoded_projected / bytes_decoded_full` — the I/O fraction
    /// column projection leaves of a full decode (the acceptance pin:
    /// <= 0.25 for a 3-of-18-column aggregate).
    projected_bytes_ratio: Option<f64>,
}

/// Result of the `--load-sessions` corpus-load benchmark.
struct LoadBench {
    json_load_ms: f64,
    vcorp_open_ms: f64,
    speedup: f64,
    peak_resident: usize,
    peak_resident_bytes: usize,
    bytes_decoded_full: u64,
    bytes_decoded_projected: u64,
    columns_decoded_projected: u64,
    projected_bytes_ratio: f64,
}

/// Times "open the corpus and answer one probe query" for a JSON session
/// directory (every log parsed before the first answer) versus its
/// ingested `.vcorp` (index-only open; the probe decodes exactly the one
/// session it touches), then runs a full decode pass with a 64-session
/// resident bound to show lazy streaming keeps memory flat.
fn bench_load(n: usize, seed: u64, threads: usize) -> Result<LoadBench, CliError> {
    let root = std::env::temp_dir().join(format!("veritas_bench_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = root.join("sessions");
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let spec = SyntheticSpec {
        sessions: n,
        video_duration_s: 120.0,
        seed,
        ..SyntheticSpec::default()
    };
    for session in &spec.try_build()?.sessions {
        let path = dir.join(format!("{}.json", session.id));
        std::fs::write(&path, session.log.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    let set = QuerySet::new("load-probe", VeritasConfig::paper_default().with_samples(2))
        .with_query(Query::abduction("probe").with_sessions(vec![0]));
    let probe = |corpus: Arc<dyn Corpus>| -> Result<(), CliError> {
        let engine = Engine::builder().threads(threads).no_cache().build()?;
        let plan = Arc::new(QueryPlan::compile(&set, corpus.as_ref())?);
        engine.submit_shared(corpus, plan)?.wait();
        Ok(())
    };

    let started = Instant::now();
    probe(Arc::new(SessionCorpus::from_dir(&dir)?))?;
    let json_load_ms = started.elapsed().as_secs_f64() * 1e3;

    // The one-off conversion is not part of either measured path.
    let vcorp = root.join("corpus.vcorp");
    ingest_dir(&dir, &vcorp)?;

    let started = Instant::now();
    probe(Arc::new(
        LazyCorpus::open(&vcorp).map_err(EngineError::from)?,
    ))?;
    let vcorp_open_ms = started.elapsed().as_secs_f64() * 1e3;

    // Full decode pass under a bounded resident set: every session is
    // decoded once, but at most 64 stay in memory.
    let bounded = LazyCorpus::open(&vcorp)
        .map_err(EngineError::from)?
        .with_max_resident(64);
    for index in 0..bounded.len() {
        bounded.load_log(index).map_err(EngineError::from)?;
    }
    let peak_resident = bounded.peak_resident();
    let peak_resident_bytes = bounded.peak_resident_bytes();
    let bytes_decoded_full = bounded.bytes_decoded();

    // Projected aggregate pass: the same corpus, decoding only the three
    // columns a quality/stall aggregate reads. The byte ratio against the
    // full pass is what column projection saves.
    let projected_cols = ColumnSet::of(&[columns::SSIM, columns::SIZE_BYTES, columns::REBUFFER_S]);
    let projected = LazyCorpus::open(&vcorp)
        .map_err(EngineError::from)?
        .with_max_resident(64);
    let mut aggregate = 0.0_f64;
    for index in 0..projected.len() {
        let log = projected
            .load_log_projected(index, projected_cols)
            .map_err(EngineError::from)?;
        for record in &log.records {
            aggregate += record.ssim + record.size_bytes + record.rebuffer_s;
        }
    }
    std::hint::black_box(aggregate);
    let bytes_decoded_projected = projected.bytes_decoded();
    let columns_decoded_projected = projected.columns_decoded();

    let _ = std::fs::remove_dir_all(&root);
    Ok(LoadBench {
        json_load_ms,
        vcorp_open_ms,
        speedup: json_load_ms / vcorp_open_ms.max(1e-9),
        peak_resident,
        peak_resident_bytes,
        bytes_decoded_full,
        bytes_decoded_projected,
        columns_decoded_projected,
        projected_bytes_ratio: bytes_decoded_projected as f64
            / (bytes_decoded_full as f64).max(1e-9),
    })
}

fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(
        args,
        &[
            "--sessions",
            "--queries",
            "--threads",
            "--seed",
            "--cache-dir",
            "--load-sessions",
            "--json",
        ],
    )?;
    let spec = SyntheticSpec {
        sessions: options.sessions,
        video_duration_s: 120.0,
        seed: options.seed,
        ..SyntheticSpec::default()
    };
    eprintln!(
        "benchmarking: {} sessions x {} queries",
        spec.sessions, options.queries
    );
    let corpus = spec.try_build()?;
    let set = QuerySet::cache_stress(options.queries);
    let threads = options.threads.unwrap_or(1);

    let run = |engine: Engine| -> Result<(EngineReport, f64), CliError> {
        let started = Instant::now();
        let report = engine.run(&corpus, &set)?;
        Ok((report, started.elapsed().as_secs_f64() * 1e3))
    };
    let cached = || Engine::builder().threads(threads).build();
    // Warm once to stabilize, then time uncached vs cached (fresh cache).
    let _ = run(cached()?)?;
    let (uncached_report, uncached_ms) =
        run(Engine::builder().threads(threads).no_cache().build()?)?;
    let (cached_report, cached_ms) = run(cached()?)?;
    assert_eq!(uncached_report.summary.ok, cached_report.summary.ok);

    println!(
        "uncached: {uncached_ms:.1} ms   cached: {cached_ms:.1} ms   speedup: {:.2}x",
        uncached_ms / cached_ms.max(1e-9)
    );
    println!(
        "cached run: {} misses, {} hits over {} units",
        cached_report.summary.cache_misses,
        cached_report.summary.cache_hits,
        cached_report.summary.units
    );

    // With a cache dir: populate the persistent store, then time a fresh
    // engine whose every posterior is restored from disk — the repeat-run
    // production profile.
    let disk_warm = match &options.cache_dir {
        Some(dir) => {
            let with_store = || Engine::builder().threads(threads).cache_dir(dir).build();
            let _ = run(with_store()?)?;
            let (warm_report, warm_ms) = run(with_store()?)?;
            if warm_report.summary.cache_misses > 0 {
                return Err(CliError::Usage(format!(
                    "disk-warm run still inferred {} posteriors — the store at {} is not \
                     serving them",
                    warm_report.summary.cache_misses,
                    dir.display()
                )));
            }
            println!(
                "disk-warm: {warm_ms:.1} ms   ({} posteriors restored from {}, 0 inferred)",
                warm_report.summary.disk_hits,
                dir.display()
            );
            Some((warm_ms, warm_report.summary.disk_hits))
        }
        None => None,
    };

    // `--load-sessions N`: corpus-load comparison over a freshly
    // synthesized N-session JSON directory and its ingested `.vcorp`.
    let load = match options.load_sessions {
        Some(n) => {
            let load = bench_load(n, options.seed, threads)?;
            println!(
                "corpus load ({n} sessions): json {:.1} ms   vcorp {:.1} ms   speedup {:.1}x   \
                 peak resident {} ({} bytes)",
                load.json_load_ms,
                load.vcorp_open_ms,
                load.speedup,
                load.peak_resident,
                load.peak_resident_bytes
            );
            println!(
                "projection (3/{} columns): {} of {} block bytes decoded ({:.1}%), \
                 {} columns",
                ColumnSet::COUNT,
                load.bytes_decoded_projected,
                load.bytes_decoded_full,
                load.projected_bytes_ratio * 100.0,
                load.columns_decoded_projected
            );
            Some(load)
        }
        None => None,
    };

    if let Some(path) = &options.json {
        let report = BenchJson {
            sessions: options.sessions,
            queries: options.queries,
            threads,
            units: cached_report.summary.units,
            uncached_ms,
            cached_ms,
            speedup: uncached_ms / cached_ms.max(1e-9),
            cache_hits: cached_report.summary.cache_hits,
            cache_misses: cached_report.summary.cache_misses,
            disk_warm_ms: disk_warm.map(|(ms, _)| ms),
            disk_hits: disk_warm.map(|(_, hits)| hits),
            json_load_ms: load.as_ref().map(|l| l.json_load_ms),
            vcorp_open_ms: load.as_ref().map(|l| l.vcorp_open_ms),
            load_speedup: load.as_ref().map(|l| l.speedup),
            peak_resident_sessions: load.as_ref().map(|l| l.peak_resident),
            peak_resident_bytes: load.as_ref().map(|l| l.peak_resident_bytes),
            bytes_decoded_full: load.as_ref().map(|l| l.bytes_decoded_full),
            bytes_decoded_projected: load.as_ref().map(|l| l.bytes_decoded_projected),
            columns_decoded_projected: load.as_ref().map(|l| l.columns_decoded_projected),
            projected_bytes_ratio: load.as_ref().map(|l| l.projected_bytes_ratio),
        };
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialization: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote bench summary to {}", path.display());
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args, &[])?;
    let [path] = options.positional.as_slice() else {
        return Err(CliError::Usage(
            "validate expects exactly one <report.jsonl> argument".to_string(),
        ));
    };
    let data =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut ok = 0usize;
    let mut errors = 0usize;
    let mut kinds = [0usize; 5];
    for (number, line) in data.lines().enumerate() {
        let record: QueryRecord = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: invalid record: {e}", number + 1))?;
        if record.is_ok() {
            ok += 1;
        } else {
            errors += 1;
        }
        kinds[match record.kind {
            QueryKind::Abduction => 0,
            QueryKind::Interventional => 1,
            QueryKind::Counterfactual => 2,
            QueryKind::Sweep => 3,
            QueryKind::Aggregate => 4,
        }] += 1;
    }
    if ok + errors == 0 {
        return Err(CliError::Usage(format!("{path} contains no records")));
    }
    println!(
        "{path}: {} records ({ok} ok, {errors} error) — {} abduction, {} interventional, \
         {} counterfactual, {} sweep, {} aggregate",
        ok + errors,
        kinds[0],
        kinds[1],
        kinds[2],
        kinds[3],
        kinds[4]
    );
    Ok(())
}
