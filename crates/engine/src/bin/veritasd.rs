//! `veritasd` — the Veritas causal-query engine as a long-lived daemon.
//!
//! Binds a TCP listener, loads one resident corpus, warms one shared
//! abduction cache, and answers newline-delimited JSON query requests
//! until killed. See the `veritas_engine::service` module for the wire
//! protocol and the metrics snapshot format.
//!
//! ```text
//! veritasd [--addr HOST:PORT] [--corpus DIR|FILE.vcorp | --synthetic N]
//!          [--seed S] [--threads N] [--shards N] [--cache-dir DIR]
//!          [--admission N] [--io-timeout SECS] [--max-connections N]
//! ```
//!
//! On startup the daemon prints `veritasd: listening on <addr>` to
//! stdout — with `--addr 127.0.0.1:0` this line is how callers learn the
//! ephemeral port. Exit codes follow `EngineError::exit_code`.

use std::process::ExitCode;

use veritas_engine::service;

const USAGE: &str = "veritasd - serve Veritas causal queries from a resident engine

USAGE:
    veritasd [--addr HOST:PORT] [--corpus DIR|FILE.vcorp | --synthetic N]
             [--seed S] [--threads N] [--shards N] [--cache-dir DIR]
             [--admission N] [--io-timeout SECS] [--max-connections N]

OPTIONS:
    --addr HOST:PORT     Listen address (default 127.0.0.1:4617; port 0 = ephemeral)
    --corpus PATH        Serve a directory of per-session JSON logs, or a
                         columnar binary `.vcorp` corpus (lazy-loaded; see
                         `veritas ingest`)
    --synthetic N        Serve an N-session synthetic corpus (default: 4 sessions)
    --seed S             Synthetic corpus seed (default 7)
    --threads N          Worker threads per plan (default: available cores)
    --shards N           Corpus shards per plan (default 1)
    --cache-dir DIR      Persistent abduction store (warm restarts)
    --admission N        Max concurrent plans before shedding (default 4)
    --io-timeout SECS    Per-connection read/write deadline (default 30; 0 = none)
    --max-connections N  Max open connections before shedding accepts with a
                         typed \"overloaded\" error (default 0 = unbounded)

PROTOCOL (one JSON object per line, responses are JSON lines too):
    {\"query\": <QuerySet>, \"stream\": bool?}  -> QueryRecord lines, then {\"summary\": ...}
    {\"metrics\": true}                        -> {\"metrics\": ...}
    any failure                              -> {\"error\": {\"kind\": ..., \"detail\": ...}}";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match service::run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("veritasd: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}
