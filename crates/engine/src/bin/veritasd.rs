//! `veritasd` — the Veritas causal-query engine as a long-lived daemon.
//!
//! Binds a TCP listener, loads one resident corpus, warms one shared
//! abduction cache, and answers newline-delimited JSON query requests
//! until killed. See the `veritas_engine::service` module for the wire
//! protocol and the metrics snapshot format.
//!
//! ```text
//! veritasd [--addr HOST:PORT] [--corpus DIR|FILE.vcorp | --synthetic N]
//!          [--seed S] [--threads N] [--shards N] [--cache-dir DIR]
//!          [--admission N] [--io-timeout SECS] [--max-connections N]
//!          [--auth-token SECRET] [--fault-spec SPEC]
//!          [--workers N] [--worker-cmd CMD]
//! ```
//!
//! On startup the daemon prints `veritasd: listening on <addr>` to
//! stdout — with `--addr 127.0.0.1:0` this line is how callers learn the
//! ephemeral port. Exit codes follow `EngineError::exit_code`.

use std::process::ExitCode;

use veritas_engine::service;

const USAGE: &str = "veritasd - serve Veritas causal queries from a resident engine

USAGE:
    veritasd [--addr HOST:PORT] [--corpus DIR|FILE.vcorp | --synthetic N]
             [--seed S] [--threads N] [--shards N] [--cache-dir DIR]
             [--admission N] [--io-timeout SECS] [--max-connections N]
             [--auth-token SECRET] [--fault-spec SPEC]
             [--workers N] [--worker-cmd CMD]

OPTIONS:
    --addr HOST:PORT     Listen address (default 127.0.0.1:4617; port 0 = ephemeral)
    --corpus PATH        Serve a directory of per-session JSON logs, or a
                         columnar binary `.vcorp` corpus (lazy-loaded; see
                         `veritas ingest`)
    --synthetic N        Serve an N-session synthetic corpus (default: 4 sessions)
    --seed S             Synthetic corpus seed (default 7)
    --threads N          Worker threads per plan (default: available cores)
    --shards N           Corpus shards per plan (default 1)
    --cache-dir DIR      Persistent abduction store (warm restarts)
    --admission N        Max concurrent plans before shedding (default 4)
    --io-timeout SECS    Per-connection read/write deadline (default 30; 0 = none)
    --max-connections N  Max open connections before shedding accepts with a
                         typed \"overloaded\" error (default 0 = unbounded)
    --auth-token SECRET  Require every request line to carry {\"auth\": SECRET};
                         a mismatch is answered with a typed \"unauthorized\"
                         envelope and the connection is closed
    --fault-spec SPEC    Seeded deterministic fault injection for chaos tests,
                         e.g. seed=42,compute=0.1,socket=0.05 (sites: disk_read,
                         disk_write, decode, compute, panic, socket)
    --workers N          Distributed front end: spawn N local worker daemons
                         and farm each plan's corpus shards to them (deterministic
                         merge; a dead worker costs one shard re-dispatch). The
                         workers inherit this daemon's corpus source, cache dir,
                         thread count, and fault spec
    --worker-cmd CMD     Launch workers with CMD (whitespace-split) instead of
                         re-invoking this executable

PROTOCOL (one JSON object per line, responses are JSON lines too):
    {\"query\": <QuerySet>, \"stream\": bool?}  -> QueryRecord lines, then
                                                {\"summary\": ..., \"req_id\": N}
    {\"metrics\": true}                        -> {\"metrics\": ...}
    {\"shutdown\": true}                       -> {\"draining\": true}; in-flight
                                                plans finish, new queries get a
                                                typed \"draining\" error, then the
                                                process exits cleanly
    any failure                              -> {\"error\": {\"kind\": ..., \"detail\": ...}}
    with --auth-token, every request object must also carry {\"auth\": SECRET}";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match service::run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("veritasd: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}
