//! The deterministic merge: re-key every worker record to its global
//! plan position, restore batch order, and fold aggregation queries
//! across shards exactly the way the in-process run folds them.
//!
//! Determinism rests on two facts. First, a record's wire identity —
//! `(query_id, session, variant)` — names exactly one plan unit, so a
//! record can be assigned its global plan index no matter which worker
//! produced it or when it arrived. Second,
//! [`crate::plan::AggregateSummary::reduce`] sorts its inputs before
//! reducing, so folding per-session scalars in shard-arrival order
//! yields the same bytes as folding them in plan order.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use crate::corpus::Corpus;
use crate::plan::{percentile_u64, QueryPlan};
use crate::query::QueryKind;
use crate::runner::{
    aggregate_record, AggregateFold, EngineReport, QueryLatency, QueryRecord, RunSummary,
};

/// The wire identity of one work unit: query id, session id, and sweep
/// variant label. Unique per plan unit by construction (units are
/// query × session × config, and variant labels are unique per query).
pub(crate) type UnitKey = (String, String, Option<String>);

/// The wire identity of a worker record.
pub(crate) fn unit_key(record: &QueryRecord) -> UnitKey {
    (
        record.query_id.clone(),
        record.session.clone(),
        record.variant.clone(),
    )
}

/// Builds a plan's wire-identity → global-unit-index map, the inverse
/// the merge uses to re-key worker records.
pub(crate) fn key_map(plan: &QueryPlan, corpus: &dyn Corpus) -> HashMap<UnitKey, usize> {
    plan.units()
        .iter()
        .enumerate()
        .map(|(ui, unit)| {
            let query = &plan.set().queries[unit.query];
            let planned = &plan.configs()[unit.config];
            (
                (
                    query.id.clone(),
                    corpus.session_id(unit.session).to_string(),
                    planned.label.clone(),
                ),
                ui,
            )
        })
        .collect()
}

/// What one shard's dispatch thread reports back to the merge.
pub(crate) enum ShardOutcome {
    /// The shard ran to completion on some worker: the complete record
    /// batch (already re-keyed to global plan positions) plus the worker
    /// run's summary, whose cache and supervision counters fold into the
    /// merged summary.
    Done {
        /// The shard's records, keyed by global plan-unit index.
        keyed: Vec<(usize, QueryRecord)>,
        /// The worker's per-shard [`RunSummary`].
        summary: RunSummary,
        /// Re-dispatches this shard needed before an attempt succeeded.
        retries: u64,
    },
    /// Every attempt under the coordinator's retry policy failed; the
    /// merge synthesizes one typed error record per unit in the shard.
    Failed {
        /// The shard index.
        shard: usize,
        /// Total attempts consumed.
        attempts: u64,
        /// The last attempt's failure.
        error: String,
        /// Re-dispatches performed (`attempts - 1`).
        retries: u64,
    },
}

/// A live distributed run: the coordinator-side mirror of
/// [`crate::RunHandle`].
///
/// Iterate it for records in completion order — completion here is
/// *shard-granular*: a shard's records surface together once its worker
/// batch is complete, which is what makes exactly-once delivery under
/// shard retry possible — then close with [`DistHandle::into_summary`];
/// or call [`DistHandle::wait`] for the deterministic batch report,
/// whose record order (and bytes, after timing normalization) is
/// identical to the single-process [`crate::Engine::run`].
pub struct DistHandle {
    rx: Option<mpsc::Receiver<ShardOutcome>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    plan: Arc<QueryPlan>,
    corpus: Arc<dyn Corpus>,
    /// Global unit indices of each shard, for synthesizing a failed
    /// shard's error records.
    units_of_shard: Vec<Vec<usize>>,
    /// Records waiting to be yielded.
    pending: VecDeque<(usize, QueryRecord)>,
    folds: Vec<Option<AggregateFold>>,
    latencies: Vec<Vec<u64>>,
    ok: usize,
    errors: usize,
    shards: usize,
    workers: usize,
    cache_hits: u64,
    cache_misses: u64,
    disk_hits: u64,
    unit_retries: u64,
    quarantined: BTreeSet<String>,
    shard_retries: u64,
    started: Instant,
}

impl DistHandle {
    pub(crate) fn new(
        rx: mpsc::Receiver<ShardOutcome>,
        threads: Vec<std::thread::JoinHandle<()>>,
        plan: Arc<QueryPlan>,
        corpus: Arc<dyn Corpus>,
        units_of_shard: Vec<Vec<usize>>,
        workers: usize,
    ) -> Self {
        let folds = plan
            .set()
            .queries
            .iter()
            .enumerate()
            .map(|(qi, query)| {
                (query.kind == QueryKind::Aggregate).then(|| AggregateFold {
                    remaining: plan.unit_count(qi),
                    values: Vec::new(),
                    unit_errors: 0,
                })
            })
            .collect();
        let latencies = vec![Vec::new(); plan.set().queries.len()];
        let shards = units_of_shard.len();
        Self {
            rx: Some(rx),
            threads,
            plan,
            corpus,
            units_of_shard,
            pending: VecDeque::new(),
            folds,
            latencies,
            ok: 0,
            errors: 0,
            shards,
            workers,
            cache_hits: 0,
            cache_misses: 0,
            disk_hits: 0,
            unit_retries: 0,
            quarantined: BTreeSet::new(),
            shard_retries: 0,
            started: Instant::now(),
        }
    }

    /// Yields the next record with its deterministic sort key.
    fn next_keyed(&mut self) -> Option<(usize, QueryRecord)> {
        loop {
            if let Some(entry) = self.pending.pop_front() {
                return Some(entry);
            }
            let rx = self.rx.as_ref()?;
            match rx.recv() {
                Ok(outcome) => self.absorb_outcome(outcome),
                Err(_) => {
                    self.rx = None;
                    self.join_threads();
                    return None;
                }
            }
        }
    }

    fn absorb_outcome(&mut self, outcome: ShardOutcome) {
        match outcome {
            ShardOutcome::Done {
                keyed,
                summary,
                retries,
            } => {
                self.shard_retries += retries;
                self.cache_hits += summary.cache_hits;
                self.cache_misses += summary.cache_misses;
                self.disk_hits += summary.disk_hits;
                self.unit_retries += summary.retries;
                self.quarantined.extend(summary.quarantined);
                for (key, record) in keyed {
                    self.absorb_record(key, record);
                }
            }
            ShardOutcome::Failed {
                shard,
                attempts,
                error,
                retries,
            } => {
                self.shard_retries += retries;
                for ui in std::mem::take(&mut self.units_of_shard[shard]) {
                    let record = self.synth_shard_error(ui, shard, attempts, &error);
                    self.absorb_record(ui, record);
                }
            }
        }
    }

    /// Mirrors [`crate::RunHandle`]'s per-record bookkeeping: counters,
    /// latency samples, and the aggregation fold (whose final record is
    /// queued right after the unit that completed it, keyed past every
    /// plan unit so batch order puts folds at the end).
    fn absorb_record(&mut self, key: usize, record: QueryRecord) {
        self.count(&record);
        let unit = self.plan.units()[key];
        self.latencies[unit.query].push(record.elapsed_us);
        let mut final_record = None;
        if let Some(fold) = self.folds[unit.query].as_mut() {
            match record.output.as_ref().and_then(|o| o.metric_value) {
                Some(value) => fold.values.push(value),
                None => fold.unit_errors += 1,
            }
            fold.remaining -= 1;
            if fold.remaining == 0 {
                let query = &self.plan.set().queries[unit.query];
                final_record = Some(aggregate_record(
                    query,
                    self.folds[unit.query].as_ref().unwrap(),
                ));
            }
        }
        self.pending.push_back((key, record));
        if let Some(final_record) = final_record {
            self.count(&final_record);
            let final_key = self.plan.units().len() + unit.query;
            self.pending.push_back((final_key, final_record));
        }
    }

    fn count(&mut self, record: &QueryRecord) {
        if record.is_ok() {
            self.ok += 1;
        } else {
            self.errors += 1;
        }
    }

    /// A typed error record for one unit of a shard whose every dispatch
    /// attempt failed — the distributed analogue of a quarantined unit.
    fn synth_shard_error(
        &self,
        index: usize,
        shard: usize,
        attempts: u64,
        error: &str,
    ) -> QueryRecord {
        let unit = self.plan.units()[index];
        let query = &self.plan.set().queries[unit.query];
        let planned = &self.plan.configs()[unit.config];
        QueryRecord {
            query_id: query.id.clone(),
            kind: query.kind,
            session: self.corpus.session_id(unit.session).to_string(),
            variant: planned.label.clone(),
            status: "error".to_string(),
            error: Some(format!(
                "shard {shard}/{} failed after {attempts} attempts: {error}",
                self.shards
            )),
            cache: None,
            elapsed_us: 0,
            output: None,
            attempts: Some(attempts),
        }
    }

    fn join_threads(&mut self) {
        for handle in self.threads.drain(..) {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// The merged summary of everything absorbed so far. Cache counters
    /// and unit retries are the sums over the worker summaries;
    /// `threads` reports the worker-process count (the distributed
    /// analogue of a thread pool); `quarantined` is the sorted union of
    /// the workers' quarantine lists.
    fn summary_now(&self) -> RunSummary {
        let per_query = self
            .plan
            .set()
            .queries
            .iter()
            .zip(&self.latencies)
            .map(|(query, elapsed)| {
                let mut sorted = elapsed.clone();
                sorted.sort_unstable();
                QueryLatency {
                    id: query.id.clone(),
                    units: sorted.len(),
                    p50_us: percentile_u64(&sorted, 50.0),
                    p95_us: percentile_u64(&sorted, 95.0),
                    max_us: sorted.last().copied().unwrap_or(0),
                }
            })
            .collect();
        RunSummary {
            queryset: self.plan.set().name.clone(),
            queries: self.plan.set().queries.len(),
            sessions: self.corpus.len(),
            units: self.ok + self.errors,
            ok: self.ok,
            errors: self.errors,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            disk_hits: self.disk_hits,
            threads: self.workers,
            shards: self.shards,
            elapsed_ms: self.started.elapsed().as_secs_f64() * 1e3,
            retries: self.unit_retries,
            quarantined: self.quarantined.iter().cloned().collect(),
            shard_retries: self.shard_retries,
            per_query,
        }
    }

    /// Drains the remaining shards and returns the batch-shaped report:
    /// records in deterministic plan order (aggregation folds at the
    /// end) — the same order, and after timing normalization the same
    /// bytes, as the single-process [`crate::Engine::run`].
    pub fn wait(mut self) -> EngineReport {
        let mut keyed: Vec<(usize, QueryRecord)> = Vec::with_capacity(self.plan.units().len());
        while let Some(entry) = self.next_keyed() {
            keyed.push(entry);
        }
        self.join_threads();
        keyed.sort_unstable_by_key(|(key, _)| *key);
        EngineReport {
            records: keyed.into_iter().map(|(_, record)| record).collect(),
            summary: self.summary_now(),
        }
    }

    /// Discards any remaining records and returns the merged summary —
    /// the closing call of the incremental path.
    pub fn into_summary(mut self) -> RunSummary {
        while self.next_keyed().is_some() {}
        self.join_threads();
        self.summary_now()
    }
}

impl Iterator for DistHandle {
    type Item = QueryRecord;

    fn next(&mut self) -> Option<QueryRecord> {
        self.next_keyed().map(|(_, record)| record)
    }
}

impl Drop for DistHandle {
    fn drop(&mut self) {
        // Close the channel so dispatch threads fail their sends, then
        // let them finish their in-flight attempt. Panics are not
        // re-raised here; the consuming methods propagate them.
        self.rx = None;
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}
