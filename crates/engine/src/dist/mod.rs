//! Distributed shard execution: farm [`crate::CorpusShard`]s to worker
//! processes and merge their record streams deterministically.
//!
//! Veritas queries are embarrassingly parallel across sessions —
//! abduction is per-trace — so a corpus partitions cleanly into shards
//! that independent *processes* can execute. This module is the
//! coordinator half of that split:
//!
//! ```text
//!                        ┌──────────────────────┐
//!          QuerySet ───▶ │      Coordinator     │ ───▶ records + summary
//!                        │  compile · partition │      (byte-identical to
//!                        │  dispatch · merge    │       the in-process run)
//!                        └──────────┬───────────┘
//!              shard 0 / JSONL      │      shard N-1 / JSONL
//!              ┌────────────────────┼────────────────────┐
//!              ▼                    ▼                    ▼
//!        ┌──────────┐        ┌──────────┐         ┌──────────┐
//!        │ worker 0 │        │ worker 1 │   ...   │ worker N │
//!        │ veritasd │        │ veritasd │         │ veritasd │
//!        └────┬─────┘        └────┬─────┘         └────┬─────┘
//!             └──────────── shared --cache-dir ────────┘
//! ```
//!
//! The [`Coordinator`] compiles a [`QueryPlan`] locally, partitions the
//! corpus with [`Corpus::shard`], and dispatches one request per shard
//! to a pool of workers — processes spawned locally ([`WorkerPool`],
//! `veritas worker` / `veritasd`) or daemons reached over TCP
//! ([`Coordinator::connect`]). The wire is the ordinary `veritasd`
//! JSONL protocol with a `shard` selector:
//! `{"query": <QuerySet>, "shard": {"index": I, "of": S}}`; the worker
//! compiles the same plan against its own copy of the corpus and
//! executes only that shard ([`crate::Engine::submit_shard_shared`]).
//!
//! **Determinism.** Worker records are buffered per shard and re-keyed
//! to their global plan positions ([`merge`]); [`DistHandle::wait`]
//! restores exactly the batch order of the single-process run, and
//! aggregation queries are folded across shards by the same
//! order-insensitive reduction the engine uses, so the merged JSONL is
//! byte-identical (after timing normalization) to [`crate::Engine::run`].
//!
//! **Supervision.** A worker that dies, times out, resets the
//! connection, or answers a typed error fails only that shard's
//! *attempt*: the shard is re-dispatched to the next worker under the
//! coordinator's [`RetryPolicy`] (reported as
//! [`crate::RunSummary::shard_retries`]), and a shared `--cache-dir`
//! makes re-execution cheap — posteriors the dead worker already
//! persisted are disk hits for its replacement. Records are forwarded
//! only when a shard's batch is complete, so retry is exactly-once as
//! far as the consumer can tell. A shard that exhausts every attempt
//! degrades to typed per-unit error records (the run still completes),
//! mirroring session quarantine in the in-process supervisor.

mod merge;
mod pool;

pub use merge::DistHandle;
pub use pool::{worker_command, WorkerPool};

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use serde::Serialize;

use crate::corpus::Corpus;
use crate::error::{EngineError, ErrorEnvelope};
use crate::plan::QueryPlan;
use crate::query::QuerySet;
use crate::runner::{EngineReport, QueryRecord, RetryPolicy, RunSummary};
use crate::service::SummaryEnvelope;

use merge::{unit_key, ShardOutcome, UnitKey};

/// Knobs of a [`Coordinator`].
#[derive(Debug, Clone, Default)]
pub struct DistConfig {
    /// Shards to partition each submitted corpus into; `0` means one
    /// shard per worker. (The corpus clamps the width to its session
    /// count either way.)
    pub shards: usize,
    /// Shard-level retry: how many total dispatch attempts each shard
    /// gets, and the backoff between them. Attempt `k` of shard `s` goes
    /// to worker `(s + k) % N`, so a retried shard always lands on a
    /// *different* worker first.
    pub retry: RetryPolicy,
    /// Read/write deadline on worker connections (`None`: no deadline).
    /// A deadline turns a hung worker into a shard retry.
    pub io_timeout: Option<Duration>,
}

/// The distributed front end: compiles plans, partitions corpora into
/// shards, farms the shards to worker processes, and merges the record
/// streams back deterministically. See the [module docs](self) for the
/// topology, the wire protocol, and the retry semantics.
///
/// Construction is either [`Coordinator::spawn`] (launch and own a
/// local [`WorkerPool`]) or [`Coordinator::connect`] (use daemons that
/// are already listening). Submission mirrors the engine:
/// [`Coordinator::submit`] returns a streaming [`DistHandle`],
/// [`Coordinator::run`] is the blocking compile → submit → wait wrapper.
///
/// Every worker must serve **the same corpus** the coordinator submits
/// against — spawned pools guarantee this by re-opening the same corpus
/// source; with [`Coordinator::connect`] it is the operator's contract.
pub struct Coordinator {
    addrs: Vec<SocketAddr>,
    /// Owned children when the coordinator spawned its own pool; their
    /// lifetime is the coordinator's.
    _pool: Option<WorkerPool>,
    config: DistConfig,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers", &self.addrs)
            .field("config", &self.config)
            .finish()
    }
}

/// One shard request on the worker wire.
struct WorkerRequest<'a> {
    query: &'a QuerySet,
    shard: WireShard,
    /// Plan-wide column-demand union
    /// ([`QueryPlan::column_demand_union`]) as a bitmask. The worker
    /// recompiles the plan from `query`, so it derives the same demand
    /// by construction; advertising the coordinator's view lets the
    /// worker refuse on any derivation skew (version drift) instead of
    /// silently decoding different columns.
    columns: u32,
}

// Hand-written because the serde shim's derive does not handle
// lifetime-generic structs.
impl serde::Serialize for WorkerRequest<'_> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut state = serializer.serialize_struct("WorkerRequest", 3)?;
        state.serialize_field("query", self.query)?;
        state.serialize_field("shard", &self.shard)?;
        state.serialize_field("columns", &self.columns)?;
        state.end()
    }
}

/// The `shard` member of a worker request.
#[derive(Serialize)]
struct WireShard {
    index: usize,
    of: usize,
}

/// Everything one dispatch thread needs to drive its shard to
/// completion (or exhaustion).
struct ShardJob {
    shard: usize,
    addrs: Vec<SocketAddr>,
    request: String,
    expected: usize,
    key_of: Arc<HashMap<UnitKey, usize>>,
    retry: RetryPolicy,
    io_timeout: Option<Duration>,
}

impl Coordinator {
    /// Spawns `workers` local worker processes and fronts them. The
    /// launch prefix comes from [`worker_command`]; `args` carries the
    /// corpus source and any shared engine flags (`--cache-dir`,
    /// `--threads`, `--fault-spec`) so every worker serves the same
    /// corpus the coordinator submits against. Blocks until every worker
    /// has announced readiness; the children are killed when the
    /// coordinator drops.
    pub fn spawn(
        workers: usize,
        command: &[String],
        args: &[String],
        config: DistConfig,
    ) -> Result<Self, EngineError> {
        let pool = WorkerPool::spawn(workers, command, args)?;
        Ok(Self {
            addrs: pool.addrs().to_vec(),
            _pool: Some(pool),
            config,
        })
    }

    /// Fronts workers that are already listening — `veritasd` daemons on
    /// other machines, or processes some other supervisor owns. The
    /// caller is responsible for every `addr` serving the same corpus
    /// the coordinator will submit against.
    pub fn connect(addrs: Vec<SocketAddr>, config: DistConfig) -> Result<Self, EngineError> {
        if addrs.is_empty() {
            return Err(EngineError::Config(
                "a coordinator needs at least one worker address".to_string(),
            ));
        }
        Ok(Self {
            addrs,
            _pool: None,
            config,
        })
    }

    /// The number of workers this coordinator dispatches to.
    pub fn workers(&self) -> usize {
        self.addrs.len()
    }

    /// Submits a compiled plan for distributed execution, mirroring
    /// [`crate::Engine::submit_shared`]: returns immediately with a
    /// streaming [`DistHandle`] while dispatch threads drive one shard
    /// each. The corpus here is the *coordinator's* copy — used for
    /// partitioning, record re-keying, and synthesizing a dead shard's
    /// error records; the workers execute against their own copies.
    pub fn submit(
        &self,
        corpus: Arc<dyn Corpus>,
        plan: Arc<QueryPlan>,
    ) -> Result<DistHandle, EngineError> {
        if corpus.is_empty() {
            return Err(EngineError::EmptyCorpus);
        }
        if plan.sessions() != corpus.len() {
            return Err(EngineError::CorpusMismatch(format!(
                "plan was compiled against {} sessions but the corpus has {}",
                plan.sessions(),
                corpus.len()
            )));
        }
        let requested = if self.config.shards == 0 {
            self.addrs.len()
        } else {
            self.config.shards
        };
        let views = corpus.shard(requested);
        let shards = views.len();
        let mut shard_of = vec![0usize; corpus.len()];
        for view in &views {
            for &si in &view.sessions {
                shard_of[si] = view.index;
            }
        }
        let mut units_of_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (ui, unit) in plan.units().iter().enumerate() {
            units_of_shard[shard_of[unit.session]].push(ui);
        }
        let key_of = Arc::new(merge::key_map(plan.as_ref(), corpus.as_ref()));
        let (tx, rx) = mpsc::channel();
        let mut threads = Vec::with_capacity(shards);
        for (s, units) in units_of_shard.iter().enumerate() {
            let request = serde_json::to_string(&WorkerRequest {
                query: plan.set(),
                shard: WireShard {
                    index: s,
                    of: shards,
                },
                columns: plan.column_demand_union().bits(),
            })
            .expect("request serialization cannot fail");
            let job = ShardJob {
                shard: s,
                addrs: self.addrs.clone(),
                request,
                expected: units.len(),
                key_of: Arc::clone(&key_of),
                retry: self.config.retry,
                io_timeout: self.config.io_timeout,
            };
            let tx = tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("veritas-dist-{s}"))
                    .spawn(move || dispatch_shard(job, &tx))
                    .expect("spawning a dispatch thread cannot fail"),
            );
        }
        drop(tx);
        Ok(DistHandle::new(
            rx,
            threads,
            plan,
            corpus,
            units_of_shard,
            self.addrs.len(),
        ))
    }

    /// Compiles `set` against `corpus`, submits it, and blocks for the
    /// batch report — the distributed mirror of [`crate::Engine::run`].
    pub fn run(
        &self,
        corpus: Arc<dyn Corpus>,
        set: &QuerySet,
    ) -> Result<EngineReport, EngineError> {
        let plan = Arc::new(QueryPlan::compile(set, corpus.as_ref())?);
        Ok(self.submit(corpus, plan)?.wait())
    }
}

/// Drives one shard: dispatch to worker `(shard + attempt) % N`, retry
/// with the policy's deterministic backoff on any failure, and report
/// the outcome to the merge. Failed attempts never leak records — a
/// shard's batch is forwarded only when complete.
fn dispatch_shard(job: ShardJob, tx: &mpsc::Sender<ShardOutcome>) {
    let max_attempts = u64::from(job.retry.max_attempts.max(1));
    let mut retries: u64 = 0;
    let mut attempt: u64 = 0;
    loop {
        attempt += 1;
        let worker = job.addrs[(job.shard + attempt as usize - 1) % job.addrs.len()];
        match run_shard_attempt(&job, worker) {
            Ok((keyed, summary)) => {
                let _ = tx.send(ShardOutcome::Done {
                    keyed,
                    summary,
                    retries,
                });
                return;
            }
            Err(error) => {
                if attempt < max_attempts {
                    retries += 1;
                    std::thread::sleep(job.retry.backoff_for(job.shard, attempt as u32));
                    continue;
                }
                let _ = tx.send(ShardOutcome::Failed {
                    shard: job.shard,
                    attempts: attempt,
                    error,
                    retries,
                });
                return;
            }
        }
    }
}

/// One dispatch attempt: a fresh connection, one request line, then the
/// record stream up to the worker's summary envelope. Anything short of
/// a complete, well-keyed batch — connect failure, reset, timeout, EOF
/// before the summary, a typed error envelope, an unknown or surplus
/// record — is this attempt's failure.
fn run_shard_attempt(
    job: &ShardJob,
    addr: SocketAddr,
) -> Result<(Vec<(usize, QueryRecord)>, RunSummary), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(job.io_timeout);
    let _ = stream.set_write_timeout(job.io_timeout);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone connection to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", job.request).map_err(|e| format!("send to {addr}: {e}"))?;
    writer.flush().map_err(|e| format!("send to {addr}: {e}"))?;
    let mut keyed = Vec::with_capacity(job.expected);
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| format!("read from {addr}: {e}"))?;
        if read == 0 {
            return Err(format!("worker {addr} hung up before its summary"));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(error) = ErrorEnvelope::parse(trimmed) {
            return Err(format!(
                "worker {addr} refused the shard: {} ({})",
                error.detail, error.kind
            ));
        }
        if let Ok(envelope) = serde_json::from_str::<SummaryEnvelope>(trimmed) {
            if keyed.len() != job.expected {
                return Err(format!(
                    "worker {addr} answered {} records for a {}-unit shard",
                    keyed.len(),
                    job.expected
                ));
            }
            return Ok((keyed, envelope.summary));
        }
        let record: QueryRecord = serde_json::from_str(trimmed)
            .map_err(|e| format!("unparseable line from worker {addr}: {e}"))?;
        let key = job.key_of.get(&unit_key(&record)).copied().ok_or_else(|| {
            format!(
                "worker {addr} answered a record outside the plan: {} / {}",
                record.query_id, record.session
            )
        })?;
        keyed.push((key, record));
    }
}
