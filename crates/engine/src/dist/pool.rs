//! Worker-process lifecycle: spawn local executor daemons on ephemeral
//! ports, parse their readiness banners, and own their lifetimes.
//!
//! A worker is nothing special — it is a full `veritasd` over the same
//! corpus source, reached through the ordinary JSONL protocol. The pool
//! only adds three flags to whatever launch command it is given:
//! `--addr 127.0.0.1:0` (ephemeral port, announced on stdout) and
//! `--admission 64` (so concurrent shard dispatches and retries are
//! never shed by the daemon's conservative default bound).

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

use crate::error::EngineError;

/// Admission bound spawned workers run with: high enough that a
/// coordinator's concurrent shard dispatches (plus retries) are never
/// shed by [`crate::service::DEFAULT_ADMISSION_BOUND`].
const WORKER_ADMISSION: usize = 64;

/// Resolves the argv prefix used to launch worker processes: an explicit
/// `--worker-cmd` override (whitespace-split), or this very executable.
/// When the current executable is the multi-command `veritas` binary its
/// `worker` subcommand is appended, so the child lands in the daemon
/// flag parser either way.
pub fn worker_command(override_cmd: Option<&str>) -> Result<Vec<String>, EngineError> {
    if let Some(cmd) = override_cmd {
        let parts: Vec<String> = cmd.split_whitespace().map(str::to_string).collect();
        if parts.is_empty() {
            return Err(EngineError::Config(
                "--worker-cmd must name an executable".to_string(),
            ));
        }
        return Ok(parts);
    }
    let exe = std::env::current_exe()?;
    let mut command = vec![exe.display().to_string()];
    if exe.file_stem().is_some_and(|stem| stem == "veritas") {
        command.push("worker".to_string());
    }
    Ok(command)
}

/// A set of locally spawned worker processes. Children are killed (and
/// reaped) when the pool drops, so a coordinator can never leak
/// executors past its own lifetime.
pub struct WorkerPool {
    children: Vec<Child>,
    addrs: Vec<SocketAddr>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.addrs)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` children with the launch prefix `command` (see
    /// [`worker_command`]) plus `args` (corpus source, cache directory,
    /// thread count, fault spec — whatever the front end forwards),
    /// blocking until every child has announced `veritasd: listening on
    /// <addr>` on its stdout. A child that exits, or prints something
    /// unparseable, before announcing readiness fails the whole spawn.
    pub fn spawn(workers: usize, command: &[String], args: &[String]) -> Result<Self, EngineError> {
        if workers == 0 {
            return Err(EngineError::Config(
                "a worker pool needs at least one worker (--workers)".to_string(),
            ));
        }
        let (head, tail) = command
            .split_first()
            .ok_or_else(|| EngineError::Config("the worker launch command is empty".to_string()))?;
        let mut pool = Self {
            children: Vec::with_capacity(workers),
            addrs: Vec::with_capacity(workers),
        };
        for _ in 0..workers {
            let mut child = Command::new(head)
                .args(tail)
                .args(args)
                .args(["--addr", "127.0.0.1:0"])
                .args(["--admission", &WORKER_ADMISSION.to_string()])
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| {
                    EngineError::Config(format!("failed to launch worker `{head}`: {e}"))
                })?;
            let stdout = child.stdout.take().expect("worker stdout was piped");
            // Dropping the pool kills this child even if readiness fails.
            pool.children.push(child);
            let mut reader = BufReader::new(stdout);
            let mut banner = String::new();
            if reader.read_line(&mut banner)? == 0 {
                return Err(EngineError::Config(format!(
                    "worker `{head}` exited before announcing readiness \
                     (check its flags against the veritasd usage)"
                )));
            }
            let addr = banner
                .trim()
                .strip_prefix("veritasd: listening on ")
                .and_then(|rest| rest.parse().ok())
                .ok_or_else(|| {
                    EngineError::Config(format!(
                        "unexpected worker readiness banner: {}",
                        banner.trim()
                    ))
                })?;
            pool.addrs.push(addr);
        }
        Ok(pool)
    }

    /// The workers' listen addresses, in spawn order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}
