//! `veritasd`: the engine as a long-lived service.
//!
//! One resident corpus and one warm [`AbductionCache`] (memory +
//! optional disk tier) serve every connection, so the corpus is loaded
//! once and each posterior is inferred at most once across *all* clients
//! — the amortization a per-query CLI invocation can never reach. The
//! corpus may be an eager [`SessionCorpus`] (JSON directory or
//! synthetic) or a lazy [`crate::LazyCorpus`] over a `.vcorp` file
//! ([`CorpusSource`]); with the latter, a daemon restart opens the file
//! and reads its index — no JSON parsing, no float re-hashing — so
//! restart time is decoupled from corpus size. The service is plain
//! `std::net` TCP speaking newline-delimited JSON; it rides the same
//! `compile → submit → consume` pipeline as the library, so what a
//! client receives over the wire is exactly what [`Engine::run`] would
//! have produced in-process.
//!
//! # Protocol
//!
//! Each request is one JSON object on one line; a connection may carry
//! any number of requests, answered in order:
//!
//! * `{"query": <QuerySet>}` — compile and run a query set against the
//!   resident corpus. Optional `"stream": true` switches the record feed
//!   from deterministic batch order to completion order (records are
//!   flushed the moment their unit finishes). Optional `"shard":
//!   {"index": I, "of": S}` restricts execution to one corpus shard of
//!   an `S`-way partition ([`Engine::submit_shard_shared`]) — the worker
//!   half of distributed execution (see [`crate::dist`]).
//! * `{"metrics": true}` — a point-in-time [`MetricsSnapshot`].
//! * `{"shutdown": true}` — begin a graceful drain: the request is
//!   acknowledged with `{"draining": true}`, in-flight plans finish,
//!   new query requests are refused with a typed `"draining"` envelope,
//!   and once the last plan's summary is on the wire the process exits
//!   cleanly.
//!
//! When the daemon was started with `--auth-token SECRET`, every request
//! line must additionally carry `{"auth": "SECRET"}`; a missing or
//! mismatched token is answered with a typed `"unauthorized"` envelope
//! and the connection is closed. The comparison is constant-time.
//!
//! Responses are newline-delimited JSON too:
//!
//! * Each [`QueryRecord`] is one raw line — byte-identical to the lines
//!   of [`crate::EngineReport::to_jsonl`].
//! * The terminal line of a query is `{"summary": <RunSummary>,
//!   "req_id": N}` — `req_id` is a per-daemon monotonic plan id, echoed
//!   in the structured stderr log so wire responses and log lines can
//!   be joined.
//! * A metrics request answers with `{"metrics": <MetricsSnapshot>}`.
//! * Any failure is `{"error": {"kind": ..., "detail": ...}}` (see
//!   [`crate::ErrorEnvelope`]); the connection stays open — line framing
//!   survives a bad request.
//!
//! Every served (or refused) plan also emits one structured JSONL line
//! to stderr: `{"ts_ms", "req_id", "peer", "records", "elapsed_us",
//! "status"}` with `status` one of `"ok"`, `"shed"`, `"drained"`, or
//! `"unauthorized"`.
//!
//! # Admission control & connection hygiene
//!
//! Concurrent plans are bounded ([`EngineBuilder::admission`], default
//! [`DEFAULT_ADMISSION_BOUND`]): a request past the bound is shed
//! immediately with an `"overloaded"` error (HTTP 429 in spirit) instead
//! of queueing unboundedly. Within an admitted plan, the engine's
//! bounded record channel applies backpressure end to end: a slow client
//! stalls only its own workers, never another connection's.
//!
//! Two more knobs bound what misbehaving clients can pin:
//!
//! * `--max-connections N` caps concurrently open connections; an accept
//!   past the cap is answered with the same typed `"overloaded"`
//!   envelope (distinguishable by its detail text) and closed.
//! * `--io-timeout SECS` (default [`DEFAULT_IO_TIMEOUT_S`]) arms
//!   per-connection read *and* write deadlines, so a client that stalls
//!   mid-line — or stops draining its record feed — frees its thread
//!   instead of holding it forever. `0` disables the deadlines.
//!
//! # Distributed front end
//!
//! With `--workers N` the daemon spawns N local worker processes (each a
//! full `veritasd` over the same corpus source, bound to an ephemeral
//! port) and serves every full query through a
//! [`crate::dist::Coordinator`]: the plan is partitioned into corpus
//! shards, farmed to the workers over this very JSONL protocol with
//! per-shard `shard` requests, and the record streams are merged back
//! deterministically. Clients observe no protocol difference. A shared
//! `--cache-dir` makes the workers' disk tier common, so a posterior any
//! worker infers is a disk hit for all of them.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::corpus::{Corpus, SessionCorpus, SyntheticSpec};
use crate::dist::{Coordinator, DistConfig, DistHandle};
use crate::error::EngineError;
use crate::fault::{FaultPlan, FaultSite};
use crate::plan::{percentile_u64, QueryPlan};
use crate::query::{object_fields, opt, reject_unknown, req, QuerySet};
use crate::runner::{
    Engine, EngineReport, QueryLatency, QueryRecord, RunHandle, RunSummary, AGGREGATE_SESSION,
};
use crate::store::{ColumnSet, LazyCorpus};

/// Concurrent plans admitted by default; past it requests are shed with
/// a typed `"overloaded"` response.
pub const DEFAULT_ADMISSION_BOUND: usize = 4;

/// Default per-connection read/write deadline in seconds
/// (`--io-timeout`); `0` disables the deadlines.
pub const DEFAULT_IO_TIMEOUT_S: u64 = 30;

/// Per-query unit latencies retained for the metrics percentiles — a
/// bounded sliding window so a long-lived daemon's memory stays flat.
const LATENCY_WINDOW: usize = 4096;

/// Where the daemon's resident corpus comes from.
#[derive(Debug, Clone)]
pub enum CorpusSource {
    /// A directory of per-session JSON logs ([`SessionCorpus::from_dir`]).
    Dir(PathBuf),
    /// A columnar binary `.vcorp` corpus, served lazily
    /// ([`LazyCorpus::open`]): the daemon keeps only the session index
    /// resident and decodes logs on demand per work unit.
    Vcorp(PathBuf),
    /// A synthetic corpus ([`SyntheticSpec`]), for demos and smoke tests.
    Synthetic {
        /// Number of sessions to synthesize.
        sessions: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl CorpusSource {
    /// Loads (or synthesizes, or lazily opens) the corpus.
    pub fn load(&self) -> Result<Arc<dyn Corpus>, EngineError> {
        self.load_with_fault(None)
    }

    /// [`CorpusSource::load`], with an optional fault plan attached to
    /// the corpus-side injection points (currently: `.vcorp` block
    /// decodes, see [`LazyCorpus::with_fault_plan`]).
    pub fn load_with_fault(
        &self,
        fault: Option<Arc<FaultPlan>>,
    ) -> Result<Arc<dyn Corpus>, EngineError> {
        match self {
            CorpusSource::Dir(dir) => Ok(Arc::new(SessionCorpus::from_dir(dir)?)),
            CorpusSource::Vcorp(path) => {
                let corpus = LazyCorpus::open(path)?;
                Ok(Arc::new(match fault {
                    Some(plan) => corpus.with_fault_plan(plan),
                    None => corpus,
                }))
            }
            CorpusSource::Synthetic { sessions, seed } => Ok(Arc::new(
                SyntheticSpec {
                    sessions: *sessions,
                    seed: *seed,
                    ..SyntheticSpec::default()
                }
                .try_build()?,
            )),
        }
    }

    /// The command-line flags that reproduce this source in a spawned
    /// worker process (`--corpus PATH` or `--synthetic N --seed S`) —
    /// how a distributed front end hands its corpus to its workers.
    pub fn to_args(&self) -> Vec<String> {
        match self {
            CorpusSource::Dir(path) | CorpusSource::Vcorp(path) => {
                vec!["--corpus".to_string(), path.display().to_string()]
            }
            CorpusSource::Synthetic { sessions, seed } => vec![
                "--synthetic".to_string(),
                sessions.to_string(),
                "--seed".to_string(),
                seed.to_string(),
            ],
        }
    }
}

/// Everything needed to bind a [`Service`]: the listen address, the
/// corpus source, and the engine knobs (all forwarded to
/// [`Engine::builder`]).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address, e.g. `127.0.0.1:4617`. Port `0` binds an
    /// ephemeral port — read it back via [`Service::local_addr`].
    pub addr: String,
    /// The resident corpus.
    pub corpus: CorpusSource,
    /// Worker threads per plan (`None`: engine default).
    pub threads: Option<usize>,
    /// Corpus shards per plan (`None`: engine default).
    pub shards: Option<usize>,
    /// Persistent abduction store directory, for warm restarts.
    pub cache_dir: Option<PathBuf>,
    /// Concurrent-plan admission bound.
    pub admission: usize,
    /// Per-connection read/write deadline in seconds (`0` disables).
    pub io_timeout_s: u64,
    /// Concurrently open connections admitted (`0` = unbounded); excess
    /// accepts are shed with a typed `"overloaded"` envelope.
    pub max_connections: usize,
    /// Shared secret; when set, every request line must carry a matching
    /// `auth` field or it is refused with a typed `"unauthorized"`
    /// envelope and the connection is closed.
    pub auth_token: Option<String>,
    /// Fault-injection spec (see [`FaultPlan::parse`]); when set, the
    /// parsed plan is attached to the engine, the corpus, and the
    /// service's own socket I/O for chaos testing.
    pub fault_spec: Option<String>,
    /// Worker processes to spawn for distributed execution (`0`: serve
    /// every plan in-process). See the module docs.
    pub workers: usize,
    /// Override for the worker launch command (whitespace-split; the
    /// corpus and service flags are appended). Defaults to re-launching
    /// this very executable.
    pub worker_cmd: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4617".to_string(),
            corpus: CorpusSource::Synthetic {
                sessions: 4,
                seed: 7,
            },
            threads: None,
            shards: None,
            cache_dir: None,
            admission: DEFAULT_ADMISSION_BOUND,
            io_timeout_s: DEFAULT_IO_TIMEOUT_S,
            max_connections: 0,
            auth_token: None,
            fault_spec: None,
            workers: 0,
            worker_cmd: None,
        }
    }
}

impl ServiceConfig {
    /// Parses the daemon's command-line flags (shared by the `veritasd`
    /// binary and the `veritas serve` subcommand):
    ///
    /// ```text
    /// [--addr HOST:PORT] [--corpus DIR|FILE.vcorp | --synthetic N] [--seed S]
    /// [--threads N] [--shards N] [--cache-dir DIR] [--admission N]
    /// [--io-timeout SECS] [--max-connections N] [--auth-token SECRET]
    /// [--fault-spec SPEC] [--workers N] [--worker-cmd CMD]
    /// ```
    ///
    /// A `--corpus` path ending in `.vcorp` is served lazily from the
    /// binary store ([`CorpusSource::Vcorp`]); anything else is a JSON
    /// session directory.
    pub fn parse(args: &[String]) -> Result<Self, EngineError> {
        let mut config = Self::default();
        let mut corpus_path: Option<PathBuf> = None;
        let mut synthetic: Option<usize> = None;
        let mut seed: u64 = 7;
        let mut iter = args.iter();
        let usage = |flag: &str| EngineError::Config(format!("{flag} requires a value"));
        while let Some(arg) = iter.next() {
            let mut value_for = |flag: &str| iter.next().cloned().ok_or_else(|| usage(flag));
            match arg.as_str() {
                "--addr" => config.addr = value_for("--addr")?,
                "--corpus" => corpus_path = Some(PathBuf::from(value_for("--corpus")?)),
                "--synthetic" => {
                    synthetic = Some(parse_num(&value_for("--synthetic")?, "--synthetic")?)
                }
                "--seed" => seed = parse_num(&value_for("--seed")?, "--seed")?,
                "--threads" => {
                    config.threads = Some(parse_num(&value_for("--threads")?, "--threads")?)
                }
                "--shards" => config.shards = Some(parse_num(&value_for("--shards")?, "--shards")?),
                "--cache-dir" => config.cache_dir = Some(PathBuf::from(value_for("--cache-dir")?)),
                "--admission" => {
                    config.admission = parse_num(&value_for("--admission")?, "--admission")?
                }
                "--io-timeout" => {
                    config.io_timeout_s = parse_num(&value_for("--io-timeout")?, "--io-timeout")?
                }
                "--max-connections" => {
                    config.max_connections =
                        parse_num(&value_for("--max-connections")?, "--max-connections")?
                }
                "--auth-token" => config.auth_token = Some(value_for("--auth-token")?),
                "--fault-spec" => config.fault_spec = Some(value_for("--fault-spec")?),
                "--workers" => config.workers = parse_num(&value_for("--workers")?, "--workers")?,
                "--worker-cmd" => config.worker_cmd = Some(value_for("--worker-cmd")?),
                other => {
                    return Err(EngineError::Config(format!(
                        "unknown flag `{other}` (accepted: --addr, --corpus, --synthetic, \
                         --seed, --threads, --shards, --cache-dir, --admission, --io-timeout, \
                         --max-connections, --auth-token, --fault-spec, --workers, \
                         --worker-cmd)"
                    )))
                }
            }
        }
        config.corpus = match (corpus_path, synthetic) {
            (Some(_), Some(_)) => {
                return Err(EngineError::Config(
                    "--corpus and --synthetic are mutually exclusive".to_string(),
                ))
            }
            (Some(path), None) if path.extension().is_some_and(|ext| ext == "vcorp") => {
                CorpusSource::Vcorp(path)
            }
            (Some(dir), None) => CorpusSource::Dir(dir),
            (None, sessions) => CorpusSource::Synthetic {
                sessions: sessions.unwrap_or(4),
                seed,
            },
        };
        Ok(config)
    }
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, EngineError> {
    text.parse()
        .map_err(|_| EngineError::Config(format!("invalid numeric value `{text}` for {flag}")))
}

/// One parsed request line. Exactly one of `query` / `metrics` /
/// `shutdown` must be present; unknown fields are rejected so client
/// typos fail loudly.
struct Request {
    query: Option<QuerySet>,
    stream: bool,
    metrics: bool,
    shutdown: bool,
    auth: Option<String>,
    shard: Option<ShardSel>,
    /// Coordinator-advertised column-demand union bitmask
    /// ([`QueryPlan::column_demand_union`]); when present, the worker
    /// cross-checks it against the demand it derives from its own
    /// compiled plan and refuses on mismatch, so coordinator and worker
    /// can never prune different columns.
    columns: Option<u32>,
}

/// The `shard` member of a query request: restrict execution to shard
/// `index` of an `of`-way corpus partition.
struct ShardSel {
    index: usize,
    of: usize,
}

impl<'de> Deserialize<'de> for Request {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "service request")?;
        let request = Request {
            query: opt(&mut fields, "query")?,
            stream: opt(&mut fields, "stream")?.unwrap_or(false),
            metrics: opt(&mut fields, "metrics")?.unwrap_or(false),
            shutdown: opt(&mut fields, "shutdown")?.unwrap_or(false),
            auth: opt(&mut fields, "auth")?,
            shard: opt(&mut fields, "shard")?,
            columns: opt(&mut fields, "columns")?,
        };
        reject_unknown(&fields, "service request")?;
        Ok(request)
    }
}

impl<'de> Deserialize<'de> for ShardSel {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = object_fields(deserializer, "shard selector")?;
        let shard = ShardSel {
            index: req(&mut fields, "shard selector", "index")?,
            of: req(&mut fields, "shard selector", "of")?,
        };
        reject_unknown(&fields, "shard selector")?;
        Ok(shard)
    }
}

/// The terminal response line of a query: `{"summary": <RunSummary>,
/// "req_id": N}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryEnvelope {
    /// The run's summary.
    pub summary: RunSummary,
    /// The daemon's monotonic plan id for this run — the join key
    /// against the structured stderr log.
    pub req_id: Option<u64>,
}

/// The response to a metrics request: `{"metrics": <MetricsSnapshot>}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsEnvelope {
    /// The snapshot payload.
    pub metrics: MetricsSnapshot,
}

/// A point-in-time view of a running service — the `/metrics` answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Seconds since the service was bound.
    pub uptime_s: f64,
    /// Sessions in the resident corpus.
    pub sessions: usize,
    /// The admission bound plans are held to.
    pub admission_bound: Option<usize>,
    /// Connections accepted so far.
    pub connections: u64,
    /// Connections currently open.
    pub connections_active: usize,
    /// Accepts shed by the `--max-connections` bound.
    pub connections_shed: u64,
    /// Plans that ran to completion (summary written).
    pub plans_served: u64,
    /// Plans currently holding an admission permit.
    pub plans_active: usize,
    /// Requests shed by admission control.
    pub plans_shed: u64,
    /// Query records written to clients so far.
    pub records_streamed: u64,
    /// Unit retries performed across every served plan (the sum of
    /// [`RunSummary::retries`]); zero unless the engine has a
    /// [`crate::RetryPolicy`].
    pub retries: u64,
    /// Sessions quarantined across every served plan (the summed lengths
    /// of [`RunSummary::quarantined`]).
    pub quarantined: u64,
    /// Worker-shard re-dispatches across every served plan (the sum of
    /// [`RunSummary::shard_retries`]); zero unless the daemon fronts a
    /// worker pool (`--workers`).
    pub shard_retries: u64,
    /// Corrupt persistent-store entries the cache healed (detected,
    /// quarantined on disk, and re-inferred) since the service started —
    /// mirrored from [`CacheStats::healed`] so the supervision counters
    /// read as one group.
    pub healed: u64,
    /// The shared abduction cache's counters (memory hits, disk hits,
    /// misses, resident entries) since the service started.
    pub cache: CacheStats,
    /// The resident corpus's decode/residency counters
    /// ([`crate::Corpus::residency`]) — present only for lazily backed
    /// corpora (`.vcorp`), where column projection and the bounded
    /// resident set make decode volume worth watching.
    pub residency: Option<crate::ResidencyStats>,
    /// Per-query-id p50/p95/max unit latency over a sliding window of
    /// the last [`LATENCY_WINDOW`] units, sorted by id.
    pub per_query: Vec<QueryLatency>,
}

/// The shared state every connection thread sees.
struct ServiceState {
    engine: Engine,
    corpus: Arc<dyn Corpus>,
    started: Instant,
    shutdown: AtomicBool,
    /// Flipped by a `shutdown` request: new plans are refused with a
    /// typed `"draining"` envelope while in-flight plans finish.
    draining: AtomicBool,
    /// Whether the drain watcher thread has been spawned (first
    /// `shutdown` request wins; later ones are acknowledged only).
    drain_started: AtomicBool,
    /// Monotonic plan id, echoed in summary envelopes and stderr logs.
    req_ids: AtomicU64,
    /// The bound address, for the drain watcher's accept-loop wake-up.
    self_addr: SocketAddr,
    /// Shared secret required on every request when set.
    auth_token: Option<String>,
    /// Chaos hook: injects [`FaultSite::Socket`] failures when set.
    fault: Option<Arc<FaultPlan>>,
    /// Per-connection read/write deadline (`None`: no deadline).
    io_timeout: Option<Duration>,
    /// Concurrently open connections admitted (`0` = unbounded).
    max_connections: usize,
    connections: AtomicU64,
    connections_active: AtomicUsize,
    connections_shed: AtomicU64,
    plans_served: AtomicU64,
    plans_shed: AtomicU64,
    records_streamed: AtomicU64,
    retries_total: AtomicU64,
    quarantined_total: AtomicU64,
    shard_retries_total: AtomicU64,
    latencies: Mutex<HashMap<String, Vec<u64>>>,
    /// The worker-pool coordinator when the daemon fronts `--workers N`
    /// executor processes; `None` serves every plan in-process.
    dist: Option<Coordinator>,
}

/// One structured stderr log line — the daemon's per-plan operational
/// record (see the module docs).
#[derive(Serialize)]
struct PlanLogLine {
    ts_ms: u64,
    req_id: Option<u64>,
    peer: String,
    records: u64,
    elapsed_us: u64,
    status: String,
}

/// Compares two secrets without short-circuiting on the first mismatch,
/// so the comparison time leaks neither the match prefix length nor
/// (beyond the max of the two lengths) the token length.
fn constant_time_eq(a: &str, b: &str) -> bool {
    let a = a.as_bytes();
    let b = b.as_bytes();
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

impl ServiceState {
    /// Folds one outgoing record into the metrics window. Aggregation
    /// fold records carry no unit work (`session == "*"`), so they count
    /// as streamed output but not as latency samples.
    fn observe(&self, record: &QueryRecord) {
        self.records_streamed.fetch_add(1, Ordering::Relaxed);
        if record.session == AGGREGATE_SESSION {
            return;
        }
        let mut latencies = self.latencies.lock();
        let window = latencies.entry(record.query_id.clone()).or_default();
        if window.len() == LATENCY_WINDOW {
            window.remove(0);
        }
        window.push(record.elapsed_us);
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let per_query = {
            let latencies = self.latencies.lock();
            let mut per_query: Vec<QueryLatency> = latencies
                .iter()
                .map(|(id, elapsed)| {
                    let mut sorted = elapsed.clone();
                    sorted.sort_unstable();
                    QueryLatency {
                        id: id.clone(),
                        units: sorted.len(),
                        p50_us: percentile_u64(&sorted, 50.0),
                        p95_us: percentile_u64(&sorted, 95.0),
                        max_us: sorted.last().copied().unwrap_or(0),
                    }
                })
                .collect();
            per_query.sort_by(|a, b| a.id.cmp(&b.id));
            per_query
        };
        let cache = self.engine.cache().stats();
        MetricsSnapshot {
            uptime_s: self.started.elapsed().as_secs_f64(),
            sessions: self.corpus.len(),
            admission_bound: self.engine.admission_bound(),
            connections: self.connections.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            plans_served: self.plans_served.load(Ordering::Relaxed),
            plans_active: self.engine.active_plans(),
            plans_shed: self.plans_shed.load(Ordering::Relaxed),
            records_streamed: self.records_streamed.load(Ordering::Relaxed),
            retries: self.retries_total.load(Ordering::Relaxed),
            quarantined: self.quarantined_total.load(Ordering::Relaxed),
            shard_retries: self.shard_retries_total.load(Ordering::Relaxed),
            healed: cache.healed,
            cache,
            residency: self.corpus.residency(),
            per_query,
        }
    }

    /// Answers one request line. Write failures mean the client is gone;
    /// everything else is answered on the wire and keeps the connection —
    /// except an auth failure, which answers and then closes.
    fn respond(
        self: &Arc<Self>,
        line: &str,
        peer: &str,
        writer: &mut impl Write,
    ) -> io::Result<()> {
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::Socket) {
                // Simulate the peer (or the network) dying mid-exchange:
                // the connection thread unwinds exactly as it would on a
                // real reset, and the client must reconnect.
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected socket fault",
                ));
            }
        }
        let request = match serde_json::from_str::<Request>(line) {
            Ok(request) => request,
            Err(e) => return self.refuse(writer, &EngineError::Protocol(e.to_string())),
        };
        if let Some(expected) = &self.auth_token {
            let presented = request.auth.as_deref().unwrap_or("");
            if !constant_time_eq(presented, expected) {
                self.log_plan(None, peer, 0, 0, "unauthorized");
                self.refuse(writer, &EngineError::Unauthorized)?;
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    "missing or invalid auth token",
                ));
            }
        }
        match (request.query, request.metrics, request.shutdown) {
            (None, true, false) => {
                let line = serde_json::to_string(&MetricsEnvelope {
                    metrics: self.snapshot(),
                })
                .expect("metrics serialization cannot fail");
                writeln!(writer, "{line}")?;
                writer.flush()
            }
            (None, false, true) => self.begin_drain(writer),
            (Some(set), false, false) => self.serve_query(
                set,
                request.stream,
                request.shard,
                request.columns,
                peer,
                writer,
            ),
            _ => self.refuse(
                writer,
                &EngineError::Protocol(
                    "a request must carry exactly one of `query`, `metrics`, or `shutdown`"
                        .to_string(),
                ),
            ),
        }
    }

    fn refuse(&self, writer: &mut impl Write, error: &EngineError) -> io::Result<()> {
        writeln!(writer, "{}", error.wire_json())?;
        writer.flush()
    }

    /// One structured JSONL line per plan (or refusal) on stderr, so an
    /// operator can join wire responses (`req_id` in the summary
    /// envelope) against the daemon's log.
    fn log_plan(
        &self,
        req_id: Option<u64>,
        peer: &str,
        records: u64,
        elapsed_us: u64,
        status: &str,
    ) {
        let line = PlanLogLine {
            ts_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|since| since.as_millis() as u64)
                .unwrap_or(0),
            req_id,
            peer: peer.to_string(),
            records,
            elapsed_us,
            status: status.to_string(),
        };
        eprintln!(
            "{}",
            serde_json::to_string(&line).expect("log serialization cannot fail")
        );
    }

    /// Handles a `shutdown` request: flip the drain gate, acknowledge,
    /// and (once) spawn the watcher that waits for the last in-flight
    /// plan before stopping the accept loop.
    fn begin_drain(self: &Arc<Self>, writer: &mut impl Write) -> io::Result<()> {
        self.draining.store(true, Ordering::Release);
        if !self.drain_started.swap(true, Ordering::AcqRel) {
            let state = Arc::clone(self);
            std::thread::spawn(move || {
                while state.engine.active_plans() > 0 {
                    std::thread::sleep(Duration::from_millis(10));
                }
                state.shutdown.store(true, Ordering::Release);
                // Wake the blocking accept so the loop observes the flag.
                let _ = TcpStream::connect(state.self_addr);
            });
        }
        let ack = r#"{"draining":true}"#;
        writeln!(writer, "{ack}")?;
        writer.flush()
    }

    /// Runs one admitted query set: stream the records, then the summary
    /// envelope. The admission permit is held until the summary is on the
    /// wire, so `plans_active` covers the full client-visible lifetime.
    ///
    /// A `shard` selector runs the restricted in-process path (this
    /// daemon is someone's worker); a full request on a daemon fronting a
    /// worker pool is served through the [`Coordinator`] instead of the
    /// local engine.
    fn serve_query(
        &self,
        set: QuerySet,
        streaming: bool,
        shard: Option<ShardSel>,
        columns: Option<u32>,
        peer: &str,
        writer: &mut impl Write,
    ) -> io::Result<()> {
        let req_id = self.req_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let started = Instant::now();
        if self.draining.load(Ordering::Acquire) {
            self.log_plan(Some(req_id), peer, 0, 0, "drained");
            return self.refuse(writer, &EngineError::Draining);
        }
        let permit = match self.engine.try_admit() {
            Ok(permit) => permit,
            Err(error) => {
                self.plans_shed.fetch_add(1, Ordering::Relaxed);
                self.log_plan(Some(req_id), peer, 0, 0, "shed");
                return self.refuse(writer, &error);
            }
        };
        // Re-check under the permit: a drain that began between the first
        // check and admission must still see this plan refused, or the
        // watcher could observe zero active plans while we start one.
        if self.draining.load(Ordering::Acquire) {
            drop(permit);
            self.log_plan(Some(req_id), peer, 0, 0, "drained");
            return self.refuse(writer, &EngineError::Draining);
        }
        let plan = match QueryPlan::compile(&set, self.corpus.as_ref()) {
            Ok(plan) => Arc::new(plan),
            Err(error) => return self.refuse(writer, &error),
        };
        // A coordinator advertises the column demand it derived; this
        // worker just derived its own from the identical query set. Any
        // difference means the two ends would prune different columns —
        // refuse loudly rather than decode divergently.
        if let Some(bits) = columns {
            let derived = plan.column_demand_union();
            if ColumnSet::from_bits(bits) != Some(derived) {
                self.log_plan(Some(req_id), peer, 0, 0, "column-mismatch");
                return self.refuse(
                    writer,
                    &EngineError::Protocol(format!(
                        "column-demand mismatch: request advertised bitmask {bits:#x}, this \
                         worker derives {:#x} from the same query set (coordinator/worker \
                         version skew?)",
                        derived.bits()
                    )),
                );
            }
        }
        let submitted = match (&shard, &self.dist) {
            (Some(sel), _) => self
                .engine
                .submit_shard_shared(Arc::clone(&self.corpus), plan, sel.index, sel.of)
                .map(AnyHandle::Local),
            (None, Some(coordinator)) => coordinator
                .submit(Arc::clone(&self.corpus), plan)
                .map(AnyHandle::Dist),
            (None, None) => self
                .engine
                .submit_shared(Arc::clone(&self.corpus), plan)
                .map(AnyHandle::Local),
        };
        let handle = match submitted {
            Ok(handle) => handle,
            Err(error) => return self.refuse(writer, &error),
        };
        let mut records: u64 = 0;
        let summary = if streaming {
            // Completion order, one flush per record: the client sees
            // each unit the moment it finishes.
            let mut handle = handle;
            for record in &mut handle {
                self.observe(&record);
                records += 1;
                let line =
                    serde_json::to_string(&record).expect("record serialization cannot fail");
                writeln!(writer, "{line}")?;
                writer.flush()?;
            }
            handle.into_summary()
        } else {
            // Deterministic batch order — the wire lines are exactly
            // `EngineReport::to_jsonl`'s lines.
            let report = handle.wait();
            for record in &report.records {
                self.observe(record);
            }
            records = report.records.len() as u64;
            writer.write_all(report.to_jsonl().as_bytes())?;
            report.summary
        };
        self.retries_total
            .fetch_add(summary.retries, Ordering::Relaxed);
        self.quarantined_total
            .fetch_add(summary.quarantined.len() as u64, Ordering::Relaxed);
        self.shard_retries_total
            .fetch_add(summary.shard_retries, Ordering::Relaxed);
        let line = serde_json::to_string(&SummaryEnvelope {
            summary,
            req_id: Some(req_id),
        })
        .expect("summary serialization cannot fail");
        writeln!(writer, "{line}")?;
        writer.flush()?;
        self.plans_served.fetch_add(1, Ordering::Relaxed);
        self.log_plan(
            Some(req_id),
            peer,
            records,
            started.elapsed().as_micros() as u64,
            "ok",
        );
        drop(permit);
        Ok(())
    }
}

/// Either execution backend behind one `serve_query` flow: the local
/// engine's [`RunHandle`] or the worker pool's [`DistHandle`]. Both
/// stream records in completion order and close with a [`RunSummary`].
enum AnyHandle {
    Local(RunHandle),
    Dist(DistHandle),
}

impl Iterator for AnyHandle {
    type Item = QueryRecord;

    fn next(&mut self) -> Option<QueryRecord> {
        match self {
            AnyHandle::Local(handle) => handle.next(),
            AnyHandle::Dist(handle) => handle.next(),
        }
    }
}

impl AnyHandle {
    fn wait(self) -> EngineReport {
        match self {
            AnyHandle::Local(handle) => handle.wait(),
            AnyHandle::Dist(handle) => handle.wait(),
        }
    }

    fn into_summary(self) -> RunSummary {
        match self {
            AnyHandle::Local(handle) => handle.into_summary(),
            AnyHandle::Dist(handle) => handle.into_summary(),
        }
    }
}

/// A bound (but not yet serving) `veritasd` instance: the resident
/// corpus is loaded, the engine (and any persistent cache tier) is
/// built, and the listener holds its port. Call [`Service::run`] to
/// serve on the current thread or [`Service::spawn`] to serve on a
/// background thread with a shutdown handle.
pub struct Service {
    listener: TcpListener,
    state: Arc<ServiceState>,
}

impl Service {
    /// Loads the corpus, builds the engine, and binds the listener. A
    /// `fault_spec`, when present, is parsed here (a malformed spec is a
    /// [`EngineError::Config`]) and attached to every injection point the
    /// daemon owns: the engine (compute + disk tier), the corpus (block
    /// decodes), and the connection handlers (socket I/O).
    pub fn bind(config: ServiceConfig) -> Result<Self, EngineError> {
        let fault = config
            .fault_spec
            .as_deref()
            .map(|spec| {
                FaultPlan::parse(spec)
                    .map(Arc::new)
                    .map_err(|e| EngineError::Config(format!("invalid --fault-spec: {e}")))
            })
            .transpose()?;
        let corpus = config.corpus.load_with_fault(fault.clone())?;
        if corpus.is_empty() {
            return Err(EngineError::EmptyCorpus);
        }
        let dist = if config.workers > 0 {
            // The workers re-open the same corpus source and (when set)
            // share the front end's disk cache tier and fault spec. Each
            // is a full daemon on an ephemeral port; the coordinator owns
            // their lifetimes.
            let mut forward = config.corpus.to_args();
            if let Some(dir) = &config.cache_dir {
                forward.push("--cache-dir".to_string());
                forward.push(dir.display().to_string());
            }
            if let Some(threads) = config.threads {
                forward.push("--threads".to_string());
                forward.push(threads.to_string());
            }
            if let Some(spec) = &config.fault_spec {
                forward.push("--fault-spec".to_string());
                forward.push(spec.clone());
            }
            let command = crate::dist::worker_command(config.worker_cmd.as_deref())?;
            Some(Coordinator::spawn(
                config.workers,
                &command,
                &forward,
                DistConfig {
                    shards: config.shards.unwrap_or(0),
                    ..DistConfig::default()
                },
            )?)
        } else {
            None
        };
        let mut builder = Engine::builder().admission(config.admission);
        if let Some(threads) = config.threads {
            builder = builder.threads(threads);
        }
        if let Some(shards) = config.shards {
            builder = builder.shards(shards);
        }
        if let Some(dir) = config.cache_dir {
            builder = builder.cache_dir(dir);
        }
        if let Some(plan) = &fault {
            builder = builder.fault_plan(Arc::clone(plan));
        }
        let engine = builder.build()?;
        let listener = TcpListener::bind(&config.addr)?;
        let self_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            state: Arc::new(ServiceState {
                engine,
                corpus,
                started: Instant::now(),
                shutdown: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                drain_started: AtomicBool::new(false),
                req_ids: AtomicU64::new(0),
                self_addr,
                auth_token: config.auth_token,
                fault,
                io_timeout: (config.io_timeout_s > 0)
                    .then(|| Duration::from_secs(config.io_timeout_s)),
                max_connections: config.max_connections,
                connections: AtomicU64::new(0),
                connections_active: AtomicUsize::new(0),
                connections_shed: AtomicU64::new(0),
                plans_served: AtomicU64::new(0),
                plans_shed: AtomicU64::new(0),
                records_streamed: AtomicU64::new(0),
                retries_total: AtomicU64::new(0),
                quarantined_total: AtomicU64::new(0),
                shard_retries_total: AtomicU64::new(0),
                latencies: Mutex::new(HashMap::new()),
                dist,
            }),
        })
    }

    /// The bound address — the way to learn the real port after binding
    /// `:0`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A point-in-time metrics snapshot (the same payload a `metrics`
    /// request receives on the wire).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state.snapshot()
    }

    /// Serves connections on the current thread until shut down (via a
    /// [`ServiceHandle`]) or the listener dies. Each connection gets its
    /// own thread; requests within a connection are answered in order.
    /// Accepts past the `--max-connections` bound are answered with one
    /// typed `"overloaded"` envelope and closed.
    pub fn run(self) -> Result<(), EngineError> {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let active = self.state.connections_active.load(Ordering::Acquire);
            if self.state.max_connections > 0 && active >= self.state.max_connections {
                self.state.connections_shed.fetch_add(1, Ordering::Relaxed);
                let error = EngineError::ConnectionsExhausted {
                    active,
                    bound: self.state.max_connections,
                };
                let _ = writeln!(stream, "{}", error.wire_json());
                continue;
            }
            self.state.connections.fetch_add(1, Ordering::Relaxed);
            self.state.connections_active.fetch_add(1, Ordering::AcqRel);
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || {
                // The guard decrements even if the handler panics, so a
                // poisoned connection never wedges the accept gate.
                struct ActiveGuard(Arc<ServiceState>);
                impl Drop for ActiveGuard {
                    fn drop(&mut self) {
                        self.0.connections_active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                let _guard = ActiveGuard(Arc::clone(&state));
                handle_connection(&state, stream);
            });
        }
        // Graceful drain: the accept loop is closed, but an admitted plan
        // may still be streaming on its connection thread. Return (and,
        // in the daemon, exit) only once every permit is back, so no
        // in-flight record or summary line is lost.
        while self.state.engine.active_plans() > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    /// [`Service::run`] on a background thread, returning the handle
    /// that can stop it.
    pub fn spawn(self) -> io::Result<ServiceHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.run());
        Ok(ServiceHandle {
            addr,
            state,
            thread: Some(thread),
        })
    }
}

fn handle_connection(state: &Arc<ServiceState>, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|addr| addr.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    // Flushed record lines should hit the wire immediately — a streaming
    // client is latency-sensitive and the lines are small.
    let _ = stream.set_nodelay(true);
    // Deadlines on both halves: a client that stalls mid-request or
    // stops draining its record feed times out and frees this thread.
    let _ = stream.set_read_timeout(state.io_timeout);
    let _ = stream.set_write_timeout(state.io_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            // EOF or a dead socket: the client is done.
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if state.respond(trimmed, &peer, &mut writer).is_err() {
            return;
        }
    }
}

/// A running background service: the bound address plus the means to
/// stop it.
pub struct ServiceHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    thread: Option<std::thread::JoinHandle<Result<(), EngineError>>>,
}

impl ServiceHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time metrics snapshot, read directly off the shared
    /// state (no connection needed).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state.snapshot()
    }

    /// Whether the accept loop has exited — true after a graceful drain
    /// (`{"shutdown": true}`) has run to completion.
    pub fn is_finished(&self) -> bool {
        match &self.thread {
            Some(thread) => thread.is_finished(),
            None => true,
        }
    }

    /// Stops accepting connections and joins the accept loop. In-flight
    /// connections finish their current request on their own threads.
    pub fn stop(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The shared `main` of the `veritasd` binary and `veritas serve`:
/// parse flags, bind, announce the address on stdout, and serve forever.
///
/// The announcement line (`veritasd: listening on <addr>`) is the
/// machine-readable readiness signal — tests and scripts bind `:0` and
/// parse the real port from it.
pub fn run_cli(args: &[String]) -> Result<(), EngineError> {
    let config = ServiceConfig::parse(args)?;
    let admission = config.admission;
    let service = Service::bind(config)?;
    let addr = service.local_addr()?;
    println!("veritasd: listening on {addr}");
    io::stdout().flush()?;
    eprintln!(
        "veritasd: {} resident sessions, admission bound {admission}",
        service.state.corpus.len()
    );
    service.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn config_parses_the_daemon_flags() {
        let config = ServiceConfig::parse(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--synthetic",
            "3",
            "--seed",
            "11",
            "--threads",
            "2",
            "--shards",
            "2",
            "--cache-dir",
            "/tmp/vcache",
            "--admission",
            "8",
            "--io-timeout",
            "5",
            "--max-connections",
            "64",
            "--auth-token",
            "hunter2",
            "--fault-spec",
            "seed=7,compute=0.1",
            "--workers",
            "3",
            "--worker-cmd",
            "./veritasd",
        ]))
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert!(matches!(
            config.corpus,
            CorpusSource::Synthetic {
                sessions: 3,
                seed: 11
            }
        ));
        assert_eq!(config.threads, Some(2));
        assert_eq!(config.shards, Some(2));
        assert_eq!(
            config.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/vcache"))
        );
        assert_eq!(config.admission, 8);
        assert_eq!(config.io_timeout_s, 5);
        assert_eq!(config.max_connections, 64);
        assert_eq!(config.auth_token.as_deref(), Some("hunter2"));
        assert_eq!(config.fault_spec.as_deref(), Some("seed=7,compute=0.1"));
        assert_eq!(config.workers, 3);
        assert_eq!(config.worker_cmd.as_deref(), Some("./veritasd"));
    }

    #[test]
    fn corpus_paths_dispatch_on_the_vcorp_extension() {
        let binary = ServiceConfig::parse(&args(&["--corpus", "traces/corpus.vcorp"])).unwrap();
        assert!(matches!(binary.corpus, CorpusSource::Vcorp(_)));
        let json = ServiceConfig::parse(&args(&["--corpus", "traces/sessions"])).unwrap();
        assert!(matches!(json.corpus, CorpusSource::Dir(_)));
    }

    #[test]
    fn config_rejects_bad_flag_combinations() {
        for bad in [
            &["--corpus", "dir", "--synthetic", "2"][..],
            &["--bogus"][..],
            &["--threads"][..],
            &["--admission", "many"][..],
            &["--io-timeout", "soon"][..],
            &["--max-connections"][..],
        ] {
            assert!(matches!(
                ServiceConfig::parse(&args(bad)),
                Err(EngineError::Config(_))
            ));
        }
    }

    #[test]
    fn request_lines_parse_strictly() {
        let query: Request =
            serde_json::from_str(r#"{"query": {"queries": [{"id": "a", "kind": "abduction"}]}}"#)
                .unwrap();
        assert!(query.query.is_some());
        assert!(!query.stream && !query.metrics);
        let metrics: Request = serde_json::from_str(r#"{"metrics": true}"#).unwrap();
        assert!(metrics.metrics && metrics.query.is_none());
        let drain: Request =
            serde_json::from_str(r#"{"shutdown": true, "auth": "hunter2"}"#).unwrap();
        assert!(drain.shutdown && drain.query.is_none() && !drain.metrics);
        assert_eq!(drain.auth.as_deref(), Some("hunter2"));
        let sharded: Request = serde_json::from_str(
            r#"{"query": {"queries": [{"id": "a", "kind": "abduction"}]},
                "shard": {"index": 1, "of": 3}}"#,
        )
        .unwrap();
        let shard = sharded.shard.expect("the shard selector must parse");
        assert_eq!((shard.index, shard.of), (1, 3));
        assert_eq!(sharded.columns, None);
        let with_columns: Request = serde_json::from_str(
            r#"{"query": {"queries": [{"id": "a", "kind": "abduction"}]},
                "shard": {"index": 0, "of": 2}, "columns": 8}"#,
        )
        .unwrap();
        assert_eq!(with_columns.columns, Some(8));
        assert!(serde_json::from_str::<Request>(r#"{"querry": {}}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"[1, 2]"#).is_err());
        // A shard selector is strict too: both members, nothing else.
        assert!(serde_json::from_str::<Request>(
            r#"{"query": {"queries": []}, "shard": {"index": 0}}"#
        )
        .is_err());
        assert!(serde_json::from_str::<Request>(
            r#"{"query": {"queries": []}, "shard": {"index": 0, "of": 2, "x": 1}}"#
        )
        .is_err());
    }

    #[test]
    fn token_comparison_matches_only_exact_secrets() {
        assert!(constant_time_eq("", ""));
        assert!(constant_time_eq("hunter2", "hunter2"));
        assert!(!constant_time_eq("hunter2", "hunter3"));
        assert!(!constant_time_eq("hunter2", "hunter2 "));
        assert!(!constant_time_eq("hunter2", ""));
        assert!(!constant_time_eq("", "hunter2"));
    }

    #[test]
    fn a_malformed_fault_spec_is_a_config_error_at_bind() {
        let config = ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            fault_spec: Some("seed=nope".to_string()),
            ..ServiceConfig::default()
        };
        let error = match Service::bind(config) {
            Ok(_) => panic!("a malformed fault spec must not bind"),
            Err(error) => error,
        };
        match error {
            EngineError::Config(detail) => {
                assert!(detail.contains("--fault-spec"), "got: {detail}")
            }
            other => panic!("expected a Config error, got {other:?}"),
        }
    }
}
