//! The executors: a blocking work-stealing pool over an atomic cursor,
//! and a streaming variant that pushes results through a bounded channel.
//!
//! Workers claim job indices from a shared [`AtomicUsize`] with
//! `fetch_add`, so idle workers "steal" whatever work remains the instant
//! they finish — no job queue, no lock, no contention beyond one atomic
//! increment per job. The blocking [`execute_indexed`] collects results
//! per worker and merges them in input order at the end, so the output is
//! deterministic regardless of which worker ran which job. The streaming
//! [`stream_groups`] instead sends each `(index, result)` pair through a
//! bounded [`mpsc::sync_channel`] the moment it completes, partitions its
//! jobs into groups (corpus shards), and detaches its workers so the
//! caller can consume incrementally while execution continues.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

std::thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads to use by default: the available parallelism
/// minus one (leaving a core for the coordinating thread), at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

/// Whether the current thread is an executor worker. Nested parallelism
/// guards check this: a job that would itself fan out (e.g. building a
/// large emission table) must fall back to serial execution when it is
/// already running inside the pool, or a batch of such jobs would spawn
/// up to `threads²` threads.
pub fn on_worker_thread() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Runs `f(0..count)` across up to `threads` workers, returning the results
/// in index order.
///
/// This is the primitive the engine fans query batches out with; it is also
/// what `veritas_bench::parallel_map` delegates to. Jobs are claimed with a
/// single relaxed `fetch_add` on a shared cursor, so scheduling is
/// lock-free and naturally load-balanced: a worker that lands a cheap job
/// immediately claims the next one.
///
/// # Panics
///
/// Propagates the panic of any job closure after all workers have stopped.
pub fn execute_indexed<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(count.max(1));
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|flag| flag.set(true));
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        local.push((index, f(index)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise a job closure's panic with its original payload
                // so the caller sees the real diagnostic, not a generic
                // join failure.
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut merged: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    merged.sort_unstable_by_key(|(index, _)| *index);
    merged.into_iter().map(|(_, result)| result).collect()
}

/// Runs grouped jobs across detached workers, streaming each completed
/// `(job index, result)` pair through a bounded channel.
///
/// `groups` partitions the job indices (the engine partitions work units
/// by corpus shard); each group has its own atomic cursor, so a group is
/// drained in order by the workers assigned to it. Worker `t` starts on
/// group `t % groups.len()` and moves to the next group when its current
/// one is exhausted — threads never idle while any shard still has work,
/// even when `threads < groups` or the shards are unbalanced.
///
/// The channel holds at most `capacity` undelivered results: when the
/// consumer falls behind, workers block on `send`, bounding memory by
/// `capacity` records instead of the whole result set. Dropping the
/// receiver shuts the pool down: every subsequent `send` fails and the
/// workers exit. A panicking job poisons nothing — the worker unwinds,
/// its channel handle drops, and the caller observes the panic by joining
/// the returned handles.
pub fn stream_groups<R, F>(
    groups: Vec<Vec<usize>>,
    threads: usize,
    capacity: usize,
    job: F,
) -> (mpsc::Receiver<(usize, R)>, Vec<std::thread::JoinHandle<()>>)
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    let total: usize = groups.iter().map(Vec::len).sum();
    let threads = threads.max(1).min(total.max(1));
    let job = Arc::new(job);
    let groups: Arc<Vec<(Vec<usize>, AtomicUsize)>> = Arc::new(
        groups
            .into_iter()
            .map(|indices| (indices, AtomicUsize::new(0)))
            .collect(),
    );
    let (tx, rx) = mpsc::sync_channel(capacity.max(1));
    let workers = (0..threads)
        .map(|t| {
            let groups = Arc::clone(&groups);
            let job = Arc::clone(&job);
            let tx = tx.clone();
            std::thread::spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                for offset in 0..groups.len() {
                    let (indices, cursor) = &groups[(t + offset) % groups.len()];
                    loop {
                        let at = cursor.fetch_add(1, Ordering::Relaxed);
                        if at >= indices.len() {
                            break;
                        }
                        let index = indices[at];
                        if tx.send((index, job(index))).is_err() {
                            return; // receiver gone — the run was abandoned
                        }
                    }
                }
            })
        })
        .collect();
    (rx, workers)
}

/// Runs `job` with panic isolation: a panic is caught and rendered as an
/// `Err` carrying the panic payload's message instead of unwinding
/// through the worker.
///
/// This is the supervision primitive the engine wraps every work unit
/// in: one poisoned unit (a bug, or an injected `ComputePanic` fault)
/// becomes a typed per-unit error record, and the worker thread — and
/// with it every other unit on its shard — survives.
pub fn run_isolated<R>(job: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).map_err(|payload| {
        if let Some(message) = payload.downcast_ref::<&str>() {
            (*message).to_string()
        } else if let Some(message) = payload.downcast_ref::<String>() {
            message.clone()
        } else {
            "worker panicked with a non-string payload".to_string()
        }
    })
}

/// Maps `f` over a shared slice with the atomic-cursor worker pool,
/// preserving input order in the output.
pub fn execute<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    execute_indexed(items.len(), threads, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let out = execute_indexed(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let _ = execute_indexed(64, 8, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn handles_empty_and_single_thread() {
        let empty: Vec<usize> = execute_indexed(0, 4, |i| i);
        assert!(empty.is_empty());
        let out = execute(&["a", "bb", "ccc"], 1, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn stream_groups_delivers_every_job_exactly_once() {
        let groups = vec![vec![0, 1, 2], vec![3, 4], vec![5]];
        let (rx, workers) = stream_groups(groups, 4, 2, |i| i * 10);
        let mut received: Vec<(usize, usize)> = rx.iter().collect();
        for handle in workers {
            handle.join().unwrap();
        }
        received.sort_unstable();
        assert_eq!(
            received,
            (0..6).map(|i| (i, i * 10)).collect::<Vec<_>>(),
            "every grouped job must arrive exactly once"
        );
    }

    #[test]
    fn stream_groups_with_fewer_threads_than_groups_drains_all_groups() {
        let groups = vec![vec![0], vec![1], vec![2], vec![3]];
        let (rx, workers) = stream_groups(groups, 1, 1, |i| i);
        let mut received: Vec<usize> = rx.iter().map(|(_, r)| r).collect();
        for handle in workers {
            handle.join().unwrap();
        }
        received.sort_unstable();
        assert_eq!(received, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stream_workers_stop_when_the_receiver_is_dropped() {
        // 64 jobs, capacity 1: dropping the receiver after one result must
        // still let every worker terminate.
        let (rx, workers) = stream_groups(vec![(0..64).collect()], 2, 1, |i| i);
        let first = rx.recv().unwrap();
        assert!(first.0 < 64);
        drop(rx);
        for handle in workers {
            handle.join().unwrap();
        }
    }

    #[test]
    fn stream_workers_are_marked_as_workers() {
        let (rx, workers) = stream_groups(vec![vec![0, 1]], 2, 4, |_| on_worker_thread());
        let flags: Vec<bool> = rx.iter().map(|(_, f)| f).collect();
        for handle in workers {
            handle.join().unwrap();
        }
        assert!(flags.iter().all(|&f| f));
    }

    #[test]
    fn run_isolated_catches_panics_and_extracts_the_message() {
        assert_eq!(run_isolated(|| 42), Ok(42));
        let err = run_isolated(|| -> u32 { panic!("static str payload") }).unwrap_err();
        assert_eq!(err, "static str payload");
        let err = run_isolated(|| -> u32 { panic!("formatted {}", "payload") }).unwrap_err();
        assert_eq!(err, "formatted payload");
        let err = run_isolated(|| -> u32 { std::panic::panic_any(7u8) }).unwrap_err();
        assert!(err.contains("non-string payload"));
    }

    #[test]
    fn worker_threads_are_marked_for_nested_parallelism_guards() {
        assert!(
            !on_worker_thread(),
            "the coordinating thread is not a worker"
        );
        let flags = execute_indexed(16, 4, |_| on_worker_thread());
        assert!(
            flags.iter().all(|&in_worker| in_worker),
            "every job must observe that it runs on a pool worker"
        );
        assert!(
            !on_worker_thread(),
            "the marker must not leak to the caller"
        );
    }
}
