//! `veritas_engine`: a plan-based, streaming causal-query engine over
//! session corpora.
//!
//! The public API is a three-stage pipeline — **compile → execute →
//! consume** — exposed entirely through this crate root:
//!
//! 1. **Compile** — [`QueryPlan::compile`] turns a declarative
//!    [`QuerySet`] (abduction / interventional / counterfactual queries,
//!    plus [`Query::sweep`] config grids and [`Query::aggregate`]
//!    trace-level reductions) into a flat, validated list of
//!    [`WorkUnit`]s with per-config cache fingerprints precomputed and
//!    counterfactual scenarios materialized once per distinct spec.
//! 2. **Execute** — [`Engine::submit`] partitions the corpus into shards
//!    ([`SessionCorpus::shard`]), fans units out across atomic-cursor
//!    worker groups, resolves every abduction through the shared
//!    [`AbductionCache`] (one EHMM posterior per session × config ×
//!    horizon), and pushes each completed [`QueryRecord`] through a
//!    bounded channel. Engines are configured with [`EngineBuilder`]
//!    (threads, shards, persistent cache tier, cache-hit floor,
//!    admission bound) via [`Engine::builder`].
//! 3. **Consume** — the returned [`RunHandle`] is an
//!    `Iterator<Item = QueryRecord>` for incremental consumption
//!    (aggregations fold from the stream without buffering records), and
//!    [`RunHandle::wait`] restores the deterministic batch shape.
//!    [`Engine::run`] is the blocking `compile → submit → wait` wrapper
//!    — an alias, not a second code path.
//!
//! Every failure mode surfaces as one typed [`EngineError`], with a
//! stable machine-readable tag ([`EngineError::kind`]), a wire envelope
//! (`{"error": {"kind": ..., "detail": ...}}`, see [`ErrorEnvelope`]),
//! and a CLI exit-code mapping ([`EngineError::exit_code`]).
//!
//! The `veritas` CLI binary (`src/bin/veritas.rs`) exposes the pipeline
//! end to end: `veritas run queries.json --corpus DIR` (or
//! `--synthetic N`), with `--stream` for record-at-a-time JSONL,
//! `--shards N` for partitioned execution, and `--cache-dir DIR` for the
//! persistent abduction store; plus `veritas bench`,
//! `veritas example-queries`, `veritas validate`, and `veritas serve`.
//!
//! # Running as a service
//!
//! [`Service`] (module [`service`], binary `veritasd`) keeps one
//! resident [`SessionCorpus`] and one warm [`AbductionCache`] behind a
//! TCP listener speaking newline-delimited JSON: clients post a
//! [`QuerySet`] and receive the [`QueryRecord`] feed followed by the
//! [`RunSummary`], byte-identical to what [`Engine::run`] produces
//! in-process. Admission control sheds load past a bounded number of
//! concurrent plans with a typed `"overloaded"` error, and a
//! `{"metrics": true}` request answers with a [`MetricsSnapshot`]
//! (uptime, plans served/active/shed, cache hit tiers, per-query
//! p50/p95/max latency). See the [`service`] module docs for the full
//! protocol.
//!
//! # Persistent cache
//!
//! The abduction cache has an optional disk tier
//! ([`EngineBuilder::cache_dir`], [`DiskStore`]): posteriors are
//! serialized to a cache directory keyed by the `(log, config, horizon)`
//! content fingerprints, so a second run over an unchanged corpus
//! performs **zero** EHMM inferences — every work unit restores its
//! posterior from disk (`"cache": "disk"` in the records, `disk_hits`
//! in the summary). Invalidation is structural: any change to a log or a
//! posterior-relevant config field changes the fingerprint and misses
//! naturally; corrupt or truncated store files are treated as misses,
//! never errors.
//!
//! # Fault injection & supervision
//!
//! The engine carries a supervision layer for chaos testing and
//! production resilience: a seeded, deterministic [`FaultPlan`]
//! ([`EngineBuilder::fault_plan`], `veritas run --fault-spec`,
//! `veritasd --fault-spec`) injects failures at the instrumented sites
//! ([`FaultSite`]: disk-cache reads/writes, `.vcorp` block decodes,
//! abduction compute, worker panics, service socket I/O); a
//! [`RetryPolicy`] ([`EngineBuilder::retry_policy`], `--retry N`)
//! re-runs failed units with bounded, deterministically-jittered
//! exponential backoff and quarantines sessions that exhaust their
//! attempts ([`RunSummary::quarantined`]); worker panics are isolated
//! into typed error records ([`executor::run_isolated`]); and corrupt
//! disk-cache entries self-heal — deleted, recomputed, rewritten
//! ([`CacheStats::healed`]). Under any fault plan with retries enabled,
//! a run over an intact corpus emits records byte-identical to the
//! fault-free run.
//!
//! # Distributed execution
//!
//! The same partitioning that feeds in-process worker threads can feed
//! worker *processes*: a [`Coordinator`] (module [`dist`], front ends
//! `veritas run --workers N` and `veritasd --workers N`) compiles the
//! plan once, farms each [`CorpusShard`] to a pool of `veritasd` workers
//! over the JSONL wire protocol, and merges the record streams back into
//! the exact batch order — and, after timing normalization, the exact
//! bytes — of the single-process run. A worker that dies or hangs costs
//! one shard re-dispatch under the coordinator's [`RetryPolicy`]
//! ([`RunSummary::shard_retries`]), and a shared `--cache-dir` makes the
//! re-execution mostly disk hits. See the [`dist`] module docs for the
//! topology and the retry semantics.
//!
//! # Binary corpora
//!
//! Corpora implement the [`Corpus`] trait, and come in three
//! interchangeable forms: eager [`SessionCorpus`] values (JSON
//! directories via [`SessionCorpus::from_dir`], synthetic via
//! [`SyntheticSpec`]), and lazy [`LazyCorpus`] views over a columnar
//! binary `.vcorp` file (module [`store`]). `veritas ingest DIR --out
//! corpus.vcorp` converts a JSON session directory (appends + compacts
//! with `--append`); opening a `.vcorp` verifies a whole-file checksum
//! and reads only the session index — ids, offsets, and precomputed
//! [`log_fingerprint`]s — so a daemon restart or a cold run parses zero
//! JSON and re-hashes zero floats. Session logs decode on demand per
//! work unit, digest-verified, into a bounded resident set
//! ([`LazyCorpus::with_max_resident`], [`LazyCorpus::with_max_resident_bytes`]),
//! so corpora larger than RAM stream through a run. See the [`store`]
//! module docs for the file layout and versioning rules.
//!
//! Decoding is **query-aware**: [`QueryPlan::compile`] derives the
//! [`ColumnSet`] each query kind actually reads (module
//! [`columns`]), the executor requests logs through
//! [`Corpus::log_projected`], and a [`LazyCorpus`] decodes only those
//! column ranges — per-column digest-verified — instead of the full
//! block. Projection never changes answers or cache keys (the
//! [`log_fingerprint`] is precomputed in the index); disable it with
//! `VERITAS_NO_PROJECTION=1` to A/B against full decodes, and observe it
//! via [`Corpus::residency`] ([`ResidencyStats`]: bytes/columns decoded,
//! peak resident bytes — surfaced by `veritas bench --json` and the
//! service's `{"metrics": true}`). `--mmap` (CLI) /
//! [`LazyCorpus::with_mmap`] back decodes with a memory map instead of
//! positioned reads where the platform supports it.
//!
//! # Example: streaming consumption
//!
//! ```
//! use veritas::VeritasConfig;
//! use veritas_engine::{Engine, Query, QueryPlan, QuerySet, ScenarioSpec, SessionCorpus};
//!
//! let corpus = SessionCorpus::synthetic(2, 7);
//! let set = QuerySet::new("demo", VeritasConfig::paper_default().with_samples(2))
//!     .with_query(Query::abduction("posterior"))
//!     .with_query(Query::counterfactual("what-if-bba", ScenarioSpec::abr("bba")));
//!
//! // Compile once; submit streams records as workers finish them.
//! let plan = QueryPlan::compile(&set, &corpus).unwrap();
//! let engine = Engine::builder().shards(2).build().unwrap();
//! let mut handle = engine.submit(&corpus, &plan).unwrap();
//! let mut seen = 0;
//! for record in &mut handle {
//!     assert!(record.is_ok());
//!     seen += 1;
//! }
//! let summary = handle.into_summary();
//! assert_eq!(seen, 4);
//! assert_eq!(summary.errors, 0);
//! // Both queries touched both sessions, but each session was abduced once.
//! assert_eq!(summary.cache_misses, 2);
//! assert_eq!(summary.cache_hits, 2);
//!
//! // The batch shape: Engine::run == compile + submit + wait.
//! let report = engine.run(&corpus, &set).unwrap();
//! assert_eq!(report.records.len(), 4);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub(crate) mod cache;
pub(crate) mod corpus;
pub mod dist;
pub(crate) mod error;
pub mod executor;
pub(crate) mod fault;
pub(crate) mod persist;
pub(crate) mod plan;
pub(crate) mod query;
pub(crate) mod runner;
pub mod service;
pub mod store;

pub use cache::{
    config_fingerprint, infer_prefix, log_fingerprint, AbductionCache, CacheSource, CacheStats,
};
pub use corpus::{
    Corpus, CorpusSession, CorpusShard, LogRef, ResidencyStats, SessionCorpus, SyntheticSpec,
};
pub use dist::{worker_command, Coordinator, DistConfig, DistHandle, WorkerPool};
pub use error::{EngineError, ErrorEnvelope, WireError};
pub use fault::{FaultPlan, FaultSite};
pub use persist::{DiskLoadOutcome, DiskStore, PersistKey};
pub use plan::{
    AggregateMetric, AggregateSpec, AggregateSummary, ConfigSweep, PlannedConfig, QueryPlan,
    WorkUnit, MAX_SWEEP_VARIANTS,
};
pub use query::{Query, QueryKind, QuerySet, ScenarioSpec};
pub use runner::{
    materialize_scenario, AdmissionPermit, Engine, EngineBuilder, EngineReport, QueryLatency,
    QueryOutput, QueryRecord, RangeSummary, RetryPolicy, RunHandle, RunSummary, AGGREGATE_SESSION,
};
pub use service::{
    CorpusSource, MetricsEnvelope, MetricsSnapshot, Service, ServiceConfig, ServiceHandle,
    SummaryEnvelope, DEFAULT_ADMISSION_BOUND,
};
pub use store::{
    append_dir, columns, ingest_dir, ColumnSet, CorpusMeta, IngestReport, LazyCorpus, VcorpError,
    VcorpWriter, DEFAULT_MAX_RESIDENT, VCORP_VERSION, VCORP_VERSION_MAX,
};
