//! `veritas_engine`: a batched, cached causal-query engine over session
//! corpora.
//!
//! The figure binaries in `veritas_bench` originally re-ran abduction
//! inline for every experiment; this crate turns the reproduction into a
//! reusable engine with four layers:
//!
//! * [`query`] — a declarative, JSON-serializable query spec:
//!   [`QuerySet`]/[`Query`] express abduction, interventional, and
//!   counterfactual questions over a corpus (session selectors,
//!   intervention parameters, sample counts, seeds).
//! * [`cache`] — the [`AbductionCache`]: one EHMM posterior per
//!   (session, config fingerprint, horizon), computed once and shared by
//!   every query that touches it.
//! * [`executor`] — a work-stealing worker pool over an atomic cursor that
//!   fans (query, session) units out across cores.
//! * [`runner`] — the [`Engine`] that ties them together and streams
//!   per-unit [`QueryRecord`]s as JSONL with timing, cache, and error
//!   status.
//!
//! The `veritas` CLI binary (`src/bin/veritas.rs`) exposes the engine end
//! to end: `veritas run queries.json --corpus DIR` (or `--synthetic N`),
//! `veritas bench`, `veritas example-queries`, `veritas validate`.
//!
//! # Example
//!
//! ```
//! use veritas::VeritasConfig;
//! use veritas_engine::{Engine, Query, QuerySet, ScenarioSpec, SessionCorpus};
//!
//! let corpus = SessionCorpus::synthetic(2, 7);
//! let set = QuerySet::new("demo", VeritasConfig::paper_default().with_samples(2))
//!     .with_query(Query::abduction("posterior"))
//!     .with_query(Query::counterfactual("what-if-bba", ScenarioSpec::abr("bba")));
//! let engine = Engine::new();
//! let report = engine.run(&corpus, &set).unwrap();
//! assert_eq!(report.summary.errors, 0);
//! // Both queries touched both sessions, but each session was abduced once.
//! assert_eq!(report.summary.cache_misses, 2);
//! assert_eq!(report.summary.cache_hits, 2);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod corpus;
mod error;
pub mod executor;
pub mod query;
pub mod runner;

pub use cache::{config_fingerprint, infer_prefix, log_fingerprint, AbductionCache, CacheStats};
pub use corpus::{CorpusSession, SessionCorpus, SyntheticSpec};
pub use error::EngineError;
pub use query::{Query, QueryKind, QuerySet, ScenarioSpec};
pub use runner::{
    materialize_scenario, Engine, EngineReport, QueryOutput, QueryRecord, RangeSummary, RunSummary,
};
