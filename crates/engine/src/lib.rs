//! `veritas_engine`: a plan-based, streaming causal-query engine over
//! session corpora.
//!
//! The public API is a three-stage pipeline — **compile → execute →
//! consume**:
//!
//! 1. **Compile** ([`plan`]) — [`QueryPlan::compile`] turns a declarative
//!    [`QuerySet`] (abduction / interventional / counterfactual queries,
//!    plus [`Query::sweep`] config grids and [`Query::aggregate`]
//!    trace-level reductions) into a flat, validated list of
//!    [`WorkUnit`]s with per-config cache fingerprints precomputed and
//!    counterfactual scenarios materialized once per distinct spec.
//! 2. **Execute** ([`runner`], [`executor`], [`cache`], [`corpus`]) —
//!    [`Engine::submit`] partitions the corpus into shards
//!    ([`SessionCorpus::shard`]), fans units out across atomic-cursor
//!    worker groups, resolves every abduction through the shared
//!    [`AbductionCache`] (one EHMM posterior per session × config ×
//!    horizon), and pushes each completed [`QueryRecord`] through a
//!    bounded channel.
//! 3. **Consume** — the returned [`RunHandle`] is an
//!    `Iterator<Item = QueryRecord>` for incremental consumption
//!    (aggregations fold from the stream without buffering records), and
//!    [`RunHandle::wait`] restores the deterministic batch shape.
//!    [`Engine::run`] is the blocking `compile → submit → wait` wrapper.
//!
//! The `veritas` CLI binary (`src/bin/veritas.rs`) exposes the pipeline
//! end to end: `veritas run queries.json --corpus DIR` (or
//! `--synthetic N`), with `--stream` for record-at-a-time JSONL,
//! `--shards N` for partitioned execution, and `--cache-dir DIR` for the
//! persistent abduction store; plus `veritas bench`,
//! `veritas example-queries`, and `veritas validate`.
//!
//! # Persistent cache
//!
//! The abduction cache has an optional disk tier ([`persist`],
//! [`Engine::with_cache_dir`]): posteriors are serialized to a cache
//! directory keyed by the `(log, config, horizon)` content fingerprints,
//! so a second run over an unchanged corpus performs **zero** EHMM
//! inferences — every work unit restores its posterior from disk
//! (`"cache": "disk"` in the records, `disk_hits` in the summary).
//! Invalidation is structural: any change to a log or a
//! posterior-relevant config field changes the fingerprint and misses
//! naturally; corrupt or truncated store files are treated as misses,
//! never errors.
//!
//! # Example: streaming consumption
//!
//! ```
//! use veritas::VeritasConfig;
//! use veritas_engine::{Engine, Query, QueryPlan, QuerySet, ScenarioSpec, SessionCorpus};
//!
//! let corpus = SessionCorpus::synthetic(2, 7);
//! let set = QuerySet::new("demo", VeritasConfig::paper_default().with_samples(2))
//!     .with_query(Query::abduction("posterior"))
//!     .with_query(Query::counterfactual("what-if-bba", ScenarioSpec::abr("bba")));
//!
//! // Compile once; submit streams records as workers finish them.
//! let plan = QueryPlan::compile(&set, &corpus).unwrap();
//! let engine = Engine::new().with_shards(2);
//! let mut handle = engine.submit(&corpus, &plan).unwrap();
//! let mut seen = 0;
//! for record in &mut handle {
//!     assert!(record.is_ok());
//!     seen += 1;
//! }
//! let summary = handle.into_summary();
//! assert_eq!(seen, 4);
//! assert_eq!(summary.errors, 0);
//! // Both queries touched both sessions, but each session was abduced once.
//! assert_eq!(summary.cache_misses, 2);
//! assert_eq!(summary.cache_hits, 2);
//!
//! // The batch shape: Engine::run == compile + submit + wait.
//! let report = engine.run(&corpus, &set).unwrap();
//! assert_eq!(report.records.len(), 4);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod corpus;
mod error;
pub mod executor;
pub mod persist;
pub mod plan;
pub mod query;
pub mod runner;

pub use cache::{
    config_fingerprint, infer_prefix, log_fingerprint, AbductionCache, CacheSource, CacheStats,
};
pub use corpus::{CorpusSession, CorpusShard, SessionCorpus, SyntheticSpec};
pub use error::EngineError;
pub use persist::{DiskStore, PersistKey};
pub use plan::{
    AggregateMetric, AggregateSpec, AggregateSummary, ConfigSweep, PlannedConfig, QueryPlan,
    WorkUnit, MAX_SWEEP_VARIANTS,
};
pub use query::{Query, QueryKind, QuerySet, ScenarioSpec};
pub use runner::{
    materialize_scenario, Engine, EngineReport, QueryLatency, QueryOutput, QueryRecord,
    RangeSummary, RunHandle, RunSummary, AGGREGATE_SESSION,
};
