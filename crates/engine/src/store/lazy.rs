//! [`LazyCorpus`]: a `.vcorp`-backed [`Corpus`] that decodes session
//! logs on demand and keeps only a bounded resident set in memory.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{PlayerConfig, SessionLog};
use veritas_trace::BandwidthTrace;

use super::{decode_block, open_parts, CorpusMeta, IndexEntry, VcorpError};
use crate::corpus::{Corpus, LogRef};
use crate::fault::{FaultPlan, FaultSite};

/// Default ceiling on concurrently resident decoded session logs.
pub const DEFAULT_MAX_RESIDENT: usize = 256;

/// Positioned reads over the backing file. On unix every block read is
/// a lock-free `pread` ([`std::os::unix::fs::FileExt::read_exact_at`]),
/// so concurrent work units — and concurrent *shards*, when several
/// worker threads stream blocks from one corpus — never serialize on a
/// seek mutex; elsewhere a mutexed seek-then-read preserves the exact
/// same semantics.
#[derive(Debug)]
struct PositionedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl PositionedFile {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: Mutex::new(file),
            }
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = self.file.lock().expect("corpus file lock");
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }
}

#[derive(Debug, Default)]
struct Resident {
    map: HashMap<usize, Arc<SessionLog>>,
    /// Decode order, for FIFO eviction.
    order: VecDeque<usize>,
}

/// A corpus served lazily from a `.vcorp` file.
///
/// [`LazyCorpus::open`] verifies the whole file (checksum + index
/// bounds) but decodes *nothing*: it retains the header and the session
/// index — ids, offsets, and precomputed fingerprints — so open time is
/// independent of corpus size beyond the linear checksum scan, and
/// [`Corpus::log_fingerprint`] / [`Corpus::content_fingerprint`] never
/// touch a session block. Logs are decoded (and digest-verified) on
/// first access per session and cached in a FIFO resident set bounded by
/// [`LazyCorpus::with_max_resident`], so a streaming run over a corpus
/// larger than RAM holds only a window of it.
///
/// The deployed setting (asset, player, ABR) is reconstructed from the
/// header exactly as [`crate::SessionCorpus::from_dir`] reconstructs it
/// from the first JSON log, so plans, cache keys, and records are
/// interchangeable between a directory and its ingested `.vcorp`.
#[derive(Debug)]
pub struct LazyCorpus {
    path: PathBuf,
    file: PositionedFile,
    meta: CorpusMeta,
    asset: VideoAsset,
    player: PlayerConfig,
    index: Vec<IndexEntry>,
    resident: Mutex<Resident>,
    max_resident: usize,
    peak_resident: AtomicUsize,
    /// Chaos hook: injects [`FaultSite::Decode`] failures when set.
    fault: Option<Arc<FaultPlan>>,
}

impl LazyCorpus {
    /// Opens and verifies `path` (see [`super::open_parts`]), retaining
    /// only the header and index in memory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, VcorpError> {
        let path = path.as_ref();
        let parts = open_parts(path)?;
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            parts.meta.video_duration_s,
            parts.meta.chunk_duration_s,
            VbrParams::default(),
            parts.meta.asset_seed,
        );
        let player =
            PlayerConfig::paper_default().with_buffer_capacity(parts.meta.buffer_capacity_s);
        Ok(Self {
            path: path.to_path_buf(),
            file: PositionedFile::new(parts.file),
            meta: parts.meta,
            asset,
            player,
            index: parts.index,
            resident: Mutex::new(Resident::default()),
            max_resident: DEFAULT_MAX_RESIDENT,
            peak_resident: AtomicUsize::new(0),
            fault: None,
        })
    }

    /// Caps the resident decoded-log set at `max` sessions (at least 1;
    /// default [`DEFAULT_MAX_RESIDENT`]).
    pub fn with_max_resident(mut self, max: usize) -> Self {
        self.max_resident = max.max(1);
        self
    }

    /// Attaches a fault plan: block decodes consult it and fail
    /// deterministically with a typed [`VcorpError::Corrupt`], surfacing
    /// as a retryable per-unit error. Resident (already-decoded) logs are
    /// never faulted — an injected decode fault is transient, like the
    /// real I/O glitches it stands in for.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The corpus header (deployed setting).
    pub fn meta(&self) -> &CorpusMeta {
        &self.meta
    }

    /// Number of sessions in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the corpus has no sessions (never true for a successfully
    /// opened file — the codec rejects empty corpora).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The id of session `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn session_id_at(&self, index: usize) -> &str {
        &self.index[index].id
    }

    /// The configured resident-set bound.
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    /// Decoded logs currently resident.
    pub fn resident_sessions(&self) -> usize {
        self.resident.lock().expect("resident lock").map.len()
    }

    /// High-water mark of concurrently resident decoded logs — the
    /// observable bound on lazy streaming memory (reported by
    /// `veritas bench --load-sessions`).
    pub fn peak_resident(&self) -> usize {
        self.peak_resident.load(Ordering::Relaxed)
    }

    /// Loads (or returns the resident copy of) session `index`,
    /// verifying the block's column digests and log fingerprint on
    /// decode.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn load_log(&self, index: usize) -> Result<Arc<SessionLog>, VcorpError> {
        if let Some(log) = self.resident.lock().expect("resident lock").map.get(&index) {
            return Ok(Arc::clone(log));
        }
        if let Some(fault) = &self.fault {
            if fault.should_inject(FaultSite::Decode) {
                return Err(VcorpError::Corrupt(format!(
                    "injected block decode fault (session index {index})"
                )));
            }
        }
        let entry = &self.index[index];
        let mut bytes = vec![0u8; entry.block_len as usize];
        self.file.read_exact_at(&mut bytes, entry.offset)?;
        let log = Arc::new(decode_block(&bytes, entry)?);
        let mut resident = self.resident.lock().expect("resident lock");
        if let Some(raced) = resident.map.get(&index) {
            // Another thread decoded the same session concurrently; keep
            // its copy so the FIFO order stays consistent.
            return Ok(Arc::clone(raced));
        }
        while resident.map.len() >= self.max_resident {
            match resident.order.pop_front() {
                Some(evict) => {
                    resident.map.remove(&evict);
                }
                None => break,
            }
        }
        resident.map.insert(index, Arc::clone(&log));
        resident.order.push_back(index);
        let now = resident.map.len();
        self.peak_resident.fetch_max(now, Ordering::Relaxed);
        Ok(log)
    }
}

impl Corpus for LazyCorpus {
    fn len(&self) -> usize {
        self.index.len()
    }

    fn session_id(&self, index: usize) -> &str {
        &self.index[index].id
    }

    fn log(&self, index: usize) -> Result<LogRef<'_>, String> {
        self.load_log(index)
            .map(LogRef::Shared)
            .map_err(|e| e.to_string())
    }

    fn log_fingerprint(&self, index: usize) -> u64 {
        // Served from the index: no block decode, no float re-hash. The
        // stored value is cross-checked against a recompute whenever the
        // block itself is decoded (see `decode_block`).
        self.index[index].log_fingerprint
    }

    fn truth(&self, _index: usize) -> Option<&BandwidthTrace> {
        // Ground truth is never stored: `.vcorp` holds recorded logs,
        // exactly like a JSON session directory.
        None
    }

    fn asset(&self) -> &VideoAsset {
        &self.asset
    }

    fn player(&self) -> &PlayerConfig {
        &self.player
    }

    fn deployed_abr(&self) -> &str {
        &self.meta.deployed_abr
    }
}
