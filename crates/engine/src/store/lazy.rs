//! [`LazyCorpus`]: a `.vcorp`-backed [`Corpus`] that decodes session
//! logs on demand — optionally only the *columns* a query plan demands —
//! and keeps a bounded resident set in memory.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{PlayerConfig, SessionLog};
use veritas_trace::BandwidthTrace;

use super::{
    block_header_len, decode_block_projected, open_parts, projected_ranges, ColumnSet, CorpusMeta,
    IndexEntry, VcorpError,
};
use crate::corpus::{Corpus, LogRef, ResidencyStats};
use crate::fault::{FaultPlan, FaultSite};

/// Default ceiling on concurrently resident decoded session logs.
pub const DEFAULT_MAX_RESIDENT: usize = 256;

/// Positioned reads over the backing file. On unix every block read is
/// a lock-free `pread` ([`std::os::unix::fs::FileExt::read_exact_at`]),
/// so concurrent work units — and concurrent *shards*, when several
/// worker threads stream blocks from one corpus — never serialize on a
/// seek mutex; elsewhere a mutexed seek-then-read preserves the exact
/// same semantics.
#[derive(Debug)]
struct PositionedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl PositionedFile {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: Mutex::new(file),
            }
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = self.file.lock().expect("corpus file lock");
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }

    /// The raw handle, where mapping it is possible (unix only — which
    /// is also the only place [`vmmap::Mmap::map`] can succeed).
    fn for_map(&self) -> Option<&File> {
        #[cfg(unix)]
        {
            Some(&self.file)
        }
        #[cfg(not(unix))]
        {
            None
        }
    }
}

/// One resident decoded log: the log, the columns that were actually
/// decoded into it, and its projected in-memory size for byte-bounded
/// eviction accounting.
#[derive(Debug)]
struct ResidentEntry {
    log: Arc<SessionLog>,
    columns: ColumnSet,
    bytes: usize,
}

#[derive(Debug, Default)]
struct Resident {
    map: HashMap<usize, ResidentEntry>,
    /// Decode order, for FIFO eviction. May contain stale indices (a
    /// widening re-decode re-enqueues its session); eviction skips
    /// entries no longer in the map.
    order: VecDeque<usize>,
    /// Sum of resident entry sizes.
    bytes: usize,
}

/// A corpus served lazily from a `.vcorp` file.
///
/// [`LazyCorpus::open`] verifies the whole file (checksum + index
/// bounds) but decodes *nothing*: it retains the header and the session
/// index — ids, offsets, and precomputed fingerprints — so open time is
/// independent of corpus size beyond the linear checksum scan, and
/// [`Corpus::log_fingerprint`] / [`Corpus::content_fingerprint`] never
/// touch a session block. Logs are decoded (and digest-verified) on
/// first access per session and cached in a FIFO resident set bounded by
/// [`LazyCorpus::with_max_resident`] sessions and, optionally,
/// [`LazyCorpus::with_max_resident_bytes`] of projected log memory, so a
/// streaming run over a corpus larger than RAM holds only a window of it.
///
/// [`LazyCorpus::load_log_projected`] decodes only the columns in a
/// [`ColumnSet`]: the unselected column ranges are never read (one
/// positioned read per contiguous selected range — or a plain slice of
/// the mapping under [`LazyCorpus::with_mmap`]), never digest-checked,
/// and zero-filled in the returned log. A resident log decoded under a
/// narrower set than a later request is *widened*: re-decoded under the
/// union and replaced, so a resident entry always covers every column
/// any holder of it may read. [`LazyCorpus::bytes_decoded`] /
/// [`LazyCorpus::columns_decoded`] count the cumulative decode work, the
/// observable I/O win of projection.
///
/// The deployed setting (asset, player, ABR) is reconstructed from the
/// header exactly as [`crate::SessionCorpus::from_dir`] reconstructs it
/// from the first JSON log, so plans, cache keys, and records are
/// interchangeable between a directory and its ingested `.vcorp`.
#[derive(Debug)]
pub struct LazyCorpus {
    path: PathBuf,
    file: PositionedFile,
    /// Opt-in whole-file mapping ([`LazyCorpus::with_mmap`]); block
    /// decodes slice it instead of issuing positioned reads.
    map: Option<vmmap::Mmap>,
    meta: CorpusMeta,
    asset: VideoAsset,
    player: PlayerConfig,
    index: Vec<IndexEntry>,
    resident: Mutex<Resident>,
    max_resident: usize,
    max_resident_bytes: usize,
    peak_resident: AtomicUsize,
    peak_resident_bytes: AtomicUsize,
    bytes_decoded: AtomicU64,
    columns_decoded: AtomicU64,
    /// Chaos hook: injects [`FaultSite::Decode`] failures when set.
    fault: Option<Arc<FaultPlan>>,
}

impl LazyCorpus {
    /// Opens and verifies `path` (see [`super::open_parts`]), retaining
    /// only the header and index in memory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, VcorpError> {
        let path = path.as_ref();
        let parts = open_parts(path)?;
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            parts.meta.video_duration_s,
            parts.meta.chunk_duration_s,
            VbrParams::default(),
            parts.meta.asset_seed,
        );
        let player =
            PlayerConfig::paper_default().with_buffer_capacity(parts.meta.buffer_capacity_s);
        Ok(Self {
            path: path.to_path_buf(),
            file: PositionedFile::new(parts.file),
            map: None,
            meta: parts.meta,
            asset,
            player,
            index: parts.index,
            resident: Mutex::new(Resident::default()),
            max_resident: DEFAULT_MAX_RESIDENT,
            max_resident_bytes: usize::MAX,
            peak_resident: AtomicUsize::new(0),
            peak_resident_bytes: AtomicUsize::new(0),
            bytes_decoded: AtomicU64::new(0),
            columns_decoded: AtomicU64::new(0),
            fault: None,
        })
    }

    /// Caps the resident decoded-log set at `max` sessions (at least 1;
    /// default [`DEFAULT_MAX_RESIDENT`]).
    pub fn with_max_resident(mut self, max: usize) -> Self {
        self.max_resident = max.max(1);
        self
    }

    /// Caps the resident set at `max` bytes of projected log memory
    /// (at least 1; unbounded by default). Entry sizes are the projected
    /// block sizes — header plus decoded columns — so a set of narrow
    /// projections admits proportionally more sessions than full decodes
    /// would. A single oversized entry is still admitted (the bound
    /// never starves a load); eviction is FIFO, same as the session cap.
    pub fn with_max_resident_bytes(mut self, max: usize) -> Self {
        self.max_resident_bytes = max.max(1);
        self
    }

    /// Switches block reads to an opt-in read-only memory map of the
    /// backing file. Projected decodes then copy only the column slices
    /// they return — no per-range positioned reads. Falls back silently
    /// to the positioned-read path when mapping is unsupported (non-unix)
    /// or refused by the OS; [`LazyCorpus::is_mapped`] reports which path
    /// is active.
    pub fn with_mmap(mut self) -> Self {
        self.map = self
            .file
            .for_map()
            .and_then(|file| vmmap::Mmap::map(file).ok());
        self
    }

    /// Whether block reads are served from a memory map
    /// ([`LazyCorpus::with_mmap`]) rather than positioned reads.
    pub fn is_mapped(&self) -> bool {
        self.map.is_some()
    }

    /// Attaches a fault plan: block decodes consult it and fail
    /// deterministically with a typed [`VcorpError::Corrupt`], surfacing
    /// as a retryable per-unit error. Resident (already-decoded) logs are
    /// never faulted — an injected decode fault is transient, like the
    /// real I/O glitches it stands in for.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The corpus header (deployed setting).
    pub fn meta(&self) -> &CorpusMeta {
        &self.meta
    }

    /// Number of sessions in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the corpus has no sessions (never true for a successfully
    /// opened file — the codec rejects empty corpora).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The id of session `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn session_id_at(&self, index: usize) -> &str {
        &self.index[index].id
    }

    /// The configured resident-set session bound.
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    /// Decoded logs currently resident.
    pub fn resident_sessions(&self) -> usize {
        self.resident.lock().expect("resident lock").map.len()
    }

    /// Projected bytes of the currently resident decoded logs.
    pub fn resident_bytes(&self) -> usize {
        self.resident.lock().expect("resident lock").bytes
    }

    /// High-water mark of concurrently resident decoded logs — the
    /// observable bound on lazy streaming memory (reported by
    /// `veritas bench --load-sessions`).
    pub fn peak_resident(&self) -> usize {
        self.peak_resident.load(Ordering::Relaxed)
    }

    /// High-water mark of resident projected log bytes — the
    /// size-aware companion of [`LazyCorpus::peak_resident`], which
    /// counts sessions regardless of their size.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident_bytes.load(Ordering::Relaxed)
    }

    /// Cumulative bytes of block data decoded (header + selected column
    /// ranges, summed over every decode including widenings). Under full
    /// decodes this equals the sum of loaded block lengths; under
    /// projection it is the measure of the pruning win.
    pub fn bytes_decoded(&self) -> u64 {
        self.bytes_decoded.load(Ordering::Relaxed)
    }

    /// Cumulative number of per-session columns decoded (≤ 18 per
    /// decode).
    pub fn columns_decoded(&self) -> u64 {
        self.columns_decoded.load(Ordering::Relaxed)
    }

    /// Loads (or returns the resident copy of) session `index`, fully:
    /// every column decoded, digest-verified, and the recomputed log
    /// fingerprint checked against the stored one.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn load_log(&self, index: usize) -> Result<Arc<SessionLog>, VcorpError> {
        self.load_log_projected(index, ColumnSet::all())
    }

    /// Loads session `index` with at least the columns in `cols` decoded
    /// and digest-verified; unselected columns are zero-filled and
    /// *unverified* (their digests are still checked by any later full
    /// decode). A resident copy decoded under a superset is returned
    /// as-is; a narrower resident copy is widened (re-decoded under the
    /// union) and replaced, so every outstanding `Arc` of a session saw
    /// at least the columns it asked for.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn load_log_projected(
        &self,
        index: usize,
        cols: ColumnSet,
    ) -> Result<Arc<SessionLog>, VcorpError> {
        loop {
            // Resident hit — or the widened target a miss must decode.
            let want = {
                let resident = self.resident.lock().expect("resident lock");
                match resident.map.get(&index) {
                    Some(entry) if entry.columns.is_superset_of(cols) => {
                        return Ok(Arc::clone(&entry.log))
                    }
                    Some(entry) => entry.columns.union(cols),
                    None => cols,
                }
            };
            if let Some(fault) = &self.fault {
                if fault.should_inject(FaultSite::Decode) {
                    return Err(VcorpError::Corrupt(format!(
                        "injected block decode fault (session index {index})"
                    )));
                }
            }
            let (log, decoded_bytes) = self.decode_projected(index, want)?;
            let log = Arc::new(log);
            let mut resident = self.resident.lock().expect("resident lock");
            match resident.map.get(&index) {
                // Another thread decoded the same session concurrently
                // with everything we need; keep its copy.
                Some(raced) if raced.columns.is_superset_of(cols) => {
                    return Ok(Arc::clone(&raced.log))
                }
                // It decoded columns we did not: neither copy covers
                // both demands. Retry (rare) — the next pass widens over
                // the union.
                Some(raced) if !want.is_superset_of(raced.columns) => continue,
                _ => {}
            }
            if let Some(old) = resident.map.remove(&index) {
                resident.bytes -= old.bytes;
            }
            while !resident.order.is_empty()
                && (resident.map.len() >= self.max_resident
                    || resident.bytes.saturating_add(decoded_bytes) > self.max_resident_bytes)
            {
                let evict = resident.order.pop_front().expect("non-empty order");
                if let Some(old) = resident.map.remove(&evict) {
                    resident.bytes -= old.bytes;
                }
            }
            resident.map.insert(
                index,
                ResidentEntry {
                    log: Arc::clone(&log),
                    columns: want,
                    bytes: decoded_bytes,
                },
            );
            resident.order.push_back(index);
            resident.bytes += decoded_bytes;
            self.peak_resident
                .fetch_max(resident.map.len(), Ordering::Relaxed);
            self.peak_resident_bytes
                .fetch_max(resident.bytes, Ordering::Relaxed);
            return Ok(log);
        }
    }

    /// Reads and decodes the block of session `index` restricted to
    /// `cols`, returning the log and the number of block bytes actually
    /// decoded (header + selected columns).
    fn decode_projected(
        &self,
        index: usize,
        cols: ColumnSet,
    ) -> Result<(SessionLog, usize), VcorpError> {
        let entry = &self.index[index];
        let block_len = entry.block_len as usize;
        let chunks = entry.chunk_count as usize;
        let header_len = block_header_len(entry).ok_or_else(|| {
            VcorpError::Corrupt(format!(
                "session `{}`: block is shorter than its column region",
                entry.id
            ))
        })?;
        let decoded_bytes = header_len + cols.len() * chunks * 8;
        let log = if let Some(map) = &self.map {
            let start = entry.offset as usize;
            let bytes = map
                .as_slice()
                .get(start..start + block_len)
                .ok_or_else(|| {
                    VcorpError::Corrupt(format!(
                        "session `{}`: block extends past the mapped file",
                        entry.id
                    ))
                })?;
            decode_block_projected(bytes, entry, cols)?
        } else if cols.is_all() {
            let mut bytes = vec![0u8; block_len];
            self.file.read_exact_at(&mut bytes, entry.offset)?;
            decode_block_projected(&bytes, entry, cols)?
        } else {
            // Only the header and the selected column ranges are read;
            // the rest of the buffer stays zeroed and is never examined
            // by the projected decode.
            let mut bytes = vec![0u8; block_len];
            for (start, len) in projected_ranges(header_len, chunks, cols) {
                if start + len > block_len {
                    return Err(VcorpError::Corrupt(format!(
                        "session `{}`: column range extends past its block",
                        entry.id
                    )));
                }
                self.file
                    .read_exact_at(&mut bytes[start..start + len], entry.offset + start as u64)?;
            }
            decode_block_projected(&bytes, entry, cols)?
        };
        self.bytes_decoded
            .fetch_add(decoded_bytes as u64, Ordering::Relaxed);
        self.columns_decoded
            .fetch_add(cols.len() as u64, Ordering::Relaxed);
        Ok((log, decoded_bytes))
    }
}

impl Corpus for LazyCorpus {
    fn len(&self) -> usize {
        self.index.len()
    }

    fn session_id(&self, index: usize) -> &str {
        &self.index[index].id
    }

    fn log(&self, index: usize) -> Result<LogRef<'_>, String> {
        self.load_log(index)
            .map(LogRef::Shared)
            .map_err(|e| e.to_string())
    }

    fn log_projected(&self, index: usize, columns: ColumnSet) -> Result<LogRef<'_>, String> {
        self.load_log_projected(index, columns)
            .map(LogRef::Shared)
            .map_err(|e| e.to_string())
    }

    fn log_fingerprint(&self, index: usize) -> u64 {
        // Served from the index: no block decode, no float re-hash. The
        // stored value is cross-checked against a recompute whenever the
        // block itself is fully decoded (see `decode_block`).
        self.index[index].log_fingerprint
    }

    fn truth(&self, _index: usize) -> Option<&BandwidthTrace> {
        // Ground truth is never stored: `.vcorp` holds recorded logs,
        // exactly like a JSON session directory.
        None
    }

    fn asset(&self) -> &VideoAsset {
        &self.asset
    }

    fn player(&self) -> &PlayerConfig {
        &self.player
    }

    fn deployed_abr(&self) -> &str {
        &self.meta.deployed_abr
    }

    fn residency(&self) -> Option<ResidencyStats> {
        let (resident_sessions, resident_bytes) = {
            let resident = self.resident.lock().expect("resident lock");
            (resident.map.len(), resident.bytes)
        };
        Some(ResidencyStats {
            resident_sessions,
            resident_bytes,
            peak_resident_sessions: self.peak_resident(),
            peak_resident_bytes: self.peak_resident_bytes(),
            bytes_decoded: self.bytes_decoded(),
            columns_decoded: self.columns_decoded(),
        })
    }
}
