//! Codec tests: bit-exact round-trips over arbitrary bit patterns,
//! rejection of every truncation and byte flip at open, typed failure on
//! future schema versions, lazy-load bounds, and cross-source equivalence
//! with [`SessionCorpus::from_dir`].

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use super::*;
use crate::corpus::{Corpus, SessionCorpus};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veritas_store_test_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// xorshift64* over the full u64 space, reinterpreted as f64 bits:
/// covers NaN payloads, ±0, subnormals, ±inf (same generator as the
/// persist codec tests).
fn bit_source(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        f64::from_bits(state.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }
}

/// A source of ordinary finite values, for logs that must survive a JSON
/// round-trip (serde_json cannot carry NaN/inf).
fn finite_source(start: f64) -> impl FnMut() -> f64 {
    let mut counter = start;
    move || {
        counter += 1.25;
        counter
    }
}

fn synth_log(abr_name: &str, chunks: usize, values: &mut impl FnMut() -> f64) -> SessionLog {
    let records = (0..chunks)
        .map(|i| ChunkRecord {
            index: i,
            quality: i % 5,
            size_bytes: values(),
            ssim: values(),
            wait_before_request_s: values(),
            start_time_s: values(),
            end_time_s: values(),
            download_time_s: values(),
            throughput_mbps: values(),
            buffer_at_request_s: values(),
            rebuffer_s: values(),
            tcp_info: TcpInfo {
                cwnd_segments: values(),
                ssthresh_segments: values(),
                rto_s: values(),
                srtt_s: values(),
                min_rtt_s: values(),
                last_send_gap_s: values(),
            },
            gtbw_at_request_mbps: values(),
        })
        .collect();
    SessionLog {
        abr_name: abr_name.to_string(),
        buffer_capacity_s: values(),
        chunk_duration_s: values(),
        records,
        startup_delay_s: values(),
        total_rebuffer_s: values(),
        session_duration_s: values(),
    }
}

/// A header with sane geometry: the asset regenerated at open must be
/// small regardless of what bit patterns the session blocks carry.
fn meta() -> CorpusMeta {
    CorpusMeta {
        deployed_abr: "mpc".to_string(),
        buffer_capacity_s: 25.0,
        chunk_duration_s: 4.0,
        video_duration_s: 40.0,
        asset_seed: 7,
        note: None,
    }
}

/// Every numeric field of a log as raw bits, in a fixed order — the
/// bit-exactness witness. Reuses [`F64_COLUMNS`] so a column added there
/// is automatically compared here.
fn log_bits(log: &SessionLog) -> Vec<u64> {
    let mut bits = vec![
        log.buffer_capacity_s.to_bits(),
        log.chunk_duration_s.to_bits(),
        log.startup_delay_s.to_bits(),
        log.total_rebuffer_s.to_bits(),
        log.session_duration_s.to_bits(),
        log.records.len() as u64,
    ];
    for record in &log.records {
        bits.push(record.index as u64);
        bits.push(record.quality as u64);
        for (_, get) in &F64_COLUMNS {
            bits.push(get(record).to_bits());
        }
    }
    bits
}

/// Writes a small, fixed, valid corpus and returns its bytes.
fn valid_corpus_bytes(dir: &Path) -> Vec<u8> {
    let path = dir.join("valid.vcorp");
    let mut values = finite_source(0.0);
    let mut writer = VcorpWriter::create(&path, &meta()).expect("create writer");
    for i in 0..3 {
        let log = synth_log("mpc", 4, &mut values);
        writer.append(&format!("s{i}"), &log).expect("append");
    }
    writer.finish().expect("finish");
    fs::read(&path).expect("read corpus back")
}

proptest! {
    /// Arbitrary corpora round-trip *bit patterns*, not values: NaN
    /// payloads, negative zero, subnormals, and infinities all reload
    /// bit-identical through the lazy reader, and the index serves the
    /// same fingerprints a recompute would.
    #[test]
    fn corpora_round_trip_bit_exactly(
        seed in any::<u64>(),
        sessions in 1usize..5,
        chunks in 1usize..10,
    ) {
        let dir = temp_dir("round_trip");
        let path = dir.join("corpus.vcorp");
        let mut values = bit_source(seed);
        let logs: Vec<SessionLog> = (0..sessions)
            .map(|i| synth_log(&format!("abr-{}", "x".repeat(i % 9)), chunks, &mut values))
            .collect();
        let mut writer = VcorpWriter::create(&path, &meta()).expect("create writer");
        for (i, log) in logs.iter().enumerate() {
            writer.append(&format!("s{i}"), log).expect("append");
        }
        let bytes = writer.finish().expect("finish");
        prop_assert_eq!(fs::metadata(&path).expect("stat").len(), bytes);

        let corpus = LazyCorpus::open(&path).expect("open a just-written corpus");
        prop_assert_eq!(corpus.len(), logs.len());
        prop_assert_eq!(corpus.meta(), &meta());
        for (i, log) in logs.iter().enumerate() {
            prop_assert_eq!(corpus.session_id_at(i), format!("s{i}").as_str());
            prop_assert_eq!(Corpus::log_fingerprint(&corpus, i), log_fingerprint(log));
            let loaded = corpus.load_log(i).expect("decode a just-written block");
            prop_assert_eq!(&loaded.abr_name, &log.abr_name);
            prop_assert_eq!(log_bits(&loaded), log_bits(log));
        }
    }

    /// Any prefix truncation is rejected at open as [`VcorpError::Corrupt`]
    /// — never a silently partial corpus, and never a misleading
    /// version error (the version word survives any cut past 16 bytes).
    #[test]
    fn truncated_corpora_are_rejected_at_open(cut in 0usize..4096) {
        let dir = temp_dir("truncation");
        let bytes = valid_corpus_bytes(&dir);
        let cut = cut % bytes.len();
        let path = dir.join("truncated.vcorp");
        fs::write(&path, &bytes[..cut]).expect("write truncated file");
        let err = LazyCorpus::open(&path).expect_err("a truncated corpus must not open");
        prop_assert!(
            matches!(err, VcorpError::Corrupt(_)),
            "expected Corrupt, got: {err}"
        );
    }

    /// Flipping any single byte is caught at open: the magic and version
    /// are compared directly, the trailing checksum covers everything in
    /// between, and FNV-1a's odd multiplier makes a one-byte change
    /// always reach the final hash.
    #[test]
    fn corrupted_corpora_are_rejected_at_open(position in 0usize..4096, flip in 1u8..=255) {
        let dir = temp_dir("byte_flip");
        let mut bytes = valid_corpus_bytes(&dir);
        let position = position % bytes.len();
        bytes[position] ^= flip;
        let path = dir.join("flipped.vcorp");
        fs::write(&path, &bytes).expect("write corrupted file");
        let err = LazyCorpus::open(&path).expect_err("a corrupted corpus must not open");
        prop_assert!(
            matches!(
                err,
                VcorpError::Corrupt(_) | VcorpError::UnsupportedVersion { .. }
            ),
            "expected a format error, got: {err}"
        );
    }
}

proptest! {
    /// A projected decode is bit-identical to the source on every
    /// selected column — over arbitrary bit patterns (NaN payloads,
    /// ±inf, −0.0, subnormals) and an arbitrary column mask — while the
    /// unselected columns come back zero-filled, and the header scalars
    /// always decode bit-exactly.
    #[test]
    fn projected_decodes_are_bit_exact_on_selected_columns(
        seed in any::<u64>(),
        mask in 0u32..(1u32 << ColumnSet::COUNT),
        sessions in 1usize..4,
        chunks in 1usize..8,
    ) {
        let dir = temp_dir("projected_bits");
        let path = dir.join("corpus.vcorp");
        let mut values = bit_source(seed);
        let logs: Vec<SessionLog> = (0..sessions)
            .map(|_| synth_log("mpc", chunks, &mut values))
            .collect();
        let mut writer = VcorpWriter::create(&path, &meta()).expect("create writer");
        for (i, log) in logs.iter().enumerate() {
            writer.append(&format!("s{i}"), log).expect("append");
        }
        writer.finish().expect("finish");

        let cols = ColumnSet::from_bits(mask).expect("mask is in range");
        // A fresh open per mask: nothing resident, so the decode carries
        // exactly `cols` and the zero-fill of the rest is observable.
        let corpus = LazyCorpus::open(&path).expect("open");
        for (i, log) in logs.iter().enumerate() {
            let loaded = corpus
                .load_log_projected(i, cols)
                .expect("projected decode of a valid corpus");
            prop_assert_eq!(&loaded.abr_name, &log.abr_name);
            prop_assert_eq!(
                loaded.buffer_capacity_s.to_bits(),
                log.buffer_capacity_s.to_bits()
            );
            prop_assert_eq!(
                loaded.chunk_duration_s.to_bits(),
                log.chunk_duration_s.to_bits()
            );
            prop_assert_eq!(
                loaded.startup_delay_s.to_bits(),
                log.startup_delay_s.to_bits()
            );
            prop_assert_eq!(
                loaded.total_rebuffer_s.to_bits(),
                log.total_rebuffer_s.to_bits()
            );
            prop_assert_eq!(
                loaded.session_duration_s.to_bits(),
                log.session_duration_s.to_bits()
            );
            prop_assert_eq!(loaded.records.len(), log.records.len());
            for (got, want) in loaded.records.iter().zip(&log.records) {
                let index = if cols.contains(columns::INDEX) { want.index } else { 0 };
                prop_assert_eq!(got.index, index);
                let quality = if cols.contains(columns::QUALITY) { want.quality } else { 0 };
                prop_assert_eq!(got.quality, quality);
                for (c, (name, get)) in F64_COLUMNS.iter().enumerate() {
                    let expected = if cols.contains(2 + c) {
                        get(want).to_bits()
                    } else {
                        0.0f64.to_bits()
                    };
                    prop_assert_eq!(
                        get(got).to_bits(),
                        expected,
                        "column `{}` under mask {:?}",
                        name,
                        cols
                    );
                }
            }
        }
    }
}

/// Per-column digest semantics, demonstrated with a byte flipped *after*
/// open (open itself verifies a whole-file checksum, so a pre-open flip
/// never reaches the block decoder): projections that skip the damaged
/// column still decode bit-exactly, projections that select it — and
/// full decodes — fail typed.
#[test]
fn post_open_column_flips_fail_only_the_projections_that_read_them() {
    let dir = temp_dir("post_open_flip");
    let path = dir.join("corpus.vcorp");
    let mut values = finite_source(0.0);
    let log = synth_log("mpc", 6, &mut values);
    let mut writer = VcorpWriter::create(&path, &meta()).expect("create writer");
    writer.append("s0", &log).expect("append");
    writer.finish().expect("finish");

    // Locate the SSIM column's byte range from the verified index.
    let parts = open_parts(&path).expect("open parts");
    let entry = parts.index[0].clone();
    drop(parts);
    let header_len = block_header_len(&entry).expect("header length");
    let stride = entry.chunk_count as usize * 8;
    let ssim_start = entry.offset as usize + header_len + columns::SSIM * stride;

    // Open first — the retained handle reads whatever the file holds at
    // decode time — then flip one low mantissa byte inside SSIM.
    let corpus = LazyCorpus::open(&path).expect("open before corruption");
    let mut bytes = fs::read(&path).expect("read file");
    bytes[ssim_start + 2] ^= 0x01;
    fs::write(&path, &bytes).expect("rewrite corrupted file");

    // A projection that skips SSIM never reads the damaged bytes: it
    // decodes, and its selected columns are still bit-exact.
    let safe = ColumnSet::of(&[columns::SIZE_BYTES, columns::REBUFFER_S]);
    let loaded = corpus
        .load_log_projected(0, safe)
        .expect("projection skipping the damaged column must decode");
    for (got, want) in loaded.records.iter().zip(&log.records) {
        assert_eq!(got.size_bytes.to_bits(), want.size_bytes.to_bits());
        assert_eq!(got.rebuffer_s.to_bits(), want.rebuffer_s.to_bits());
    }

    // Selecting SSIM (here: a widening re-decode of the resident narrow
    // copy) trips its digest.
    let err = corpus
        .load_log_projected(0, ColumnSet::of(&[columns::SSIM]))
        .expect_err("the damaged column's digest must catch the flip");
    assert!(
        matches!(err, VcorpError::Corrupt(_)),
        "expected Corrupt, got: {err}"
    );

    // So does a full decode, which reads every column.
    let err = corpus
        .load_log(0)
        .expect_err("a full decode must catch the flip");
    assert!(
        matches!(err, VcorpError::Corrupt(_)),
        "expected Corrupt, got: {err}"
    );
}

#[test]
fn mmap_and_pread_decodes_agree_bit_for_bit() {
    let dir = temp_dir("mmap_agreement");
    let path = dir.join("corpus.vcorp");
    let mut values = bit_source(1234);
    let logs: Vec<SessionLog> = (0..4).map(|_| synth_log("mpc", 5, &mut values)).collect();
    let mut writer = VcorpWriter::create(&path, &meta()).expect("create writer");
    for (i, log) in logs.iter().enumerate() {
        writer.append(&format!("s{i}"), log).expect("append");
    }
    writer.finish().expect("finish");

    let cols = ColumnSet::of(&[columns::SSIM, columns::THROUGHPUT_MBPS]);
    let pread = LazyCorpus::open(&path).expect("open pread");
    let mapped = LazyCorpus::open(&path).expect("open mmap").with_mmap();
    for i in 0..logs.len() {
        assert_eq!(
            log_bits(&mapped.load_log(i).expect("mmap full decode")),
            log_bits(&pread.load_log(i).expect("pread full decode")),
        );
    }
    // Fresh opens so both sides decode the projection (nothing resident).
    let pread = LazyCorpus::open(&path).expect("reopen pread");
    let mapped = LazyCorpus::open(&path).expect("reopen mmap").with_mmap();
    for i in 0..logs.len() {
        assert_eq!(
            log_bits(&mapped.load_log_projected(i, cols).expect("mmap projected")),
            log_bits(&pread.load_log_projected(i, cols).expect("pread projected")),
        );
    }
}

#[test]
fn future_schema_versions_fail_typed_before_the_checksum() {
    let dir = temp_dir("future_version");
    let mut bytes = valid_corpus_bytes(&dir);
    // Patch only the version word (to one past the newest readable
    // version): the checksum is now also wrong, but the version must be
    // checked first so the error is actionable.
    bytes[8..16].copy_from_slice(&(VCORP_VERSION_MAX + 1).to_le_bytes());
    let path = dir.join("future.vcorp");
    fs::write(&path, &bytes).expect("write future-version file");
    let err = LazyCorpus::open(&path).expect_err("a future-version corpus must not open");
    match err {
        VcorpError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, VCORP_VERSION_MAX + 1);
            assert_eq!(supported, VCORP_VERSION_MAX);
        }
        other => panic!("expected UnsupportedVersion, got: {other}"),
    }
}

#[test]
fn lazy_loading_bounds_the_resident_set() {
    let dir = temp_dir("resident_bound");
    let path = dir.join("corpus.vcorp");
    let mut values = bit_source(42);
    let logs: Vec<SessionLog> = (0..5).map(|_| synth_log("mpc", 3, &mut values)).collect();
    let mut writer = VcorpWriter::create(&path, &meta()).expect("create writer");
    for (i, log) in logs.iter().enumerate() {
        writer.append(&format!("s{i}"), log).expect("append");
    }
    writer.finish().expect("finish");

    let corpus = LazyCorpus::open(&path).expect("open").with_max_resident(2);
    assert_eq!(corpus.resident_sessions(), 0, "open must decode nothing");
    for i in 0..corpus.len() {
        corpus.load_log(i).expect("load");
        assert!(corpus.resident_sessions() <= 2);
    }
    assert_eq!(corpus.peak_resident(), 2);
    // An evicted session reloads bit-identically.
    let reloaded = corpus.load_log(0).expect("reload evicted session");
    assert_eq!(log_bits(&reloaded), log_bits(&logs[0]));
}

#[test]
fn empty_corpora_are_refused_at_write_and_leave_no_debris() {
    let dir = temp_dir("empty_refusal");
    let writer = VcorpWriter::create(dir.join("empty.vcorp"), &meta()).expect("create writer");
    let err = writer
        .finish()
        .expect_err("an empty corpus must be refused");
    assert!(matches!(err, VcorpError::Corrupt(_)));
    let leftovers: Vec<_> = fs::read_dir(&dir).expect("read dir").collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
}

#[test]
fn duplicate_session_ids_are_refused_at_append() {
    let dir = temp_dir("duplicate_id");
    let mut values = finite_source(0.0);
    let log = synth_log("mpc", 2, &mut values);
    let mut writer = VcorpWriter::create(dir.join("dup.vcorp"), &meta()).expect("create writer");
    writer.append("s0", &log).expect("first append");
    let err = writer
        .append("s0", &log)
        .expect_err("a duplicate id must be refused");
    assert!(matches!(err, VcorpError::Corrupt(_)));
}

#[test]
fn ingested_corpus_is_fingerprint_and_record_identical_to_its_directory() {
    let dir = temp_dir("cross_source");
    let json_dir = dir.join("logs");
    fs::create_dir_all(&json_dir).expect("create json dir");
    let mut values = finite_source(0.0);
    for i in 0..3 {
        let log = synth_log("mpc", 4, &mut values);
        fs::write(json_dir.join(format!("session-{i}.json")), log.to_json())
            .expect("write session json");
    }

    let eager = SessionCorpus::from_dir(&json_dir).expect("load directory");
    let out = dir.join("corpus.vcorp");
    let report = ingest_dir(&json_dir, &out).expect("ingest");
    assert_eq!(report.sessions, 3);
    assert_eq!(report.carried_over, 0);
    assert_eq!(report.replaced, 0);
    let lazy = LazyCorpus::open(&out).expect("open ingested corpus");

    // Same identity end to end: deployed setting, per-session log
    // fingerprints, and the whole-corpus content fingerprint — so plans
    // and cache entries are interchangeable between the two sources.
    assert_eq!(lazy.deployed_fingerprint(), eager.deployed_fingerprint());
    assert_eq!(
        Corpus::content_fingerprint(&lazy),
        Corpus::content_fingerprint(&eager)
    );
    assert_eq!(Corpus::len(&lazy), eager.len());
    for i in 0..eager.len() {
        assert_eq!(Corpus::session_id(&lazy, i), eager.sessions[i].id.as_str());
        assert_eq!(
            Corpus::log_fingerprint(&lazy, i),
            Corpus::log_fingerprint(&eager, i)
        );
        let loaded = lazy.load_log(i).expect("decode");
        assert_eq!(log_bits(&loaded), log_bits(&eager.sessions[i].log));
    }
}

#[test]
fn append_merges_replaces_and_keeps_natural_order() {
    let dir = temp_dir("append_merge");
    let out = dir.join("corpus.vcorp");
    let mut values = finite_source(0.0);

    let dir_a = dir.join("a");
    fs::create_dir_all(&dir_a).expect("create dir a");
    let s1 = synth_log("mpc", 3, &mut values);
    let s3 = synth_log("mpc", 3, &mut values);
    fs::write(dir_a.join("s1.json"), s1.to_json()).expect("write s1");
    fs::write(dir_a.join("s3.json"), s3.to_json()).expect("write s3");
    ingest_dir(&dir_a, &out).expect("initial ingest");

    // s2 is new; s3 supersedes the stored session of the same id.
    let dir_b = dir.join("b");
    fs::create_dir_all(&dir_b).expect("create dir b");
    let s2 = synth_log("mpc", 3, &mut values);
    let s3_replacement = synth_log("mpc", 5, &mut values);
    fs::write(dir_b.join("s2.json"), s2.to_json()).expect("write s2");
    fs::write(dir_b.join("s3.json"), s3_replacement.to_json()).expect("write s3 replacement");
    let report = append_dir(&dir_b, &out).expect("append");
    assert_eq!(report.sessions, 3);
    assert_eq!(report.carried_over, 1);
    assert_eq!(report.replaced, 1);

    let merged = LazyCorpus::open(&out).expect("open merged corpus");
    let ids: Vec<&str> = (0..merged.len()).map(|i| merged.session_id_at(i)).collect();
    assert_eq!(ids, ["s1", "s2", "s3"], "merge keeps natural id order");
    assert_eq!(log_bits(&merged.load_log(0).expect("s1")), log_bits(&s1));
    assert_eq!(log_bits(&merged.load_log(1).expect("s2")), log_bits(&s2));
    assert_eq!(
        log_bits(&merged.load_log(2).expect("s3")),
        log_bits(&s3_replacement),
        "the JSON file must supersede the stored session"
    );
}
