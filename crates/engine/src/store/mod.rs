//! The columnar binary corpus store: `.vcorp` files, streaming ingest,
//! and lazy per-session loading.
//!
//! [`crate::SessionCorpus::from_dir`] parses one JSON file per session,
//! eagerly; at operational corpus sizes (10⁵–10⁶ sessions) parse time and
//! resident memory dominate the (cached) inference, and every run
//! re-hashes raw floats to compute cache fingerprints. This module is the
//! storage layer that removes all three costs:
//!
//! * **`.vcorp` format** — one versioned, checksummed binary file per
//!   corpus: a header carrying the deployed setting, one self-contained
//!   **column-major block** per session (every numeric field stored as
//!   raw little-endian IEEE-754 bits, so a reloaded log is *bit-equal*),
//!   and a trailing session index with byte offsets, per-column FNV
//!   digests, and each session's precomputed
//!   [`log_fingerprint`](crate::log_fingerprint).
//! * **[`LazyCorpus`]** — opens a `.vcorp` by verifying the whole-file
//!   checksum and reading only the header + index; session logs are
//!   decoded on demand per work unit and kept in a bounded FIFO resident
//!   set, so corpora larger than RAM stream through a run. Cache
//!   fingerprints are served from the index — no float re-hashing.
//! * **[`ingest_dir`] / [`append_dir`]** — convert a directory of JSON
//!   session logs into a `.vcorp` (or merge newly arrived logs into an
//!   existing one, then compact), behind `veritas ingest`.
//!
//! # File layout (version 1)
//!
//! Every scalar is a little-endian 64-bit word; strings are a length word
//! followed by UTF-8 bytes zero-padded to a word boundary, so the entire
//! file is word-aligned:
//!
//! ```text
//! magic "VRTSCORP" | version u64
//! header: deployed ABR (string), buffer capacity, chunk duration,
//!         video duration (f64s), asset seed (u64)
//! per-session blocks, back to back, each column-major:
//!     ABR name (string), buffer capacity, chunk duration, startup delay,
//!     total rebuffer, session duration (f64s), chunk count n (u64),
//!     then 18 columns of n values each (chunk index, quality, sizes,
//!     SSIMs, timings, TCP snapshot fields, ground-truth bandwidth)
//! index: session count u64, then per session:
//!     id (string), byte offset, block length, chunk count,
//!     log fingerprint, 18 per-column FNV digests (u64s)
//! index offset u64 | whole-file FNV-1a checksum u64
//! ```
//!
//! The trailing checksum covers every byte between the magic and itself,
//! mixed word-at-a-time through the same FNV-1a primitive as the cache
//! fingerprints and [`crate::persist`] entries. Writes go through a temp
//! file in the destination directory and an atomic rename
//! ([`VcorpWriter`]), so a crash mid-ingest never leaves a half-written
//! corpus under the live name.
//!
//! # Versioning & failure philosophy
//!
//! Unlike the posterior cache (where corruption is a *miss*), a corpus is
//! primary data: any truncation, bit flip, digest mismatch, or length
//! inconsistency is a hard typed error ([`VcorpError::Corrupt`]) at open
//! or first decode — never a silently partial corpus. The version word is
//! checked *before* the checksum, so a file written by a newer schema
//! fails with [`VcorpError::UnsupportedVersion`] rather than a misleading
//! corruption report. Bump [`VCORP_VERSION`] on any incompatible layout
//! change.
//!
//! Backward-compatible header extensions ride on higher versions gated
//! by the same word: version 2 ([`VCORP_VERSION_MAX`]) appends an
//! optional `note` string to the header ([`CorpusMeta::note`]). Files
//! without the field are written at version 1, byte-identical to older
//! binaries' output, and version-1 files load bit-exactly forever — the
//! version word, not probing, decides which fields exist.

mod lazy;

pub use lazy::{LazyCorpus, DEFAULT_MAX_RESIDENT};

/// On-disk column indices of a `.vcorp` session block, for building
/// [`ColumnSet`]s by name. The order is the block layout order: chunk
/// index, quality, then the 16 `f64` fields of
/// [`veritas_player::ChunkRecord`] exactly as `F64_COLUMNS` stores them.
pub mod columns {
    /// Chunk index within the session.
    pub const INDEX: usize = 0;
    /// Quality rung the chunk was fetched at.
    pub const QUALITY: usize = 1;
    /// Chunk size in bytes.
    pub const SIZE_BYTES: usize = 2;
    /// Per-chunk SSIM of the fetched encoding.
    pub const SSIM: usize = 3;
    /// Idle wait before the request was issued, in seconds.
    pub const WAIT_BEFORE_REQUEST_S: usize = 4;
    /// Download start time, in seconds.
    pub const START_TIME_S: usize = 5;
    /// Download end time, in seconds.
    pub const END_TIME_S: usize = 6;
    /// Download duration, in seconds.
    pub const DOWNLOAD_TIME_S: usize = 7;
    /// Observed download throughput, in Mbps.
    pub const THROUGHPUT_MBPS: usize = 8;
    /// Player buffer level when the chunk was requested, in seconds.
    pub const BUFFER_AT_REQUEST_S: usize = 9;
    /// Rebuffer time attributed to the chunk, in seconds.
    pub const REBUFFER_S: usize = 10;
    /// TCP congestion window at request time, in segments.
    pub const CWND_SEGMENTS: usize = 11;
    /// TCP slow-start threshold at request time, in segments.
    pub const SSTHRESH_SEGMENTS: usize = 12;
    /// TCP retransmission timeout at request time, in seconds.
    pub const RTO_S: usize = 13;
    /// TCP smoothed RTT at request time, in seconds.
    pub const SRTT_S: usize = 14;
    /// TCP minimum observed RTT at request time, in seconds.
    pub const MIN_RTT_S: usize = 15;
    /// Gap since the previous TCP send at request time, in seconds.
    pub const LAST_SEND_GAP_S: usize = 16;
    /// Ground-truth bandwidth at request time, in Mbps (synthetic logs).
    pub const GTBW_AT_REQUEST_MBPS: usize = 17;
}

/// A set of `.vcorp` block columns, as a bitset over the
/// [`ColumnSet::COUNT`] on-disk columns (named in [`columns`]).
///
/// Compiled query plans derive one per session — the union of every work
/// unit's column demand — and thread it through
/// [`crate::Corpus::log_projected`] down to the storage layer, which
/// decodes (and digest-verifies) only the selected columns; see
/// [`LazyCorpus`]. An empty set still decodes the block header
/// (session-level scalars), just no per-chunk series. Unselected columns
/// come back zero-filled, so a projected log is only valid for consumers
/// whose demand the set covers — which the plan guarantees.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnSet(u32);

impl ColumnSet {
    /// Number of on-disk columns per session block (chunk index, quality,
    /// and the 16 `f64` fields of [`veritas_player::ChunkRecord`]).
    pub const COUNT: usize = NUM_COLUMNS;

    const ALL_BITS: u32 = (1 << Self::COUNT as u32) - 1;

    /// The empty set.
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Every column — a full decode.
    pub const fn all() -> Self {
        Self(Self::ALL_BITS)
    }

    /// The set containing exactly `columns`.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= ColumnSet::COUNT`.
    pub const fn of(columns: &[usize]) -> Self {
        let mut set = Self::empty();
        let mut i = 0;
        while i < columns.len() {
            set = set.with(columns[i]);
            i += 1;
        }
        set
    }

    /// This set plus `column`.
    ///
    /// # Panics
    ///
    /// Panics if `column >= ColumnSet::COUNT`.
    pub const fn with(self, column: usize) -> Self {
        assert!(column < Self::COUNT, "column index out of range");
        Self(self.0 | 1 << column as u32)
    }

    /// Whether `column` is selected (out-of-range indices are not).
    pub const fn contains(self, column: usize) -> bool {
        column < Self::COUNT && self.0 & (1 << column as u32) != 0
    }

    /// Set union.
    pub const fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Whether `other` is entirely contained in this set.
    pub const fn is_superset_of(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether every column is selected.
    pub const fn is_all(self) -> bool {
        self.0 == Self::ALL_BITS
    }

    /// Whether no column is selected.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of selected columns.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The raw bitmask (bit `i` ⇔ column `i`), for wire transport.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Rebuilds a set from [`ColumnSet::bits`]; `None` if `bits` has any
    /// bit beyond the known columns set (a newer or corrupt producer).
    pub const fn from_bits(bits: u32) -> Option<Self> {
        if bits & !Self::ALL_BITS != 0 {
            None
        } else {
            Some(Self(bits))
        }
    }

    /// Human-readable name of on-disk column `column`.
    ///
    /// # Panics
    ///
    /// Panics if `column >= ColumnSet::COUNT`.
    pub fn name(column: usize) -> &'static str {
        match column {
            0 => "index",
            1 => "quality",
            _ => F64_COLUMNS[column - 2].0,
        }
    }
}

impl fmt::Debug for ColumnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_all() {
            return write!(f, "ColumnSet(all)");
        }
        let mut set = f.debug_set();
        for column in 0..Self::COUNT {
            if self.contains(column) {
                set.entry(&Self::name(column));
            }
        }
        set.finish()
    }
}

use std::collections::HashSet;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use veritas_net::TcpInfo;
use veritas_player::{ChunkRecord, SessionLog};

use crate::cache::{fnv_mix, fnv_mix_f64, log_fingerprint, FNV_OFFSET};
use crate::corpus::{natural_cmp, sorted_json_paths, SyntheticSpec};
use crate::error::EngineError;
use crate::persist::{put_f64, put_u64, Reader};

/// Base schema version of the `.vcorp` layout; bump on any incompatible
/// change so newer files fail typed ([`VcorpError::UnsupportedVersion`])
/// in older binaries instead of decoding as garbage.
pub const VCORP_VERSION: u64 = 1;

/// Newest schema version this binary reads. Version 2 appends one
/// optional free-form `note` string to the header
/// ([`CorpusMeta::note`]); everything else is unchanged. Note-less
/// corpora are still written as version 1, byte-for-byte identical to
/// what version-1-only binaries produce, so the extension costs old
/// files nothing and new files without the field stay readable
/// everywhere.
pub const VCORP_VERSION_MAX: u64 = 2;

/// Leading magic of every corpus file.
const MAGIC: [u8; 8] = *b"VRTSCORP";

/// Decode-time sanity ceilings: corrupted length fields must fail fast
/// instead of driving multi-gigabyte allocations.
const MAX_STR: u64 = 1 << 12;
const MAX_SESSIONS: u64 = 1 << 32;
const MAX_CHUNKS: u64 = 1 << 24;

/// Columns per session block: chunk index, quality, and the 16 `f64`
/// fields of [`ChunkRecord`] (incl. the TCP snapshot).
const NUM_COLUMNS: usize = 2 + F64_COLUMNS.len();

/// Smallest possible index entry (empty id): id-length word, offset,
/// block length, chunk count, log fingerprint, and the column digests.
const ENTRY_MIN_WORDS: usize = 5 + NUM_COLUMNS;

/// Extracts one `f64` column value from a chunk record.
type ColumnGetter = fn(&ChunkRecord) -> f64;

/// The `f64` columns of a block, in on-disk order. Decode rebuilds
/// records positionally from this order (see `decode_block`), so the two
/// must only ever change together — guarded by the round-trip proptest.
const F64_COLUMNS: [(&str, ColumnGetter); 16] = [
    ("size_bytes", |r| r.size_bytes),
    ("ssim", |r| r.ssim),
    ("wait_before_request_s", |r| r.wait_before_request_s),
    ("start_time_s", |r| r.start_time_s),
    ("end_time_s", |r| r.end_time_s),
    ("download_time_s", |r| r.download_time_s),
    ("throughput_mbps", |r| r.throughput_mbps),
    ("buffer_at_request_s", |r| r.buffer_at_request_s),
    ("rebuffer_s", |r| r.rebuffer_s),
    ("cwnd_segments", |r| r.tcp_info.cwnd_segments),
    ("ssthresh_segments", |r| r.tcp_info.ssthresh_segments),
    ("rto_s", |r| r.tcp_info.rto_s),
    ("srtt_s", |r| r.tcp_info.srtt_s),
    ("min_rtt_s", |r| r.tcp_info.min_rtt_s),
    ("last_send_gap_s", |r| r.tcp_info.last_send_gap_s),
    ("gtbw_at_request_mbps", |r| r.gtbw_at_request_mbps),
];

/// Why a `.vcorp` file could not be written, opened, or decoded.
///
/// A corpus is primary data, so — unlike the posterior cache, where any
/// disk problem is a miss — every inconsistency is a hard error. Converts
/// into [`EngineError`] (`Corrupt`/`UnsupportedVersion` →
/// [`EngineError::CorpusFormat`]).
#[derive(Debug)]
pub enum VcorpError {
    /// The file declares a schema version this binary does not speak.
    UnsupportedVersion {
        /// Version word found in the file.
        found: u64,
        /// The version this binary reads and writes ([`VCORP_VERSION`]).
        supported: u64,
    },
    /// The file is structurally inconsistent: bad magic, failed checksum
    /// or column digest, out-of-bounds offsets, truncation, ...
    Corrupt(String),
    /// An underlying filesystem error.
    Io(io::Error),
}

impl fmt::Display for VcorpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcorpError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported corpus format version {found} (this binary reads version {supported})"
            ),
            VcorpError::Corrupt(reason) => write!(f, "corrupt corpus file: {reason}"),
            VcorpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for VcorpError {}

impl From<io::Error> for VcorpError {
    fn from(e: io::Error) -> Self {
        VcorpError::Io(e)
    }
}

/// The deployed-setting header of a `.vcorp` file — everything needed to
/// reconstruct the asset/player/ABR context of
/// [`crate::SessionCorpus::from_dir`] without any session JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusMeta {
    /// Name of the deployed ABR.
    pub deployed_abr: String,
    /// Player buffer capacity in seconds.
    pub buffer_capacity_s: f64,
    /// Chunk duration of the streamed asset in seconds.
    pub chunk_duration_s: f64,
    /// Video duration in seconds (sizes the regenerated asset).
    pub video_duration_s: f64,
    /// Seed of the stand-in generated asset.
    pub asset_seed: u64,
    /// Optional free-form provenance note (version 2 headers). `None`
    /// keeps the file at the base layout ([`VCORP_VERSION`]); `Some`
    /// writes a version-2 header with the note appended.
    pub note: Option<String>,
}

impl CorpusMeta {
    /// Derives the header from a corpus's first session log, exactly as
    /// [`crate::SessionCorpus::from_dir`] derives its deployed setting —
    /// so a `.vcorp` ingested from a directory reconstructs the *same*
    /// asset, player, and deployed fingerprint as loading the directory.
    pub fn for_log(log: &SessionLog) -> Self {
        let spec = SyntheticSpec::default();
        Self {
            deployed_abr: spec.deployed_abr,
            buffer_capacity_s: log.buffer_capacity_s,
            chunk_duration_s: log.chunk_duration_s,
            video_duration_s: log.records.len() as f64 * log.chunk_duration_s,
            asset_seed: spec.seed,
            note: None,
        }
    }
}

/// One session's entry in the trailing index: where its block lives and
/// the integrity/identity digests decode verifies against.
#[derive(Debug, Clone)]
pub(crate) struct IndexEntry {
    pub(crate) id: String,
    pub(crate) offset: u64,
    pub(crate) block_len: u64,
    pub(crate) chunk_count: u64,
    /// The session's [`crate::log_fingerprint`], precomputed at ingest so
    /// runs over a `.vcorp` never re-hash floats to key the cache.
    pub(crate) log_fingerprint: u64,
    pub(crate) column_digests: [u64; NUM_COLUMNS],
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Distinguishes concurrent temp files within one process; names also
/// carry the pid for cross-process uniqueness (same scheme as
/// [`crate::persist::DiskStore`]).
static WRITER_NONCE: AtomicU64 = AtomicU64::new(0);

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
    let pad = (8 - s.len() % 8) % 8;
    buf.extend_from_slice(&[0u8; 8][..pad]);
}

/// Encodes one session block (column-major) and its per-column digests.
fn encode_block(log: &SessionLog) -> (Vec<u8>, [u64; NUM_COLUMNS]) {
    let n = log.records.len();
    let mut buf = Vec::with_capacity(64 + log.abr_name.len() + n * NUM_COLUMNS * 8);
    put_str(&mut buf, &log.abr_name);
    put_f64(&mut buf, log.buffer_capacity_s);
    put_f64(&mut buf, log.chunk_duration_s);
    put_f64(&mut buf, log.startup_delay_s);
    put_f64(&mut buf, log.total_rebuffer_s);
    put_f64(&mut buf, log.session_duration_s);
    put_u64(&mut buf, n as u64);
    let mut digests = [FNV_OFFSET; NUM_COLUMNS];
    for record in &log.records {
        put_u64(&mut buf, record.index as u64);
        fnv_mix(&mut digests[0], record.index as u64);
    }
    for record in &log.records {
        put_u64(&mut buf, record.quality as u64);
        fnv_mix(&mut digests[1], record.quality as u64);
    }
    for (column, (_, get)) in F64_COLUMNS.iter().enumerate() {
        let digest = &mut digests[2 + column];
        for record in &log.records {
            put_f64(&mut buf, get(record));
            fnv_mix_f64(digest, get(record));
        }
    }
    (buf, digests)
}

/// Streams sessions into a new `.vcorp` file.
///
/// The file is written to a temp name in the destination directory and
/// renamed into place by [`VcorpWriter::finish`]; dropping an unfinished
/// writer removes the temp file, so the destination only ever holds a
/// complete, checksummed corpus. Sessions are encoded and flushed as they
/// are appended — ingest never holds more than one decoded log.
#[derive(Debug)]
pub struct VcorpWriter {
    out: Option<BufWriter<File>>,
    final_path: PathBuf,
    tmp_path: PathBuf,
    hash: u64,
    pos: u64,
    index: Vec<IndexEntry>,
    ids: HashSet<String>,
}

impl VcorpWriter {
    /// Creates the temp file and writes the magic, version, and header.
    pub fn create(path: impl Into<PathBuf>, meta: &CorpusMeta) -> Result<Self, VcorpError> {
        let final_path = path.into();
        if meta.deployed_abr.len() as u64 > MAX_STR {
            return Err(VcorpError::Corrupt(format!(
                "deployed ABR name exceeds the {MAX_STR}-byte bound"
            )));
        }
        if meta.note.as_ref().is_some_and(|n| n.len() as u64 > MAX_STR) {
            return Err(VcorpError::Corrupt(format!(
                "corpus note exceeds the {MAX_STR}-byte bound"
            )));
        }
        let parent = match final_path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let tmp_path = parent.join(format!(
            ".tmp-vcorp-{}-{}",
            std::process::id(),
            WRITER_NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let file = File::create(&tmp_path)?;
        let mut writer = Self {
            out: Some(BufWriter::new(file)),
            final_path,
            tmp_path,
            hash: FNV_OFFSET,
            pos: 0,
            index: Vec::new(),
            ids: HashSet::new(),
        };
        writer.write_raw(&MAGIC)?;
        let mut head = Vec::new();
        // A note upgrades the header to version 2; without one the file
        // is written at the base version, byte-identical to what a
        // version-1-only binary would produce.
        put_u64(
            &mut head,
            if meta.note.is_some() {
                VCORP_VERSION_MAX
            } else {
                VCORP_VERSION
            },
        );
        put_str(&mut head, &meta.deployed_abr);
        put_f64(&mut head, meta.buffer_capacity_s);
        put_f64(&mut head, meta.chunk_duration_s);
        put_f64(&mut head, meta.video_duration_s);
        put_u64(&mut head, meta.asset_seed);
        if let Some(note) = &meta.note {
            put_str(&mut head, note);
        }
        writer.write_words(&head)?;
        Ok(writer)
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<(), VcorpError> {
        self.out
            .as_mut()
            .expect("writer is live until finish")
            .write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Writes word-aligned bytes, folding each word into the running
    /// whole-file checksum.
    fn write_words(&mut self, bytes: &[u8]) -> Result<(), VcorpError> {
        debug_assert_eq!(bytes.len() % 8, 0, "vcorp writes are word-aligned");
        for chunk in bytes.chunks_exact(8) {
            fnv_mix(
                &mut self.hash,
                u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")),
            );
        }
        self.write_raw(bytes)
    }

    /// Appends one session: encodes its column block, records its index
    /// entry (offset, digests, precomputed log fingerprint).
    pub fn append(&mut self, id: &str, log: &SessionLog) -> Result<(), VcorpError> {
        if id.len() as u64 > MAX_STR {
            return Err(VcorpError::Corrupt(format!(
                "session id exceeds the {MAX_STR}-byte bound"
            )));
        }
        if log.records.len() as u64 > MAX_CHUNKS {
            return Err(VcorpError::Corrupt(format!(
                "session `{id}` has more than {MAX_CHUNKS} chunks"
            )));
        }
        if self.index.len() as u64 == MAX_SESSIONS {
            return Err(VcorpError::Corrupt(format!(
                "corpus exceeds {MAX_SESSIONS} sessions"
            )));
        }
        if !self.ids.insert(id.to_string()) {
            return Err(VcorpError::Corrupt(format!("duplicate session id `{id}`")));
        }
        let (block, column_digests) = encode_block(log);
        let entry = IndexEntry {
            id: id.to_string(),
            offset: self.pos,
            block_len: block.len() as u64,
            chunk_count: log.records.len() as u64,
            log_fingerprint: log_fingerprint(log),
            column_digests,
        };
        self.write_words(&block)?;
        self.index.push(entry);
        Ok(())
    }

    /// Sessions appended so far.
    pub fn sessions(&self) -> usize {
        self.index.len()
    }

    /// Writes the index and trailer, syncs, and atomically renames the
    /// temp file into place. Returns the final file size in bytes.
    ///
    /// Refuses to finish an empty corpus — an empty `.vcorp` could never
    /// reconstruct a deployed setting, mirroring
    /// [`EngineError::EmptyCorpus`] for JSON directories.
    pub fn finish(mut self) -> Result<u64, VcorpError> {
        if self.index.is_empty() {
            return Err(VcorpError::Corrupt(
                "refusing to write a corpus with no sessions".to_string(),
            ));
        }
        let index_offset = self.pos;
        let mut tail = Vec::new();
        put_u64(&mut tail, self.index.len() as u64);
        for entry in &self.index {
            put_str(&mut tail, &entry.id);
            put_u64(&mut tail, entry.offset);
            put_u64(&mut tail, entry.block_len);
            put_u64(&mut tail, entry.chunk_count);
            put_u64(&mut tail, entry.log_fingerprint);
            for &digest in &entry.column_digests {
                put_u64(&mut tail, digest);
            }
        }
        put_u64(&mut tail, index_offset);
        self.write_words(&tail)?;
        let checksum = self.hash;
        self.write_raw(&checksum.to_le_bytes())?;
        let len = self.pos;
        let mut out = self.out.take().expect("finish consumes the writer");
        out.flush()?;
        out.get_ref().sync_all()?;
        drop(out);
        fs::rename(&self.tmp_path, &self.final_path)?;
        Ok(len)
    }
}

impl Drop for VcorpWriter {
    fn drop(&mut self) {
        // An unfinished (or failed) writer leaves no debris behind.
        if self.out.take().is_some() {
            let _ = fs::remove_file(&self.tmp_path);
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn corrupt(reason: impl Into<String>) -> VcorpError {
    VcorpError::Corrupt(reason.into())
}

fn need_u64(reader: &mut Reader<'_>, what: &str) -> Result<u64, VcorpError> {
    reader
        .take_u64()
        .ok_or_else(|| corrupt(format!("truncated while reading {what}")))
}

fn need_f64(reader: &mut Reader<'_>, what: &str) -> Result<f64, VcorpError> {
    reader
        .take_f64()
        .ok_or_else(|| corrupt(format!("truncated while reading {what}")))
}

fn take_str(reader: &mut Reader<'_>, what: &str) -> Result<String, VcorpError> {
    let len = need_u64(reader, what)?;
    if len > MAX_STR {
        return Err(corrupt(format!(
            "{what} length {len} exceeds the {MAX_STR}-byte bound"
        )));
    }
    let len = len as usize;
    let padded = len.div_ceil(8) * 8;
    let bytes = reader
        .take_bytes(padded)
        .ok_or_else(|| corrupt(format!("truncated while reading {what}")))?;
    if bytes[len..].iter().any(|&b| b != 0) {
        return Err(corrupt(format!("{what} has nonzero padding")));
    }
    String::from_utf8(bytes[..len].to_vec()).map_err(|_| corrupt(format!("{what} is not UTF-8")))
}

/// Decodes one session block and verifies it against its index entry:
/// the chunk count, every per-column digest, and finally that the
/// rebuilt log's recomputed [`crate::log_fingerprint`] equals the stored
/// one — the stored digests the cache trusts are never unchecked.
fn decode_block(bytes: &[u8], entry: &IndexEntry) -> Result<SessionLog, VcorpError> {
    let fail = |reason: String| corrupt(format!("session `{}`: {reason}", entry.id));
    let mut reader = Reader::new(bytes);
    let abr_name = take_str(&mut reader, "ABR name")?;
    let buffer_capacity_s = need_f64(&mut reader, "buffer capacity")?;
    let chunk_duration_s = need_f64(&mut reader, "chunk duration")?;
    let startup_delay_s = need_f64(&mut reader, "startup delay")?;
    let total_rebuffer_s = need_f64(&mut reader, "total rebuffer")?;
    let session_duration_s = need_f64(&mut reader, "session duration")?;
    let n = need_u64(&mut reader, "chunk count")?;
    if n != entry.chunk_count {
        return Err(fail(format!(
            "block declares {n} chunks but the index says {}",
            entry.chunk_count
        )));
    }
    let n = n as usize;
    let expected = n
        .checked_mul(NUM_COLUMNS * 8)
        .filter(|&cols| bytes.len() - reader.pos() == cols);
    if expected.is_none() {
        return Err(fail(format!(
            "block length {} does not match its {n} declared chunks",
            bytes.len()
        )));
    }
    let mut take_int_column = |column: usize, name: &str| -> Result<Vec<usize>, VcorpError> {
        let mut values = Vec::with_capacity(n);
        let mut digest = FNV_OFFSET;
        for _ in 0..n {
            let v = reader.take_u64().expect("length verified above");
            fnv_mix(&mut digest, v);
            values.push(usize::try_from(v).map_err(|_| {
                corrupt(format!("session `{}`: column `{name}` overflows", entry.id))
            })?);
        }
        if digest != entry.column_digests[column] {
            return Err(corrupt(format!(
                "session `{}`: column `{name}` digest mismatch",
                entry.id
            )));
        }
        Ok(values)
    };
    let index_column = take_int_column(0, "index")?;
    let quality_column = take_int_column(1, "quality")?;
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(F64_COLUMNS.len());
    for (column, (name, _)) in F64_COLUMNS.iter().enumerate() {
        let mut values = Vec::with_capacity(n);
        let mut digest = FNV_OFFSET;
        for _ in 0..n {
            let v = reader.take_f64().expect("length verified above");
            fnv_mix_f64(&mut digest, v);
            values.push(v);
        }
        if digest != entry.column_digests[2 + column] {
            return Err(fail(format!("column `{name}` digest mismatch")));
        }
        columns.push(values);
    }
    debug_assert!(reader.at_end(), "length verified above");
    // Positional access below mirrors the F64_COLUMNS on-disk order.
    let records = (0..n)
        .map(|i| ChunkRecord {
            index: index_column[i],
            quality: quality_column[i],
            size_bytes: columns[0][i],
            ssim: columns[1][i],
            wait_before_request_s: columns[2][i],
            start_time_s: columns[3][i],
            end_time_s: columns[4][i],
            download_time_s: columns[5][i],
            throughput_mbps: columns[6][i],
            buffer_at_request_s: columns[7][i],
            rebuffer_s: columns[8][i],
            tcp_info: TcpInfo {
                cwnd_segments: columns[9][i],
                ssthresh_segments: columns[10][i],
                rto_s: columns[11][i],
                srtt_s: columns[12][i],
                min_rtt_s: columns[13][i],
                last_send_gap_s: columns[14][i],
            },
            gtbw_at_request_mbps: columns[15][i],
        })
        .collect();
    let log = SessionLog {
        abr_name,
        buffer_capacity_s,
        chunk_duration_s,
        records,
        startup_delay_s,
        total_rebuffer_s,
        session_duration_s,
    };
    if log_fingerprint(&log) != entry.log_fingerprint {
        return Err(fail(
            "stored log fingerprint does not match the decoded log".to_string(),
        ));
    }
    Ok(log)
}

/// Length in bytes of a session block's header (ABR string, five session
/// scalars, chunk-count word) — everything before the column region. The
/// index pins the chunk count, so this is derivable without touching the
/// block itself; projected reads use it to locate column byte ranges.
pub(crate) fn block_header_len(entry: &IndexEntry) -> Option<usize> {
    let columns = (entry.chunk_count as usize).checked_mul(NUM_COLUMNS * 8)?;
    (entry.block_len as usize).checked_sub(columns)
}

/// The byte ranges of a block a projected decode actually reads: the
/// header, then each selected column, with adjacent selections coalesced
/// into one contiguous range (a `pread`-backed reader issues one read per
/// range). Returns `(start, len)` pairs in ascending order.
pub(crate) fn projected_ranges(
    header_len: usize,
    chunks: usize,
    cols: ColumnSet,
) -> Vec<(usize, usize)> {
    let stride = chunks * 8;
    let mut ranges: Vec<(usize, usize)> = vec![(0, header_len)];
    for column in 0..NUM_COLUMNS {
        if !cols.contains(column) {
            continue;
        }
        let start = header_len + column * stride;
        match ranges.last_mut() {
            Some((last_start, last_len)) if *last_start + *last_len == start => *last_len += stride,
            _ => ranges.push((start, stride)),
        }
    }
    ranges.retain(|&(_, len)| len > 0);
    ranges
}

/// [`decode_block`] restricted to the columns in `cols`: unselected
/// columns are skipped — not digest-checked — and their record fields
/// zero-filled. Selected columns are verified against their index digests
/// exactly as a full decode would. The whole-log fingerprint recompute is
/// *skipped* (it hashes fields that may not be decoded); cache identity
/// comes from the index's stored fingerprint, which full decodes prove
/// equal to the recomputed one. `cols == all` delegates to
/// [`decode_block`], full verification included.
///
/// Callers may hand in a block buffer whose unselected column ranges were
/// never read (left zeroed): this function touches only the header and
/// the selected ranges.
fn decode_block_projected(
    bytes: &[u8],
    entry: &IndexEntry,
    cols: ColumnSet,
) -> Result<SessionLog, VcorpError> {
    if cols.is_all() {
        return decode_block(bytes, entry);
    }
    let fail = |reason: String| corrupt(format!("session `{}`: {reason}", entry.id));
    let mut reader = Reader::new(bytes);
    let abr_name = take_str(&mut reader, "ABR name")?;
    let buffer_capacity_s = need_f64(&mut reader, "buffer capacity")?;
    let chunk_duration_s = need_f64(&mut reader, "chunk duration")?;
    let startup_delay_s = need_f64(&mut reader, "startup delay")?;
    let total_rebuffer_s = need_f64(&mut reader, "total rebuffer")?;
    let session_duration_s = need_f64(&mut reader, "session duration")?;
    let n = need_u64(&mut reader, "chunk count")?;
    if n != entry.chunk_count {
        return Err(fail(format!(
            "block declares {n} chunks but the index says {}",
            entry.chunk_count
        )));
    }
    let n = n as usize;
    let expected = n
        .checked_mul(NUM_COLUMNS * 8)
        .filter(|&cols| bytes.len() - reader.pos() == cols);
    if expected.is_none() {
        return Err(fail(format!(
            "block length {} does not match its {n} declared chunks",
            bytes.len()
        )));
    }
    let mut int_column = |column: usize, name: &str| -> Result<Vec<usize>, VcorpError> {
        if !cols.contains(column) {
            reader.take_bytes(n * 8).expect("length verified above");
            return Ok(vec![0usize; n]);
        }
        let mut values = Vec::with_capacity(n);
        let mut digest = FNV_OFFSET;
        for _ in 0..n {
            let v = reader.take_u64().expect("length verified above");
            fnv_mix(&mut digest, v);
            values.push(usize::try_from(v).map_err(|_| {
                corrupt(format!("session `{}`: column `{name}` overflows", entry.id))
            })?);
        }
        if digest != entry.column_digests[column] {
            return Err(corrupt(format!(
                "session `{}`: column `{name}` digest mismatch",
                entry.id
            )));
        }
        Ok(values)
    };
    let index_column = int_column(0, "index")?;
    let quality_column = int_column(1, "quality")?;
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(F64_COLUMNS.len());
    for (column, (name, _)) in F64_COLUMNS.iter().enumerate() {
        if !cols.contains(2 + column) {
            reader.take_bytes(n * 8).expect("length verified above");
            columns.push(vec![0.0; n]);
            continue;
        }
        let mut values = Vec::with_capacity(n);
        let mut digest = FNV_OFFSET;
        for _ in 0..n {
            let v = reader.take_f64().expect("length verified above");
            fnv_mix_f64(&mut digest, v);
            values.push(v);
        }
        if digest != entry.column_digests[2 + column] {
            return Err(fail(format!("column `{name}` digest mismatch")));
        }
        columns.push(values);
    }
    debug_assert!(reader.at_end(), "length verified above");
    // Positional access below mirrors the F64_COLUMNS on-disk order.
    let records = (0..n)
        .map(|i| ChunkRecord {
            index: index_column[i],
            quality: quality_column[i],
            size_bytes: columns[0][i],
            ssim: columns[1][i],
            wait_before_request_s: columns[2][i],
            start_time_s: columns[3][i],
            end_time_s: columns[4][i],
            download_time_s: columns[5][i],
            throughput_mbps: columns[6][i],
            buffer_at_request_s: columns[7][i],
            rebuffer_s: columns[8][i],
            tcp_info: TcpInfo {
                cwnd_segments: columns[9][i],
                ssthresh_segments: columns[10][i],
                rto_s: columns[11][i],
                srtt_s: columns[12][i],
                min_rtt_s: columns[13][i],
                last_send_gap_s: columns[14][i],
            },
            gtbw_at_request_mbps: columns[15][i],
        })
        .collect();
    // No whole-log fingerprint recompute here: it covers fields that may
    // be undecoded. The stored fingerprint in the index is the cache
    // identity, and full decodes verify it equals the recompute.
    Ok(SessionLog {
        abr_name,
        buffer_capacity_s,
        chunk_duration_s,
        records,
        startup_delay_s,
        total_rebuffer_s,
        session_duration_s,
    })
}

/// The verified skeleton of an open `.vcorp`: the file handle (positioned
/// arbitrarily), the header, and the parsed session index.
pub(crate) struct VcorpParts {
    pub(crate) file: File,
    pub(crate) meta: CorpusMeta,
    pub(crate) index: Vec<IndexEntry>,
}

/// Opens and fully verifies a `.vcorp` skeleton: magic, version (typed
/// error *before* anything else is trusted), whole-file checksum (a
/// truncated or bit-flipped file is rejected here, never a partial
/// corpus), header, and a bounds-checked index parse. Session blocks are
/// *not* decoded — that happens lazily, re-verified per block.
pub(crate) fn open_parts(path: &Path) -> Result<VcorpParts, VcorpError> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    if len % 8 != 0 {
        return Err(corrupt(format!(
            "file length {len} is not a multiple of the 8-byte word size"
        )));
    }
    // Magic + version + minimal header + count word + index offset + checksum.
    if len < 96 {
        return Err(corrupt(format!("file is too short ({len} bytes)")));
    }
    let mut head = [0u8; 16];
    file.read_exact(&mut head)?;
    if head[..8] != MAGIC {
        return Err(corrupt("bad magic (not a .vcorp corpus)"));
    }
    let version = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
    if !(VCORP_VERSION..=VCORP_VERSION_MAX).contains(&version) {
        return Err(VcorpError::UnsupportedVersion {
            found: version,
            supported: VCORP_VERSION_MAX,
        });
    }
    file.seek(SeekFrom::End(-16))?;
    let mut trailer = [0u8; 16];
    file.read_exact(&mut trailer)?;
    let index_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
    let stored_checksum = u64::from_le_bytes(trailer[8..].try_into().expect("8 bytes"));
    // Whole-file checksum over everything between magic and checksum,
    // streamed in word-aligned chunks: open never trusts an unverified
    // byte, and a truncated/flipped file fails here with one message.
    file.seek(SeekFrom::Start(8))?;
    let mut hash = FNV_OFFSET;
    let mut remaining = len - 16;
    let mut buf = vec![0u8; 64 * 1024];
    while remaining > 0 {
        let take = remaining.min(buf.len() as u64) as usize;
        file.read_exact(&mut buf[..take])?;
        for chunk in buf[..take].chunks_exact(8) {
            fnv_mix(
                &mut hash,
                u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")),
            );
        }
        remaining -= take as u64;
    }
    if hash != stored_checksum {
        return Err(corrupt(
            "whole-file checksum mismatch (truncated or corrupted corpus)",
        ));
    }
    if index_offset % 8 != 0 || index_offset < 56 || index_offset > len - 24 {
        return Err(corrupt(format!(
            "index offset {index_offset} out of bounds"
        )));
    }
    // Header: bounded by the string ceiling, parsed with the shared
    // bounds-checked reader. Two strings can appear (ABR name always,
    // the version-2 note optionally), so the cap covers both.
    let header_cap = ((index_offset - 16) as usize).min(2 * (8 + MAX_STR as usize) + 32);
    let mut header_bytes = vec![0u8; header_cap];
    file.seek(SeekFrom::Start(16))?;
    file.read_exact(&mut header_bytes)?;
    let mut reader = Reader::new(&header_bytes);
    let deployed_abr = take_str(&mut reader, "deployed ABR name")?;
    let buffer_capacity_s = need_f64(&mut reader, "buffer capacity")?;
    let chunk_duration_s = need_f64(&mut reader, "chunk duration")?;
    let video_duration_s = need_f64(&mut reader, "video duration")?;
    let asset_seed = need_u64(&mut reader, "asset seed")?;
    // The version word gates every extension field: a version-1 file
    // ends its header here, bit-exactly as always, and is never probed
    // for fields it predates.
    let note = if version >= 2 {
        Some(take_str(&mut reader, "corpus note")?)
    } else {
        None
    };
    let header_end = 16 + reader.pos() as u64;
    if header_end > index_offset {
        return Err(corrupt("header overlaps the session index"));
    }
    let meta = CorpusMeta {
        deployed_abr,
        buffer_capacity_s,
        chunk_duration_s,
        video_duration_s,
        asset_seed,
        note,
    };
    // Index region: [index_offset, len - 16).
    let region_len = (len - 16 - index_offset) as usize;
    file.seek(SeekFrom::Start(index_offset))?;
    let mut region = vec![0u8; region_len];
    file.read_exact(&mut region)?;
    let mut reader = Reader::new(&region);
    let count = need_u64(&mut reader, "session count")?;
    if count == 0 {
        return Err(corrupt("corpus contains no sessions"));
    }
    if count > MAX_SESSIONS {
        return Err(corrupt(format!(
            "session count {count} exceeds the {MAX_SESSIONS} bound"
        )));
    }
    match (count as usize).checked_mul(ENTRY_MIN_WORDS * 8) {
        Some(min) if min + 8 <= region_len => {}
        _ => {
            return Err(corrupt(format!(
                "index region is shorter than its {count} declared sessions"
            )))
        }
    }
    let mut index = Vec::with_capacity(count as usize);
    let mut ids = HashSet::with_capacity(count as usize);
    // Blocks are written back to back; enforcing contiguity rules out
    // overlapping or out-of-bounds blocks in one pass.
    let mut prev_end = header_end;
    for _ in 0..count {
        let id = take_str(&mut reader, "session id")?;
        let offset = need_u64(&mut reader, "session offset")?;
        let block_len = need_u64(&mut reader, "session block length")?;
        let chunk_count = need_u64(&mut reader, "session chunk count")?;
        let log_fingerprint = need_u64(&mut reader, "session log fingerprint")?;
        let mut column_digests = [0u64; NUM_COLUMNS];
        for digest in &mut column_digests {
            *digest = need_u64(&mut reader, "column digest")?;
        }
        if chunk_count > MAX_CHUNKS {
            return Err(corrupt(format!(
                "session `{id}` declares {chunk_count} chunks (bound {MAX_CHUNKS})"
            )));
        }
        if offset != prev_end || block_len % 8 != 0 {
            return Err(corrupt(format!(
                "session `{id}` block is not contiguous with its predecessor"
            )));
        }
        let end = offset
            .checked_add(block_len)
            .filter(|&end| end <= index_offset)
            .ok_or_else(|| corrupt(format!("session `{id}` block extends past the index")))?;
        prev_end = end;
        if !ids.insert(id.clone()) {
            return Err(corrupt(format!("duplicate session id `{id}`")));
        }
        index.push(IndexEntry {
            id,
            offset,
            block_len,
            chunk_count,
            log_fingerprint,
            column_digests,
        });
    }
    if prev_end != index_offset {
        return Err(corrupt("gap between the last session block and the index"));
    }
    if !reader.at_end() {
        return Err(corrupt("trailing bytes after the session index"));
    }
    Ok(VcorpParts { file, meta, index })
}

// ---------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------

/// What an ingest did: session counts and the final file size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Sessions in the written corpus.
    pub sessions: usize,
    /// Sessions carried over unchanged from an existing `.vcorp`
    /// (append mode; `0` for a fresh ingest).
    pub carried_over: usize,
    /// Existing sessions superseded by a same-id JSON file (append mode).
    pub replaced: usize,
    /// Size of the written file in bytes.
    pub bytes: u64,
}

fn read_log(path: &Path) -> Result<(String, SessionLog), EngineError> {
    let data = fs::read_to_string(path)?;
    let log = SessionLog::from_json(&data)?;
    let id = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    Ok((id, log))
}

/// Converts a directory of `*.json` session logs into a `.vcorp` at
/// `out`, streaming: one log is resident at a time. Sessions keep the
/// numeric-aware name order of [`crate::SessionCorpus::from_dir`], so the
/// resulting corpus is record- and fingerprint-identical to loading the
/// directory.
pub fn ingest_dir(dir: &Path, out: &Path) -> Result<IngestReport, EngineError> {
    let paths = sorted_json_paths(dir)?;
    if paths.is_empty() {
        return Err(EngineError::EmptyCorpus);
    }
    let (first_id, first_log) = read_log(&paths[0])?;
    let mut writer = VcorpWriter::create(out, &CorpusMeta::for_log(&first_log))?;
    writer.append(&first_id, &first_log)?;
    drop(first_log);
    for path in &paths[1..] {
        let (id, log) = read_log(path)?;
        writer.append(&id, &log)?;
    }
    let bytes = writer.finish()?;
    Ok(IngestReport {
        sessions: paths.len(),
        carried_over: 0,
        replaced: 0,
        bytes,
    })
}

/// Merges newly arrived `*.json` logs from `dir` into the existing
/// `.vcorp` at `out`, then compacts: the merged corpus is rewritten as
/// one contiguous file and atomically renamed over the old one. A JSON
/// file whose stem matches an existing session id *replaces* that
/// session. The merged order is the same numeric-aware id order a fresh
/// ingest of the union would produce, so append-then-open ≡
/// ingest-of-union.
pub fn append_dir(dir: &Path, out: &Path) -> Result<IngestReport, EngineError> {
    let existing = LazyCorpus::open(out)?;
    let new_paths = sorted_json_paths(dir)?;

    enum Source {
        Existing(usize),
        New(PathBuf),
    }
    let mut merged: Vec<(String, Source)> = (0..existing.len())
        .map(|i| (existing.session_id_at(i).to_string(), Source::Existing(i)))
        .collect();
    let mut replaced = 0usize;
    for path in new_paths {
        let id = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        if let Some(slot) = merged
            .iter_mut()
            .find(|(existing_id, _)| *existing_id == id)
        {
            slot.1 = Source::New(path);
            replaced += 1;
        } else {
            merged.push((id, Source::New(path)));
        }
    }
    merged.sort_by(|(a, _), (b, _)| natural_cmp(a, b).then_with(|| a.cmp(b)));
    let carried_over = existing.len() - replaced;

    let load = |source: &Source| -> Result<SessionLog, EngineError> {
        match source {
            Source::Existing(i) => Ok(existing.load_log(*i)?.as_ref().clone()),
            Source::New(path) => Ok(read_log(path)?.1),
        }
    };
    let first_log = load(&merged[0].1)?;
    let mut writer = VcorpWriter::create(out, &CorpusMeta::for_log(&first_log))?;
    writer.append(&merged[0].0, &first_log)?;
    drop(first_log);
    for (id, source) in &merged[1..] {
        writer.append(id, &load(source)?)?;
    }
    let bytes = writer.finish()?;
    Ok(IngestReport {
        sessions: merged.len(),
        carried_over,
        replaced,
        bytes,
    })
}

#[cfg(test)]
mod tests;
