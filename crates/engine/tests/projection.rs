//! Projection differential tests: for every query kind, a run over a
//! lazily loaded `.vcorp` (where the executor requests only the plan's
//! column demand) must be record-identical to the same run over the
//! eager JSON-directory corpus (which always decodes everything), and
//! must reuse the eager run's persisted cache entries — proving that
//! column projection changes neither answers nor cache keys.

use std::path::PathBuf;
use std::sync::Arc;

use veritas::VeritasConfig;
use veritas_engine::{
    ingest_dir, AggregateMetric, AggregateSpec, ColumnSet, ConfigSweep, Corpus, Engine,
    EngineReport, LazyCorpus, Query, QueryPlan, QueryRecord, QuerySet, ScenarioSpec, SessionCorpus,
    SyntheticSpec,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veritas_projection_it_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every query kind at once — including both sweep shapes, whose column
/// demand differs (a scenario sweep replays downloads and needs the
/// end-time column; a config-only sweep does not).
fn query_set(corpus: &SessionCorpus) -> QuerySet {
    let chunks = corpus.sessions[0].log.records.len();
    QuerySet::new(
        "projection-it",
        VeritasConfig::paper_default().with_samples(2),
    )
    .with_query(Query::abduction("ab"))
    .with_query(Query::interventional("iv").with_chunk_index(chunks.min(10)))
    .with_query(Query::counterfactual("cf", ScenarioSpec::abr("bba")))
    .with_query(Query::sweep(
        "sw",
        ConfigSweep::new().over_sigma(vec![0.25, 1.0]),
    ))
    .with_query(
        Query::sweep(
            "sw-scenario",
            ConfigSweep::new().over_sigma(vec![0.25, 1.0]),
        )
        .with_scenario(ScenarioSpec::abr("bba")),
    )
    .with_query(Query::aggregate(
        "agg",
        AggregateSpec::of(AggregateMetric::MeanCapacityMbps),
    ))
}

/// The comparable projection of a record stream: everything except the
/// wall-clock timing and the cache-tier tag, which legitimately differ
/// between a cold and a warm run. Byte-compared via JSON.
fn normalized_jsonl(report: &EngineReport) -> String {
    let mut out = String::new();
    for record in &report.records {
        let mut record: QueryRecord = record.clone();
        record.elapsed_us = 0;
        record.cache = None;
        out.push_str(&serde_json::to_string(&record).unwrap());
        out.push('\n');
    }
    out
}

#[test]
fn every_query_kind_is_projection_neutral_between_corpus_sources() {
    let dir = temp_dir("neutrality");
    let cache_dir = dir.join("cache");
    let json_dir = dir.join("sessions");
    std::fs::create_dir_all(&json_dir).unwrap();

    let source = SyntheticSpec {
        sessions: 3,
        video_duration_s: 120.0,
        ..SyntheticSpec::default()
    }
    .build();
    for session in &source.sessions {
        let path = json_dir.join(format!("{}.json", session.id));
        std::fs::write(path, session.log.to_json()).unwrap();
    }
    let vcorp = dir.join("corpus.vcorp");
    ingest_dir(&json_dir, &vcorp).unwrap();

    // Baseline: the eager directory corpus decodes every field of every
    // record, and its cold run populates the persistent cache.
    let eager = SessionCorpus::from_dir(&json_dir).unwrap();
    let set = query_set(&eager);
    let cold = Engine::builder().cache_dir(&cache_dir).build().unwrap();
    let baseline = cold.run(&eager, &set).unwrap();
    assert_eq!(baseline.summary.errors, 0);
    assert!(baseline.summary.cache_misses > 0, "cold run must infer");

    // The lazy corpus serves the same plan with projected decodes.
    let lazy = Arc::new(LazyCorpus::open(&vcorp).unwrap());
    let plan = Arc::new(QueryPlan::compile(&set, lazy.as_ref()).unwrap());
    assert!(
        !plan.column_demand_union().is_all(),
        "this query set must not demand every column, or the test proves nothing"
    );
    let warm = Engine::builder().cache_dir(&cache_dir).build().unwrap();
    let report = warm
        .submit_shared(Arc::clone(&lazy) as Arc<dyn Corpus>, plan)
        .unwrap()
        .wait();
    assert_eq!(report.summary.errors, 0);

    // Identical answers...
    assert_eq!(
        normalized_jsonl(&report),
        normalized_jsonl(&baseline),
        "projected decodes must reproduce the eager run for every query kind"
    );
    // ...from identical cache keys: every unit of the projected run is
    // served by entries the eager run persisted.
    assert_eq!(
        report.summary.cache_misses, 0,
        "projection must not change cache keys"
    );
    assert!(report.summary.disk_hits > 0);
    // And the run really was projected: had every decode been full, the
    // corpus would report len × ColumnSet::COUNT columns (or more).
    let decoded = lazy.columns_decoded();
    assert!(decoded > 0, "the lazy corpus was never decoded");
    assert!(
        decoded < (lazy.len() * ColumnSet::COUNT) as u64,
        "expected projected decodes, got {decoded} columns over {} sessions",
        lazy.len()
    );
}

#[test]
fn mmap_backed_runs_match_pread_backed_runs() {
    let dir = temp_dir("mmap");
    let cache_dir = dir.join("cache");
    let json_dir = dir.join("sessions");
    std::fs::create_dir_all(&json_dir).unwrap();

    let source = SyntheticSpec {
        sessions: 2,
        video_duration_s: 120.0,
        ..SyntheticSpec::default()
    }
    .build();
    for session in &source.sessions {
        let path = json_dir.join(format!("{}.json", session.id));
        std::fs::write(path, session.log.to_json()).unwrap();
    }
    let vcorp = dir.join("corpus.vcorp");
    ingest_dir(&json_dir, &vcorp).unwrap();

    let pread = Arc::new(LazyCorpus::open(&vcorp).unwrap());
    let set = {
        let probe = SessionCorpus::from_dir(&json_dir).unwrap();
        query_set(&probe)
    };
    let plan = Arc::new(QueryPlan::compile(&set, pread.as_ref()).unwrap());
    let cold = Engine::builder().cache_dir(&cache_dir).build().unwrap();
    let baseline = cold
        .submit_shared(Arc::clone(&pread) as Arc<dyn Corpus>, Arc::clone(&plan))
        .unwrap()
        .wait();
    assert_eq!(baseline.summary.errors, 0);

    let mapped = Arc::new(LazyCorpus::open(&vcorp).unwrap().with_mmap());
    let warm = Engine::builder().cache_dir(&cache_dir).build().unwrap();
    let report = warm
        .submit_shared(Arc::clone(&mapped) as Arc<dyn Corpus>, plan)
        .unwrap()
        .wait();
    assert_eq!(report.summary.errors, 0);
    assert_eq!(
        normalized_jsonl(&report),
        normalized_jsonl(&baseline),
        "an mmap-backed corpus must reproduce the pread-backed run"
    );
    assert_eq!(report.summary.cache_misses, 0);
}
