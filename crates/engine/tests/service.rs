//! Integration tests of the `veritasd` service: wire output equals batch
//! output, the shared cache is warm across connections and restarts,
//! admission control sheds, and the real binary speaks the protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use veritas::VeritasConfig;
use veritas_engine::{
    ingest_dir, CorpusSource, Engine, ErrorEnvelope, MetricsEnvelope, MetricsSnapshot, Query,
    QueryRecord, QuerySet, RunSummary, ScenarioSpec, Service, ServiceConfig, SessionCorpus,
    SummaryEnvelope, WireError,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veritas_service_it_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(sessions: usize, seed: u64) -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        corpus: CorpusSource::Synthetic { sessions, seed },
        threads: Some(2),
        ..ServiceConfig::default()
    }
}

/// Strips what legitimately differs between runs — timing and the cache
/// tier a posterior came from — leaving the causal payload.
fn normalize(mut record: QueryRecord) -> QueryRecord {
    record.elapsed_us = 0;
    record.cache = None;
    record
}

/// One JSONL client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Everything one query request streamed back.
struct Response {
    records: Vec<QueryRecord>,
    summary: Option<RunSummary>,
    error: Option<WireError>,
}

impl Client {
    fn connect(addr: &std::net::SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("the service must accept connections");
        let reader = BufReader::new(writer.try_clone().unwrap());
        Self { reader, writer }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line).unwrap();
        assert!(read > 0, "the service hung up unexpectedly");
        line.trim().to_string()
    }

    /// Sends a query request and reads until its terminal line (summary
    /// or error envelope).
    fn query(&mut self, set: &QuerySet, stream: bool) -> Response {
        let set_json = serde_json::to_string(set).unwrap();
        let request = if stream {
            format!(r#"{{"query": {set_json}, "stream": true}}"#)
        } else {
            format!(r#"{{"query": {set_json}}}"#)
        };
        self.send(&request);
        let mut records = Vec::new();
        loop {
            let line = self.read_line();
            if let Some(error) = ErrorEnvelope::parse(&line) {
                return Response {
                    records,
                    summary: None,
                    error: Some(error),
                };
            }
            if let Ok(envelope) = serde_json::from_str::<SummaryEnvelope>(&line) {
                return Response {
                    records,
                    summary: Some(envelope.summary),
                    error: None,
                };
            }
            records.push(serde_json::from_str(&line).expect("a record line must parse"));
        }
    }

    fn summary(&mut self, set: &QuerySet) -> RunSummary {
        let response = self.query(set, false);
        assert_eq!(
            response.error.as_ref().map(|e| e.detail.clone()),
            None,
            "the query must not be refused"
        );
        response.summary.expect("a summary must terminate the feed")
    }

    fn metrics(&mut self) -> MetricsSnapshot {
        self.send(r#"{"metrics": true}"#);
        let line = self.read_line();
        serde_json::from_str::<MetricsEnvelope>(&line)
            .unwrap_or_else(|e| panic!("metrics line must parse ({e}): {line}"))
            .metrics
    }
}

fn small_set(name: &str) -> QuerySet {
    QuerySet::new(name, VeritasConfig::paper_default().with_samples(2))
        .with_query(Query::abduction("posterior"))
        .with_query(Query::counterfactual(
            "what-if-bba",
            ScenarioSpec::abr("bba"),
        ))
}

#[test]
fn concurrent_clients_see_batch_identical_records() {
    let sessions = 3;
    let seed = 11;
    let handle = Service::bind(config(sessions, seed))
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr();

    // The ground truth each client must receive: the batch pipeline run
    // in-process over an identical corpus and engine configuration.
    let corpus = SessionCorpus::synthetic(sessions, seed);
    let engine = Engine::builder().threads(2).build().unwrap();
    let set_a = small_set("client-a");
    let set_b = QuerySet::new("client-b", VeritasConfig::paper_default().with_samples(2))
        .with_query(Query::abduction("only-posterior"));
    let expect_a: Vec<QueryRecord> = engine
        .run(&corpus, &set_a)
        .unwrap()
        .records
        .into_iter()
        .map(normalize)
        .collect();
    let expect_b: Vec<QueryRecord> = engine
        .run(&corpus, &set_b)
        .unwrap()
        .records
        .into_iter()
        .map(normalize)
        .collect();

    let expected_stream_total = (2 * expect_a.len() + expect_b.len()) as u64;
    let run_client = |set: QuerySet, expected: Vec<QueryRecord>| {
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr);
            let response = client.query(&set, false);
            let got: Vec<QueryRecord> = response.records.into_iter().map(normalize).collect();
            assert_eq!(got, expected, "wire records must equal batch records");
            let summary = response.summary.expect("the feed must end with a summary");
            assert_eq!(summary.units, expected.len());
            assert_eq!(summary.errors, 0);
        })
    };
    let thread_a = run_client(set_a.clone(), expect_a.clone());
    let thread_b = run_client(set_b, expect_b);
    thread_a.join().unwrap();
    thread_b.join().unwrap();

    // The streamed variant delivers the same records in completion order.
    let mut client = Client::connect(&addr);
    let response = client.query(&set_a, true);
    let mut streamed: Vec<String> = response
        .records
        .into_iter()
        .map(|r| serde_json::to_string(&normalize(r)).unwrap())
        .collect();
    streamed.sort();
    let mut batch: Vec<String> = expect_a
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    batch.sort();
    assert_eq!(streamed, batch);

    let metrics = client.metrics();
    assert_eq!(metrics.sessions, sessions);
    assert!(metrics.plans_served >= 3);
    assert_eq!(metrics.plans_shed, 0);
    assert_eq!(metrics.records_streamed, expected_stream_total);
    assert!(metrics.per_query.iter().any(|q| q.id == "posterior"));
    // Supervision counters ride in the same snapshot; a fault-free
    // in-process daemon has absorbed nothing.
    assert_eq!(metrics.retries, 0);
    assert_eq!(metrics.shard_retries, 0);
    assert_eq!(metrics.healed, 0);
    assert_eq!(metrics.quarantined, 0);
    handle.stop();
}

#[test]
fn a_repeat_query_is_served_from_the_warm_shared_cache() {
    let handle = Service::bind(config(2, 23)).unwrap().spawn().unwrap();
    let set = small_set("warm");

    let cold = Client::connect(&handle.addr()).summary(&set);
    assert!(cold.cache_misses > 0, "the first run must infer");

    // A *different* connection: the cache is resident in the engine, not
    // in any per-connection state.
    let warm = Client::connect(&handle.addr()).summary(&set);
    assert_eq!(
        warm.cache_misses, 0,
        "an identical query must perform zero inferences"
    );
    assert_eq!(warm.errors, 0);
    assert!(warm.cache_hits >= cold.cache_misses);

    let metrics = Client::connect(&handle.addr()).metrics();
    assert_eq!(metrics.cache.misses, cold.cache_misses);
    assert!(metrics.cache.hits >= warm.cache_hits);
    handle.stop();
}

#[test]
fn a_cache_dir_restart_serves_posteriors_from_disk() {
    let dir = temp_dir("disk_restart");
    let _ = std::fs::remove_dir_all(dir.join("store"));
    let with_store = || {
        let mut c = config(2, 31);
        c.cache_dir = Some(dir.join("store"));
        c
    };
    let set = small_set("restart");

    let first = Service::bind(with_store()).unwrap().spawn().unwrap();
    let cold = Client::connect(&first.addr()).query(&set, false);
    let cold_summary = cold.summary.unwrap();
    assert!(cold_summary.cache_misses > 0);
    first.stop();

    // A brand-new daemon over the same store: every posterior restores
    // from the disk tier, none are inferred.
    let second = Service::bind(with_store()).unwrap().spawn().unwrap();
    let warm = Client::connect(&second.addr()).query(&set, false);
    let warm_summary = warm.summary.unwrap();
    assert_eq!(warm_summary.cache_misses, 0);
    assert_eq!(warm_summary.disk_hits, cold_summary.cache_misses);
    let normalized = |records: Vec<QueryRecord>| -> Vec<QueryRecord> {
        records.into_iter().map(normalize).collect()
    };
    assert_eq!(normalized(cold.records), normalized(warm.records));
    second.stop();
}

#[test]
fn requests_past_the_admission_bound_are_shed_with_a_typed_error() {
    // Deterministic variant: a bound of zero sheds every query while
    // metrics stay reachable.
    let mut zero = config(2, 41);
    zero.admission = 0;
    let handle = Service::bind(zero).unwrap().spawn().unwrap();
    let mut client = Client::connect(&handle.addr());
    let shed = client.query(&small_set("shed"), false);
    let error = shed.error.expect("a bound of zero must shed the plan");
    assert_eq!(error.kind, "overloaded");
    assert!(
        error.detail.contains("admission bound 0"),
        "{}",
        error.detail
    );
    assert!(shed.records.is_empty());
    let metrics = client.metrics();
    assert_eq!(metrics.plans_shed, 1);
    assert_eq!(metrics.plans_served, 0);
    handle.stop();

    // Concurrent variant: client A holds the single admission slot with a
    // deliberately slow plan; client B is shed while A runs and succeeds
    // once A drains.
    let mut single = config(4, 43);
    single.admission = 1;
    single.threads = Some(1);
    let handle = Service::bind(single).unwrap().spawn().unwrap();
    let slow_set =
        QuerySet::new("slow", VeritasConfig::paper_default().with_samples(192)).with_query(
            Query::counterfactual("hold-the-slot", ScenarioSpec::abr("bba")),
        );

    let mut holder = Client::connect(&handle.addr());
    let set_json = serde_json::to_string(&slow_set).unwrap();
    holder.send(&format!(r#"{{"query": {set_json}, "stream": true}}"#));
    // The first streamed record proves A's plan was admitted and is
    // mid-flight (three more single-threaded units remain).
    let first = holder.read_line();
    assert!(
        serde_json::from_str::<QueryRecord>(&first).is_ok(),
        "first line was: {first}"
    );

    let mut second = Client::connect(&handle.addr());
    let refused = second.query(&small_set("too-late"), false);
    let error = refused
        .error
        .expect("the second concurrent plan must be shed");
    assert_eq!(error.kind, "overloaded");

    // Drain A; the slot frees and B's retry is admitted.
    loop {
        let line = holder.read_line();
        if serde_json::from_str::<SummaryEnvelope>(&line).is_ok() {
            break;
        }
    }
    let retry = second.summary(&small_set("retry"));
    assert_eq!(retry.errors, 0);
    assert!(handle.metrics().plans_shed >= 1);
    handle.stop();
}

#[test]
fn connections_past_the_bound_are_shed_with_a_typed_error() {
    let mut bounded = config(2, 61);
    bounded.max_connections = 1;
    let handle = Service::bind(bounded).unwrap().spawn().unwrap();

    // Client A occupies the single slot; the metrics round-trip proves
    // its connection is fully established before B tries.
    let mut holder = Client::connect(&handle.addr());
    assert_eq!(holder.metrics().connections_active, 1);

    let shed = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(shed);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let error = ErrorEnvelope::parse(line.trim())
        .expect("the excess accept must answer with an error envelope");
    assert_eq!(error.kind, "overloaded");
    assert!(
        error.detail.contains("connection bound 1"),
        "{}",
        error.detail
    );
    // ... and is then closed, not serviced.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0);

    let metrics = holder.metrics();
    assert_eq!(metrics.connections_shed, 1);
    assert_eq!(metrics.connections_active, 1);

    // The slot frees when A hangs up; a later client is admitted.
    drop(holder);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let mut client = Client::connect(&handle.addr());
        client.send(r#"{"metrics": true}"#);
        let line = client.read_line();
        if serde_json::from_str::<MetricsEnvelope>(&line).is_ok() {
            break;
        }
        assert_eq!(ErrorEnvelope::parse(&line).unwrap().kind, "overloaded");
        assert!(std::time::Instant::now() < deadline, "the slot never freed");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    handle.stop();
}

#[test]
fn idle_connections_are_cut_at_the_io_deadline() {
    let mut impatient = config(2, 67);
    impatient.io_timeout_s = 1;
    let handle = Service::bind(impatient).unwrap().spawn().unwrap();

    // A silent client never sends a request; the per-connection read
    // deadline must cut it loose rather than pin the handler forever.
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream);
    let started = std::time::Instant::now();
    let mut line = String::new();
    let read = reader.read_line(&mut line).unwrap_or(0);
    assert_eq!(read, 0, "the daemon must hang up, instead sent: {line}");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(20),
        "the idle connection outlived the 1 s deadline by over an order \
         of magnitude"
    );

    // A live client on the same daemon still gets full service.
    let summary = Client::connect(&handle.addr()).summary(&small_set("after-timeout"));
    assert_eq!(summary.errors, 0);
    handle.stop();
}

#[test]
fn a_vcorp_corpus_serves_the_same_records_as_its_source_directory() {
    let dir = temp_dir("vcorp_daemon");
    let sessions_dir = dir.join("sessions");
    let _ = std::fs::remove_dir_all(&sessions_dir);
    std::fs::create_dir_all(&sessions_dir).unwrap();
    let corpus = SessionCorpus::synthetic(3, 71);
    for session in &corpus.sessions {
        let path = sessions_dir.join(format!("{}.json", session.id));
        std::fs::write(path, session.log.to_json()).unwrap();
    }
    let vcorp = dir.join("corpus.vcorp");
    ingest_dir(&sessions_dir, &vcorp).unwrap();

    let mut cfg = config(0, 0);
    cfg.corpus = CorpusSource::Vcorp(vcorp);
    let handle = Service::bind(cfg).unwrap().spawn().unwrap();

    // Ground truth: the batch pipeline over the JSON directory the
    // `.vcorp` was ingested from.
    let set = small_set("vcorp");
    let engine = Engine::builder().threads(2).build().unwrap();
    let from_dir = SessionCorpus::from_dir(&sessions_dir).unwrap();
    let expected: Vec<QueryRecord> = engine
        .run(&from_dir, &set)
        .unwrap()
        .records
        .into_iter()
        .map(normalize)
        .collect();

    let mut client = Client::connect(&handle.addr());
    let response = client.query(&set, false);
    let got: Vec<QueryRecord> = response.records.into_iter().map(normalize).collect();
    assert_eq!(got, expected);
    assert_eq!(client.metrics().sessions, 3);
    handle.stop();
}

#[test]
fn protocol_errors_answer_in_band_and_keep_the_connection() {
    let handle = Service::bind(config(2, 53)).unwrap().spawn().unwrap();
    let mut client = Client::connect(&handle.addr());

    client.send("this is not json");
    assert_eq!(
        ErrorEnvelope::parse(&client.read_line()).unwrap().kind,
        "protocol"
    );

    client.send(r#"{"stream": true}"#);
    assert_eq!(
        ErrorEnvelope::parse(&client.read_line()).unwrap().kind,
        "protocol"
    );

    // An unsatisfiable query set is refused with the query error kind.
    client.send(r#"{"query": {"queries": [{"id": "s", "kind": "sweep"}]}}"#);
    let error = ErrorEnvelope::parse(&client.read_line()).unwrap();
    assert_eq!(error.kind, "invalid_query");

    // The connection survived all three refusals.
    assert!(client.metrics().uptime_s >= 0.0);
    handle.stop();
}

#[test]
fn the_veritasd_binary_announces_its_port_and_serves_queries() {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_veritasd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--synthetic",
            "2",
            "--seed",
            "9",
            "--threads",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("the veritasd binary must start");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr: std::net::SocketAddr = banner
        .trim()
        .strip_prefix("veritasd: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .parse()
        .unwrap();

    let set = small_set("binary");
    let corpus = SessionCorpus::synthetic(2, 9);
    let engine = Engine::builder().threads(2).build().unwrap();
    let expected: Vec<QueryRecord> = engine
        .run(&corpus, &set)
        .unwrap()
        .records
        .into_iter()
        .map(normalize)
        .collect();

    let mut client = Client::connect(&addr);
    let response = client.query(&set, false);
    let got: Vec<QueryRecord> = response.records.into_iter().map(normalize).collect();
    assert_eq!(got, expected);
    let metrics = client.metrics();
    assert_eq!(metrics.sessions, 2);
    assert_eq!(metrics.plans_served, 1);

    child.kill().unwrap();
    let _ = child.wait();
}

#[test]
fn an_auth_token_gates_every_request() {
    let mut cfg = config(2, 47);
    cfg.auth_token = Some("hunter2".to_string());
    let handle = Service::bind(cfg).unwrap().spawn().unwrap();

    // No token: a typed refusal, then the connection is closed.
    let mut anon = Client::connect(&handle.addr());
    anon.send(r#"{"metrics": true}"#);
    let error = ErrorEnvelope::parse(&anon.read_line()).unwrap();
    assert_eq!(error.kind, "unauthorized");
    let mut line = String::new();
    assert_eq!(
        anon.reader.read_line(&mut line).unwrap(),
        0,
        "an unauthorized connection must be closed after the refusal"
    );

    // Wrong token: same refusal; the daemon itself stays healthy.
    let mut wrong = Client::connect(&handle.addr());
    wrong.send(r#"{"metrics": true, "auth": "hunter3"}"#);
    assert_eq!(
        ErrorEnvelope::parse(&wrong.read_line()).unwrap().kind,
        "unauthorized"
    );

    // The right token is served normally — metrics and queries alike.
    let mut authed = Client::connect(&handle.addr());
    authed.send(r#"{"metrics": true, "auth": "hunter2"}"#);
    let line = authed.read_line();
    let metrics = serde_json::from_str::<MetricsEnvelope>(&line)
        .unwrap_or_else(|e| panic!("an authed metrics request must be served ({e}): {line}"))
        .metrics;
    assert_eq!(metrics.sessions, 2);

    let set_json = serde_json::to_string(&small_set("authed")).unwrap();
    authed.send(&format!(r#"{{"query": {set_json}, "auth": "hunter2"}}"#));
    let mut records = 0;
    let summary = loop {
        let line = authed.read_line();
        if let Ok(envelope) = serde_json::from_str::<SummaryEnvelope>(&line) {
            break envelope.summary;
        }
        assert!(
            serde_json::from_str::<QueryRecord>(&line).is_ok(),
            "unexpected line: {line}"
        );
        records += 1;
    };
    assert_eq!(records, 4);
    assert_eq!(summary.errors, 0);
    handle.stop();
}

#[test]
fn a_shutdown_request_drains_in_flight_plans_then_exits() {
    let mut cfg = config(4, 43);
    cfg.threads = Some(1);
    let handle = Service::bind(cfg).unwrap().spawn().unwrap();

    // Client A holds a deliberately slow plan in flight (single worker,
    // heavy sampling), proven admitted by its first streamed record.
    let slow_set =
        QuerySet::new("slow", VeritasConfig::paper_default().with_samples(192)).with_query(
            Query::counterfactual("hold-the-slot", ScenarioSpec::abr("bba")),
        );
    let mut holder = Client::connect(&handle.addr());
    let set_json = serde_json::to_string(&slow_set).unwrap();
    holder.send(&format!(r#"{{"query": {set_json}, "stream": true}}"#));
    let first = holder.read_line();
    assert!(
        serde_json::from_str::<QueryRecord>(&first).is_ok(),
        "first line was: {first}"
    );

    // A second connection asks for shutdown and is acked immediately.
    let mut admin = Client::connect(&handle.addr());
    admin.send(r#"{"shutdown": true}"#);
    assert_eq!(admin.read_line(), r#"{"draining":true}"#);

    // New plans on the draining daemon get the typed refusal.
    let refused = admin.query(&small_set("too-late"), false);
    let error = refused
        .error
        .expect("a draining daemon must refuse new plans");
    assert_eq!(error.kind, "draining");

    // The in-flight plan still streams every record and its summary.
    let mut records = 1;
    let summary = loop {
        let line = holder.read_line();
        if let Ok(envelope) = serde_json::from_str::<SummaryEnvelope>(&line) {
            break envelope.summary;
        }
        records += 1;
    };
    assert_eq!(records, 4, "drain must not drop in-flight records");
    assert_eq!(summary.errors, 0);

    // With the last plan drained, the accept loop exits on its own —
    // no stop() needed.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !handle.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "the daemon never exited after draining"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.stop();
}

#[test]
fn summaries_carry_monotonic_request_ids() {
    let handle = Service::bind(config(2, 59)).unwrap().spawn().unwrap();
    let mut client = Client::connect(&handle.addr());
    let set_json = serde_json::to_string(&small_set("req-id")).unwrap();
    for expected in 1..=3u64 {
        client.send(&format!(r#"{{"query": {set_json}}}"#));
        let envelope = loop {
            let line = client.read_line();
            if let Ok(envelope) = serde_json::from_str::<SummaryEnvelope>(&line) {
                break envelope;
            }
        };
        assert_eq!(
            envelope.req_id,
            Some(expected),
            "request ids must count every query request on the daemon"
        );
    }
    handle.stop();
}
