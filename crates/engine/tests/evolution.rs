//! `.vcorp` schema evolution: the version-2 optional header note must
//! cost version-1 files nothing.
//!
//! The contract under test: files without the note are written at the
//! base version, byte-for-byte what a version-1-only binary produces;
//! version-1 files keep loading bit-exactly; the note rides only on
//! version-2 headers and never changes corpus identity (fingerprints),
//! so cache entries stay interchangeable across the schema bump; and a
//! version past [`VCORP_VERSION_MAX`] still fails typed before the
//! checksum.

use std::fs;
use std::path::{Path, PathBuf};

use veritas_engine::{
    log_fingerprint, Corpus, CorpusMeta, LazyCorpus, SessionCorpus, VcorpError, VcorpWriter,
    VCORP_VERSION, VCORP_VERSION_MAX,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veritas_evolution_test_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Writes the same small synthetic corpus with an optional header note
/// and returns the file's bytes.
fn write_corpus(source: &SessionCorpus, path: &Path, note: Option<&str>) -> Vec<u8> {
    let mut meta = CorpusMeta::for_log(&source.sessions[0].log);
    meta.note = note.map(str::to_string);
    let mut writer = VcorpWriter::create(path, &meta).expect("create writer");
    for session in &source.sessions {
        writer.append(&session.id, &session.log).expect("append");
    }
    writer.finish().expect("finish");
    fs::read(path).expect("read corpus back")
}

fn version_word(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"))
}

#[test]
fn noteless_corpora_stay_at_the_base_version_byte_for_byte() {
    let dir = temp_dir("base_version");
    let source = SessionCorpus::synthetic(3, 21);
    let first = write_corpus(&source, &dir.join("a.vcorp"), None);
    let second = write_corpus(&source, &dir.join("b.vcorp"), None);
    // No note → the base layout, bit for bit: nothing about version-2
    // support leaks into files that don't use the extension, so they
    // remain readable by (and identical to the output of) binaries that
    // predate it.
    assert_eq!(version_word(&first), VCORP_VERSION);
    assert_eq!(first, second, "noteless writes must be deterministic");
}

#[test]
fn version_1_files_still_load_bit_exactly() {
    let dir = temp_dir("v1_load");
    let source = SessionCorpus::synthetic(3, 21);
    let path = dir.join("v1.vcorp");
    write_corpus(&source, &path, None);

    let corpus = LazyCorpus::open(&path).expect("open the version-1 file");
    assert_eq!(corpus.meta().note, None, "a v1 header has no note field");
    assert_eq!(Corpus::len(&corpus), source.len());
    for (i, session) in source.sessions.iter().enumerate() {
        assert_eq!(Corpus::session_id(&corpus, i), session.id.as_str());
        assert_eq!(
            Corpus::log_fingerprint(&corpus, i),
            log_fingerprint(&session.log)
        );
        let loaded = corpus.load_log(i).expect("decode");
        assert_eq!(
            loaded.to_json(),
            session.log.to_json(),
            "session `{}` must reload exactly",
            session.id
        );
    }
}

#[test]
fn a_note_upgrades_the_header_to_version_2_and_round_trips() {
    let dir = temp_dir("v2_note");
    let source = SessionCorpus::synthetic(3, 21);
    let path = dir.join("v2.vcorp");
    let bytes = write_corpus(&source, &path, Some("ingested from cdn-west, 2026-08"));
    assert_eq!(version_word(&bytes), VCORP_VERSION_MAX);

    let corpus = LazyCorpus::open(&path).expect("open the version-2 file");
    assert_eq!(
        corpus.meta().note.as_deref(),
        Some("ingested from cdn-west, 2026-08")
    );
    // The extension touches only the header: session blocks are
    // unchanged and reload bit-exactly.
    for (i, session) in source.sessions.iter().enumerate() {
        let loaded = corpus.load_log(i).expect("decode");
        assert_eq!(loaded.to_json(), session.log.to_json());
    }
}

#[test]
fn the_note_never_changes_corpus_identity() {
    let dir = temp_dir("identity");
    let source = SessionCorpus::synthetic(3, 21);
    let plain = dir.join("plain.vcorp");
    let noted = dir.join("noted.vcorp");
    write_corpus(&source, &plain, None);
    write_corpus(&source, &noted, Some("provenance only"));

    let plain = LazyCorpus::open(&plain).expect("open v1");
    let noted = LazyCorpus::open(&noted).expect("open v2");
    // Plans and disk-cache entries key on these fingerprints; a
    // provenance note must not invalidate either.
    assert_eq!(plain.deployed_fingerprint(), noted.deployed_fingerprint());
    assert_eq!(
        Corpus::content_fingerprint(&plain),
        Corpus::content_fingerprint(&noted)
    );
}

#[test]
fn versions_past_the_newest_readable_one_fail_typed() {
    let dir = temp_dir("future");
    let source = SessionCorpus::synthetic(2, 21);
    let path = dir.join("future.vcorp");
    let mut bytes = write_corpus(&source, &path, None);
    bytes[8..16].copy_from_slice(&(VCORP_VERSION_MAX + 1).to_le_bytes());
    fs::write(&path, &bytes).expect("write future-version file");
    match LazyCorpus::open(&path).expect_err("a future version must not open") {
        VcorpError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, VCORP_VERSION_MAX + 1);
            assert_eq!(supported, VCORP_VERSION_MAX);
        }
        other => panic!("expected UnsupportedVersion, got: {other}"),
    }
}
