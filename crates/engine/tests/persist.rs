//! End-to-end tests of the persistent abduction store: a warm engine run
//! over an unchanged corpus must be record-identical to the cold run and
//! perform zero EHMM inferences.

use std::path::PathBuf;
use std::sync::Arc;

use veritas::{Abduction, VeritasConfig};
use veritas_ehmm::EhmmWorkspace;
use veritas_engine::{
    config_fingerprint, infer_prefix, log_fingerprint, AggregateMetric, AggregateSpec, ConfigSweep,
    DiskStore, Engine, EngineReport, PersistKey, Query, QueryRecord, ScenarioSpec, SessionCorpus,
    SyntheticSpec,
};
use veritas_engine::{QuerySet, RunSummary};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veritas_persist_it_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus() -> SessionCorpus {
    SyntheticSpec {
        sessions: 3,
        video_duration_s: 120.0,
        ..SyntheticSpec::default()
    }
    .build()
}

/// Every query kind at once, so the warm-start equivalence covers
/// full-session posteriors, horizon prefixes, sweep variants, and
/// aggregation folds.
fn query_set(corpus: &SessionCorpus) -> QuerySet {
    let chunks = corpus.sessions[0].log.records.len();
    QuerySet::new("persist-it", VeritasConfig::paper_default().with_samples(2))
        .with_query(Query::abduction("ab"))
        .with_query(Query::interventional("iv").with_chunk_index(chunks.min(10)))
        .with_query(Query::counterfactual("cf", ScenarioSpec::abr("bba")))
        .with_query(Query::sweep(
            "sw",
            ConfigSweep::new().over_sigma(vec![0.25, 1.0]),
        ))
        .with_query(Query::aggregate(
            "agg",
            AggregateSpec::of(AggregateMetric::MeanCapacityMbps),
        ))
}

/// The comparable projection of a record stream: everything except the
/// wall-clock timing and the cache-tier tag, which legitimately differ
/// between a cold and a warm run. Byte-compared via JSON.
fn normalized_jsonl(report: &EngineReport) -> String {
    let mut out = String::new();
    for record in &report.records {
        let mut record: QueryRecord = record.clone();
        record.elapsed_us = 0;
        record.cache = None;
        out.push_str(&serde_json::to_string(&record).unwrap());
        out.push('\n');
    }
    out
}

#[test]
fn warm_run_is_record_identical_with_zero_inferences() {
    let dir = temp_dir("warm_equivalence");
    let corpus = corpus();
    let set = query_set(&corpus);

    let cold = Engine::new().with_cache_dir(&dir).unwrap();
    let cold_report = cold.run(&corpus, &set).unwrap();
    assert_eq!(cold_report.summary.errors, 0);
    assert_eq!(cold_report.summary.disk_hits, 0, "nothing to restore yet");
    assert!(cold_report.summary.cache_misses > 0);

    // A fresh engine — fresh in-memory cache, same store directory — is a
    // different process in every way that matters.
    let warm = Engine::new().with_cache_dir(&dir).unwrap();
    let warm_report = warm.run(&corpus, &set).unwrap();
    assert_eq!(warm_report.summary.errors, 0);
    assert_eq!(
        warm_report.summary.cache_misses, 0,
        "a warm run over an unchanged corpus must perform zero inferences"
    );
    assert_eq!(
        warm_report.summary.disk_hits, cold_report.summary.cache_misses,
        "every posterior the cold run inferred is restored exactly once"
    );
    for record in &warm_report.records {
        if let Some(cache) = &record.cache {
            assert!(
                cache == "disk" || cache == "hit",
                "warm-run unit used cache tier {cache:?}"
            );
        }
    }
    assert_eq!(
        normalized_jsonl(&warm_report),
        normalized_jsonl(&cold_report),
        "the warm record stream must be byte-identical to the cold one"
    );
}

#[test]
fn with_cache_dir_re_enables_a_disabled_cache() {
    // Regression: `without_cache().with_cache_dir(..)` used to return Ok
    // with a disk store that was never read or written.
    let dir = temp_dir("re_enable");
    let corpus = corpus();
    let set = query_set(&corpus);
    let cold = Engine::new()
        .without_cache()
        .with_cache_dir(&dir)
        .unwrap()
        .run(&corpus, &set)
        .unwrap()
        .summary;
    assert!(
        cold.cache_misses > 0,
        "with_cache_dir must re-enable the cache, not leave it off"
    );
    let warm = Engine::new()
        .with_cache_dir(&dir)
        .unwrap()
        .run(&corpus, &set)
        .unwrap()
        .summary;
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.disk_hits, cold.cache_misses);
}

#[test]
fn changed_corpus_content_misses_instead_of_serving_stale_posteriors() {
    let dir = temp_dir("stale");
    let corpus = corpus();
    let set = query_set(&corpus);
    Engine::new()
        .with_cache_dir(&dir)
        .unwrap()
        .run(&corpus, &set)
        .unwrap();

    // Same session count and ids, different observed content.
    let changed = SyntheticSpec {
        sessions: 3,
        video_duration_s: 120.0,
        seed: 999,
        ..SyntheticSpec::default()
    }
    .build();
    let summary = Engine::new()
        .with_cache_dir(&dir)
        .unwrap()
        .run(&changed, &set)
        .unwrap()
        .summary;
    assert_eq!(
        summary.disk_hits, 0,
        "a changed corpus must never restore another corpus's posteriors"
    );
    assert!(summary.cache_misses > 0);
}

#[test]
fn real_posteriors_round_trip_bit_equal_through_the_store() {
    let dir = temp_dir("bit_equal");
    let corpus = corpus();
    let config = VeritasConfig::paper_default();
    let store = DiskStore::open(&dir).unwrap();

    for (si, session) in corpus.sessions.iter().enumerate() {
        let horizon = session.log.records.len() - si; // vary the prefix
        let inferred = infer_prefix(&session.log, horizon, &config).unwrap();
        let key = PersistKey {
            log: log_fingerprint(&session.log),
            config: config_fingerprint(&config),
            horizon,
        };
        store.save(&key, &inferred).unwrap();

        let view = veritas_player::SessionLog {
            records: session.log.records[..horizon].to_vec(),
            ..session.log.clone()
        };
        let workspace = Arc::new(EhmmWorkspace::new(Abduction::spec_for(&config)));
        let restored = store
            .load(&key, &view, &config, workspace)
            .expect("a just-saved entry must load");

        // Bit-for-bit equality of every float, not approximate equality.
        let bits = |m: &veritas_ehmm::StateMatrix| -> Vec<u64> {
            m.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(restored.viterbi_states(), inferred.viterbi_states());
        assert_eq!(
            bits(&restored.posteriors().gamma),
            bits(&inferred.posteriors().gamma)
        );
        assert_eq!(
            restored.posteriors().xi.len(),
            inferred.posteriors().xi.len()
        );
        for (a, b) in restored
            .posteriors()
            .xi
            .iter()
            .zip(&inferred.posteriors().xi)
        {
            assert_eq!(bits(a), bits(b));
        }
        assert_eq!(
            restored.posteriors().log_likelihood.to_bits(),
            inferred.posteriors().log_likelihood.to_bits()
        );
        // The downstream consumers agree exactly too.
        assert_eq!(restored.viterbi_trace(), inferred.viterbi_trace());
        assert_eq!(restored.sample_traces(4), inferred.sample_traces(4));
        assert_eq!(
            restored.posterior_mean_chunk_capacities(),
            inferred.posterior_mean_chunk_capacities()
        );
    }
}

#[test]
fn truncated_and_garbage_store_files_degrade_to_cold_runs() {
    let dir = temp_dir("tolerate");
    let corpus = corpus();
    let set = query_set(&corpus);
    let baseline = Engine::new()
        .with_cache_dir(&dir)
        .unwrap()
        .run(&corpus, &set)
        .unwrap();

    // Mangle every persisted entry a different way.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "vpost"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "the cold run must persist entries");
    for (n, entry) in entries.iter().enumerate() {
        let bytes = std::fs::read(entry).unwrap();
        match n % 3 {
            0 => std::fs::write(entry, &bytes[..bytes.len() / 3]).unwrap(),
            1 => std::fs::write(entry, b"\xDE\xAD\xBE\xEF garbage").unwrap(),
            _ => {
                let mut flipped = bytes;
                let mid = flipped.len() / 2;
                flipped[mid] ^= 0xFF;
                std::fs::write(entry, flipped).unwrap();
            }
        }
    }

    let summary: RunSummary = Engine::new()
        .with_cache_dir(&dir)
        .unwrap()
        .run(&corpus, &set)
        .unwrap()
        .summary;
    assert_eq!(
        summary.errors, 0,
        "corrupt entries must never become errors"
    );
    assert_eq!(summary.disk_hits, 0, "nothing valid to restore");
    assert_eq!(summary.cache_misses, baseline.summary.cache_misses);

    // The corrupted entries were overwritten by write-through; a third
    // run restores everything again.
    let healed = Engine::new()
        .with_cache_dir(&dir)
        .unwrap()
        .run(&corpus, &set)
        .unwrap()
        .summary;
    assert_eq!(healed.cache_misses, 0);
    assert_eq!(healed.disk_hits, baseline.summary.cache_misses);
}
