//! Chaos tests: the supervision layer's core invariant.
//!
//! Under any seeded [`FaultPlan`] over an intact corpus, a run with
//! retries enabled must emit records identical (after timing
//! normalization) to the fault-free run — faults are absorbed, never
//! observable in the output. With retries disabled the same faults must
//! surface as typed per-record errors: the run completes, nothing
//! panics, nothing hangs.
//!
//! Every test pins `threads(1)`, which makes the fault schedule fully
//! deterministic: one worker drains the units in plan order, so the
//! mapping from fault-plan sequence numbers to units never varies. The
//! seeds below were chosen so each spec provably injects within the
//! run's minimum draw window.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use veritas::VeritasConfig;
use veritas_engine::{
    ingest_dir, Engine, FaultPlan, FaultSite, LazyCorpus, Query, QueryPlan, QueryRecord, QuerySet,
    RetryPolicy, ScenarioSpec, SessionCorpus,
};

/// Chaos specs for the invariant test: per-site rates at or below 20%,
/// seeds picked so at least one compute/panic fault lands within the
/// run's eight guaranteed abduction draws.
const CHAOS_SPECS: [&str; 3] = [
    "seed=5,compute=0.2,panic=0.05",
    "seed=10,compute=0.2,panic=0.05",
    "seed=303,compute=0.1,panic=0.2",
];

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veritas_chaos_it_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chaos_set(name: &str) -> QuerySet {
    QuerySet::new(name, VeritasConfig::paper_default().with_samples(2))
        .with_query(Query::abduction("posterior"))
        .with_query(Query::counterfactual(
            "what-if-bba",
            ScenarioSpec::abr("bba"),
        ))
}

fn normalize(mut record: QueryRecord) -> QueryRecord {
    record.elapsed_us = 0;
    record.cache = None;
    record
}

/// A retry policy tuned for tests: plenty of attempts, microsecond
/// backoffs so absorbed faults don't slow the suite down.
fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
        seed: 0xC0FFEE,
    }
}

#[test]
fn seeded_faults_with_retries_reproduce_the_fault_free_run() {
    let corpus = SessionCorpus::synthetic(4, 17);
    let set = chaos_set("chaos-invariant");
    let baseline: Vec<QueryRecord> = Engine::builder()
        .threads(1)
        .build()
        .unwrap()
        .run(&corpus, &set)
        .unwrap()
        .records
        .into_iter()
        .map(normalize)
        .collect();
    assert_eq!(baseline.len(), 8);

    for spec in CHAOS_SPECS {
        let plan = Arc::new(FaultPlan::parse(spec).unwrap());
        let engine = Engine::builder()
            .threads(1)
            .fault_plan(Arc::clone(&plan))
            .retry_policy(fast_retry(10))
            .build()
            .unwrap();
        let report = engine.run(&corpus, &set).unwrap();

        assert!(
            plan.total_injected() > 0,
            "{spec}: the plan never fired — the test proves nothing"
        );
        assert!(
            report.summary.retries > 0,
            "{spec}: faults were injected but nothing retried"
        );
        assert_eq!(
            report.summary.quarantined,
            Vec::<String>::new(),
            "{spec}: low-rate faults must never exhaust 10 attempts"
        );
        assert_eq!(
            report.summary.errors, 0,
            "{spec}: retries must absorb every fault"
        );
        let got: Vec<QueryRecord> = report.records.into_iter().map(normalize).collect();
        assert_eq!(
            got, baseline,
            "{spec}: a faulted run with retries must be indistinguishable from fault-free"
        );
    }
}

#[test]
fn injected_faults_without_retries_surface_as_typed_records() {
    let corpus = SessionCorpus::synthetic(4, 17);
    let set = chaos_set("chaos-no-retry");

    for spec in CHAOS_SPECS {
        let plan = Arc::new(FaultPlan::parse(spec).unwrap());
        let engine = Engine::builder()
            .threads(1)
            .fault_plan(Arc::clone(&plan))
            .build()
            .unwrap();
        // The run itself must succeed: faults are per-unit, never fatal.
        let report = engine.run(&corpus, &set).unwrap();

        assert!(plan.total_injected() > 0, "{spec}: the plan never fired");
        assert!(
            report.summary.errors > 0,
            "{spec}: with no retry policy an injected fault must surface"
        );
        assert_eq!(report.summary.retries, 0);
        assert_eq!(report.records.len(), 8, "{spec}: every unit still answers");
        for record in &report.records {
            if record.is_ok() {
                continue;
            }
            let error = record.error.as_deref().unwrap_or_default();
            assert!(
                error.contains("injected compute fault")
                    || error.contains("worker panicked: injected compute panic"),
                "{spec}: unexpected error text `{error}`"
            );
            assert_eq!(
                record.attempts, None,
                "{spec}: attempts is only reported under a retry policy"
            );
        }
    }
}

#[test]
fn exhausted_retries_quarantine_the_session() {
    let corpus = SessionCorpus::synthetic(2, 9);
    let set = QuerySet::new(
        "chaos-quarantine",
        VeritasConfig::paper_default().with_samples(2),
    )
    .with_query(Query::abduction("first"))
    .with_query(Query::abduction("second"));
    let plan = Arc::new(FaultPlan::parse("seed=1,compute=1").unwrap());
    let engine = Engine::builder()
        .threads(1)
        .fault_plan(plan)
        .retry_policy(fast_retry(2))
        .build()
        .unwrap();
    let report = engine.run(&corpus, &set).unwrap();

    let mut expected: Vec<String> = corpus.sessions.iter().map(|s| s.id.clone()).collect();
    expected.sort();
    assert_eq!(
        report.summary.quarantined, expected,
        "every session must be quarantined under a certain fault"
    );
    assert_eq!(report.summary.errors, 4);
    // One exhausting unit per session, each burning one retry.
    assert_eq!(report.summary.retries, 2);

    let exhausted: Vec<&QueryRecord> = report
        .records
        .iter()
        .filter(|r| r.attempts == Some(2))
        .collect();
    assert_eq!(
        exhausted.len(),
        2,
        "one unit per session exhausts its attempts"
    );
    for record in &exhausted {
        let error = record.error.as_deref().unwrap();
        assert!(
            error.contains("injected compute fault")
                || error.contains("worker panicked: injected compute panic"),
            "exhausted unit carries the last attempt's error, got `{error}`"
        );
    }
    let short_circuited: Vec<&QueryRecord> = report
        .records
        .iter()
        .filter(|r| {
            r.error
                .as_deref()
                .is_some_and(|e| e.contains("quarantined after repeated failures"))
        })
        .collect();
    assert_eq!(
        short_circuited.len(),
        2,
        "later units on a quarantined session answer without running"
    );
    for record in &short_circuited {
        assert_eq!(record.attempts, None, "short-circuits never attempt");
    }
}

#[test]
fn decode_faults_over_an_intact_vcorp_heal_through_retries() {
    let dir = temp_dir("decode");
    let sessions_dir = dir.join("sessions");
    let _ = std::fs::remove_dir_all(&sessions_dir);
    std::fs::create_dir_all(&sessions_dir).unwrap();
    let source = SessionCorpus::synthetic(3, 71);
    for session in &source.sessions {
        let path = sessions_dir.join(format!("{}.json", session.id));
        std::fs::write(path, session.log.to_json()).unwrap();
    }
    let vcorp = dir.join("corpus.vcorp");
    ingest_dir(&sessions_dir, &vcorp).unwrap();

    let set = chaos_set("chaos-decode");
    let clean = Arc::new(LazyCorpus::open(&vcorp).unwrap());
    let plan_clean = Arc::new(QueryPlan::compile(&set, clean.as_ref()).unwrap());
    let baseline: Vec<QueryRecord> = Engine::builder()
        .threads(1)
        .build()
        .unwrap()
        .submit_shared(clean, plan_clean)
        .unwrap()
        .wait()
        .records
        .into_iter()
        .map(normalize)
        .collect();

    // seed=3 injects twice within the first three decode draws — the
    // three guaranteed first-loads of a three-session corpus.
    let plan = Arc::new(FaultPlan::parse("seed=3,decode=0.2").unwrap());
    let faulted = Arc::new(
        LazyCorpus::open(&vcorp)
            .unwrap()
            .with_fault_plan(Arc::clone(&plan)),
    );
    let query_plan = Arc::new(QueryPlan::compile(&set, faulted.as_ref()).unwrap());
    let engine = Engine::builder()
        .threads(1)
        .retry_policy(fast_retry(10))
        .build()
        .unwrap();
    let report = engine.submit_shared(faulted, query_plan).unwrap().wait();

    assert!(
        plan.injected(FaultSite::Decode) > 0,
        "the decode site never fired"
    );
    assert!(report.summary.retries > 0, "decode faults must be retried");
    assert_eq!(report.summary.errors, 0);
    let got: Vec<QueryRecord> = report.records.into_iter().map(normalize).collect();
    assert_eq!(
        got, baseline,
        "retried decodes must reproduce the clean run"
    );
}

#[test]
fn disk_tier_faults_degrade_to_misses_without_errors() {
    let dir = temp_dir("disk");
    let cache_dir = dir.join("cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let corpus = SessionCorpus::synthetic(4, 17);
    let set = chaos_set("chaos-disk");

    // A clean run populates the persistent store.
    let warm = Engine::builder()
        .threads(1)
        .cache_dir(&cache_dir)
        .build()
        .unwrap();
    let baseline: Vec<QueryRecord> = warm
        .run(&corpus, &set)
        .unwrap()
        .records
        .into_iter()
        .map(normalize)
        .collect();

    // A fresh engine over the warm store, with both disk sites faulted:
    // reads degrade to misses (recompute), writes are best-effort.
    // Neither site may ever produce a unit error — no retries needed.
    let plan = Arc::new(FaultPlan::parse("seed=2,disk_read=0.5,disk_write=0.5").unwrap());
    let engine = Engine::builder()
        .threads(1)
        .cache_dir(&cache_dir)
        .fault_plan(Arc::clone(&plan))
        .build()
        .unwrap();
    let report = engine.run(&corpus, &set).unwrap();

    assert!(plan.total_injected() > 0, "the disk sites never fired");
    assert_eq!(report.summary.errors, 0, "disk faults must stay invisible");
    assert_eq!(report.summary.retries, 0);
    let got: Vec<QueryRecord> = report.records.into_iter().map(normalize).collect();
    assert_eq!(got, baseline);
}
