//! Property-based tests for the declarative query spec: arbitrary
//! `QuerySet`s must survive the JSON round trip bit-for-bit.
//!
//! Numeric caveat encoded in the strategies: the vendored serde shim's
//! data model carries every number as an `f64`, so integers round-trip
//! exactly only within 53 bits — all real query fields (indices, sample
//! counts, seeds) fit comfortably.

use proptest::prelude::*;

use veritas::VeritasConfig;
use veritas_engine::{
    AggregateMetric, AggregateSpec, ConfigSweep, Query, QueryKind, QuerySet, ScenarioSpec,
};

/// Deterministically expands one sampled u64 into a sweep grid.
fn build_sweep(bits: u64) -> ConfigSweep {
    ConfigSweep {
        sigma_mbps: (bits & 0x01 != 0).then(|| vec![0.2 + (bits >> 4 & 0x7) as f64 * 0.11, 1.0]),
        stay_probability: (bits & 0x02 != 0).then(|| vec![0.5, 0.75, 0.9]),
        num_samples: (bits & 0x04 != 0).then(|| vec![(bits >> 8) as usize % 7 + 1]),
        epsilon_mbps: (bits & 0x1000 != 0).then(|| vec![0.5, 0.25]),
        max_capacity_mbps: (bits & 0x2000 != 0).then(|| vec![8.0 + (bits >> 12 & 0x3) as f64]),
    }
}

/// Deterministically expands one sampled u64 into an aggregate spec.
fn build_aggregate(bits: u64) -> AggregateSpec {
    let metric = match bits >> 3 & 0x3 {
        0 => AggregateMetric::MeanSsim,
        1 => AggregateMetric::RebufferRatioPercent,
        2 => AggregateMetric::AvgBitrateMbps,
        _ => AggregateMetric::StartupDelayS,
    };
    let mut spec = if bits & 0x01 != 0 {
        AggregateSpec::of(AggregateMetric::MeanCapacityMbps)
    } else {
        AggregateSpec::of(metric)
    };
    if bits & 0x01 == 0 && bits & 0x02 != 0 {
        spec = spec.with_scenario(ScenarioSpec::abr("bba"));
    }
    spec
}

/// Deterministically expands one sampled u64 into a query, exercising
/// every field and every kind.
fn build_query(index: usize, bits: u64) -> Query {
    let kind = match bits % 5 {
        0 => QueryKind::Abduction,
        1 => QueryKind::Interventional,
        2 => QueryKind::Counterfactual,
        3 => QueryKind::Sweep,
        _ => QueryKind::Aggregate,
    };
    let mut query = Query::new(&format!("q{index}"), kind);
    if bits & 0x08 != 0 {
        query.sessions = Some(vec![(bits >> 8) as usize % 64, (bits >> 16) as usize % 64]);
    }
    if bits & 0x10 != 0 {
        query.scenario = Some(ScenarioSpec {
            abr: (bits & 0x20 != 0).then(|| "bba".to_string()),
            buffer_capacity_s: (bits & 0x40 != 0).then_some(((bits >> 24) & 0xFF) as f64 + 0.5),
            ladder: (bits & 0x80 != 0).then(|| "higher".to_string()),
        });
    }
    if bits & 0x100 != 0 {
        query.chunk_index = Some((bits >> 32) as usize % 1000 + 1);
    }
    if bits & 0x200 != 0 {
        query.candidate_size_bytes = Some(((bits >> 40) as f64 + 1.0) * 1e3);
    }
    if bits & 0x400 != 0 {
        query.samples = Some((bits >> 48) as usize % 16 + 1);
    }
    if bits & 0x800 != 0 {
        query.seed = Some(bits >> 11); // stays within 53 bits
    }
    if kind == QueryKind::Sweep || bits & 0x4000 != 0 {
        query.sweep = Some(build_sweep(bits >> 5));
    }
    if kind == QueryKind::Aggregate || bits & 0x8000 != 0 {
        query.aggregate = Some(build_aggregate(bits >> 17));
    }
    query
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_sets_round_trip_through_json(
        (query_bits, sigma, samples, stay) in (
            prop::collection::vec(0u64..u64::MAX, 1..12),
            0.1f64..2.0,
            1usize..8,
            0.05f64..0.99,
        ),
    ) {
        let config = VeritasConfig::paper_default()
            .with_sigma((sigma * 1e6).round() / 1e6)
            .with_samples(samples)
            .with_stay_probability((stay * 1e6).round() / 1e6);
        let mut set = QuerySet::new("prop", config);
        for (i, &bits) in query_bits.iter().enumerate() {
            set = set.with_query(build_query(i, bits));
        }
        let json = set.to_json();
        let back = QuerySet::from_json(&json).unwrap();
        prop_assert_eq!(&back, &set, "round trip changed the set; json was:\n{}", json);
        // A second trip is a fixed point.
        prop_assert_eq!(QuerySet::from_json(&back.to_json()).unwrap(), back);
    }

    #[test]
    fn compact_and_pretty_json_agree(bits in 0u64..u64::MAX) {
        let set = QuerySet::new("one", VeritasConfig::paper_default())
            .with_query(build_query(0, bits));
        let compact: QuerySet =
            serde_json::from_str(&serde_json::to_string(&set).unwrap()).unwrap();
        prop_assert_eq!(compact, set);
    }

    #[test]
    fn sweeps_expand_the_declared_product_and_validate(bits in 0u64..u64::MAX) {
        let base = VeritasConfig::paper_default();
        let sweep = build_sweep(bits | 0x01); // at least one axis present
        prop_assert!(sweep.validate(&base).is_ok(), "sweep was: {:?}", sweep);
        let variants = sweep.expand(&base);
        prop_assert_eq!(variants.len(), sweep.variant_count());
        // Labels are unique and every variant is a valid configuration.
        let mut labels: Vec<&str> = variants.iter().map(|(l, _)| l.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        prop_assert_eq!(labels.len(), variants.len(), "duplicate sweep labels");
        for (label, config) in &variants {
            prop_assert!(config.validate().is_ok(), "variant `{}` invalid", label);
        }
        // A sweep query built from it round-trips through JSON. A
        // num_samples axis is only valid on a replaying sweep, so give
        // those a scenario.
        let mut query = Query::sweep("sw", sweep);
        if query.sweep.as_ref().unwrap().num_samples.is_some() {
            query = query.with_scenario(ScenarioSpec::abr("bba"));
        }
        let set = QuerySet::new("sweep", base).with_query(query);
        prop_assert!(set.validate().is_ok());
        prop_assert_eq!(QuerySet::from_json(&set.to_json()).unwrap(), set);
    }

    #[test]
    fn aggregate_specs_round_trip_and_validate(bits in 0u64..u64::MAX) {
        let spec = build_aggregate(bits);
        prop_assert!(spec.validate().is_ok(), "spec was: {:?}", spec);
        let set = QuerySet::new("agg", VeritasConfig::paper_default())
            .with_query(Query::aggregate("a", spec));
        prop_assert!(set.validate().is_ok());
        prop_assert_eq!(QuerySet::from_json(&set.to_json()).unwrap(), set);
    }
}
