//! Property-based tests for the declarative query spec: arbitrary
//! `QuerySet`s must survive the JSON round trip bit-for-bit.
//!
//! Numeric caveat encoded in the strategies: the vendored serde shim's
//! data model carries every number as an `f64`, so integers round-trip
//! exactly only within 53 bits — all real query fields (indices, sample
//! counts, seeds) fit comfortably.

use proptest::prelude::*;

use veritas::VeritasConfig;
use veritas_engine::{Query, QueryKind, QuerySet, ScenarioSpec};

/// Deterministically expands one sampled u64 into a query, exercising
/// every field and every kind.
fn build_query(index: usize, bits: u64) -> Query {
    let kind = match bits % 3 {
        0 => QueryKind::Abduction,
        1 => QueryKind::Interventional,
        _ => QueryKind::Counterfactual,
    };
    let mut query = Query::new(&format!("q{index}"), kind);
    if bits & 0x08 != 0 {
        query.sessions = Some(vec![(bits >> 8) as usize % 64, (bits >> 16) as usize % 64]);
    }
    if bits & 0x10 != 0 {
        query.scenario = Some(ScenarioSpec {
            abr: (bits & 0x20 != 0).then(|| "bba".to_string()),
            buffer_capacity_s: (bits & 0x40 != 0).then_some(((bits >> 24) & 0xFF) as f64 + 0.5),
            ladder: (bits & 0x80 != 0).then(|| "higher".to_string()),
        });
    }
    if bits & 0x100 != 0 {
        query.chunk_index = Some((bits >> 32) as usize % 1000 + 1);
    }
    if bits & 0x200 != 0 {
        query.candidate_size_bytes = Some(((bits >> 40) as f64 + 1.0) * 1e3);
    }
    if bits & 0x400 != 0 {
        query.samples = Some((bits >> 48) as usize % 16 + 1);
    }
    if bits & 0x800 != 0 {
        query.seed = Some(bits >> 11); // stays within 53 bits
    }
    query
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_sets_round_trip_through_json(
        (query_bits, sigma, samples, stay) in (
            prop::collection::vec(0u64..u64::MAX, 1..12),
            0.1f64..2.0,
            1usize..8,
            0.05f64..0.99,
        ),
    ) {
        let config = VeritasConfig::paper_default()
            .with_sigma((sigma * 1e6).round() / 1e6)
            .with_samples(samples)
            .with_stay_probability((stay * 1e6).round() / 1e6);
        let mut set = QuerySet::new("prop", config);
        for (i, &bits) in query_bits.iter().enumerate() {
            set = set.with_query(build_query(i, bits));
        }
        let json = set.to_json();
        let back = QuerySet::from_json(&json).unwrap();
        prop_assert_eq!(&back, &set, "round trip changed the set; json was:\n{}", json);
        // A second trip is a fixed point.
        prop_assert_eq!(QuerySet::from_json(&back.to_json()).unwrap(), back);
    }

    #[test]
    fn compact_and_pretty_json_agree(bits in 0u64..u64::MAX) {
        let set = QuerySet::new("one", VeritasConfig::paper_default())
            .with_query(build_query(0, bits));
        let compact: QuerySet =
            serde_json::from_str(&serde_json::to_string(&set).unwrap()).unwrap();
        prop_assert_eq!(compact, set);
    }
}
