//! Integration tests for the compile → execute → consume pipeline:
//! streamed records must match the batch path exactly (any order, any
//! shard count), sweeps must expand config grids through one plan, and
//! aggregations must fold correctly from the stream.

use veritas::VeritasConfig;
use veritas_engine::{
    AggregateMetric, AggregateSpec, ConfigSweep, Engine, Query, QueryPlan, QueryRecord, QuerySet,
    ScenarioSpec, SessionCorpus, SyntheticSpec, AGGREGATE_SESSION,
};

fn corpus(sessions: usize) -> SessionCorpus {
    SyntheticSpec {
        sessions,
        video_duration_s: 120.0,
        ..SyntheticSpec::default()
    }
    .build()
}

fn config() -> VeritasConfig {
    VeritasConfig::paper_default().with_samples(2)
}

/// Strips the fields that legitimately differ between two executions of
/// the same plan: wall-clock timing, and which concurrent unit won the
/// race to be the cache miss.
fn normalized(mut record: QueryRecord) -> QueryRecord {
    record.elapsed_us = 0;
    record.cache = None;
    record
}

fn sorted(mut records: Vec<QueryRecord>) -> Vec<QueryRecord> {
    records.sort_by(|a, b| {
        (&a.query_id, &a.variant, &a.session).cmp(&(&b.query_id, &b.variant, &b.session))
    });
    records
}

#[test]
fn streamed_records_match_the_batch_run_exactly() {
    let corpus = corpus(3);
    let set = QuerySet::new("equivalence", config())
        .with_query(Query::abduction("ab"))
        .with_query(Query::counterfactual("cf", ScenarioSpec::abr("bba")))
        .with_query(Query::interventional("iv"))
        .with_query(Query::counterfactual("cf-seeded", ScenarioSpec::abr("bola")).with_seed(99));
    let batch = Engine::new().run(&corpus, &set).unwrap();

    for shards in [1, 2, 3] {
        let plan = QueryPlan::compile(&set, &corpus).unwrap();
        let engine = Engine::new().with_shards(shards);
        let mut handle = engine.submit(&corpus, &plan).unwrap();
        let streamed: Vec<QueryRecord> = (&mut handle).collect();
        let summary = handle.into_summary();
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.shards, shards);
        assert_eq!(streamed.len(), batch.records.len());
        let streamed = sorted(streamed.into_iter().map(normalized).collect());
        let expected = sorted(batch.records.iter().cloned().map(normalized).collect());
        assert_eq!(
            streamed, expected,
            "streamed records (shards={shards}) must match Engine::run records"
        );
    }
}

#[test]
fn run_is_submit_then_wait() {
    let corpus = corpus(2);
    let set = QuerySet::new("wrap", config())
        .with_query(Query::abduction("ab"))
        .with_query(Query::counterfactual("cf", ScenarioSpec::buffer(30.0)));
    let plan = QueryPlan::compile(&set, &corpus).unwrap();
    let via_run = Engine::new().run(&corpus, &set).unwrap();
    let via_wait = Engine::new().submit(&corpus, &plan).unwrap().wait();
    // Deterministic order on both paths, identical outputs.
    let a: Vec<QueryRecord> = via_run.records.into_iter().map(normalized).collect();
    let b: Vec<QueryRecord> = via_wait.records.into_iter().map(normalized).collect();
    assert_eq!(a, b);
}

#[test]
fn sweep_expands_variants_through_one_plan() {
    let corpus = corpus(2);
    let set = QuerySet::new("sweep", config()).with_query(Query::sweep(
        "sigma-sweep",
        ConfigSweep::new().over_sigma(vec![0.25, 0.5, 1.0]),
    ));
    let plan = QueryPlan::compile(&set, &corpus).unwrap();
    assert_eq!(plan.units().len(), 6, "3 variants x 2 sessions");
    assert_eq!(plan.configs().len(), 4, "base + 3 variants");

    let report = Engine::new().run(&corpus, &set).unwrap();
    assert_eq!(report.summary.units, 6);
    assert_eq!(report.summary.errors, 0);
    let mut variants: Vec<String> = report
        .records
        .iter()
        .map(|r| r.variant.clone().expect("sweep records carry a variant"))
        .collect();
    variants.sort();
    variants.dedup();
    assert_eq!(
        variants,
        vec!["sigma=0.25", "sigma=0.5", "sigma=1"],
        "every config variant must be labeled in the records"
    );
    // Distinct posteriors per sigma: the noisier emission model must not
    // produce bitwise-identical capacity estimates for every variant.
    let mean_for = |variant: &str| -> f64 {
        report
            .records
            .iter()
            .find(|r| r.variant.as_deref() == Some(variant) && r.session == "session-0")
            .and_then(|r| r.output.as_ref())
            .and_then(|o| o.mean_capacity_mbps)
            .expect("sweep abduction output")
    };
    assert_ne!(mean_for("sigma=0.25"), mean_for("sigma=1"));
}

#[test]
fn counterfactual_sweep_replays_each_variant() {
    let corpus = corpus(2);
    let set = QuerySet::new("cf-sweep", config()).with_query(
        Query::sweep(
            "samples-sweep",
            ConfigSweep::new().over_samples(vec![1, 2, 3]),
        )
        .with_scenario(ScenarioSpec::abr("bba")),
    );
    let report = Engine::new().run(&corpus, &set).unwrap();
    assert_eq!(report.summary.errors, 0);
    assert_eq!(report.summary.units, 6);
    // The sample-count axis steers posterior sampling of the replay.
    for expected in [1usize, 2, 3] {
        let record = report
            .records
            .iter()
            .find(|r| r.variant.as_deref() == Some(&format!("samples={expected}")))
            .unwrap();
        let veritas = record.output.as_ref().unwrap().veritas.unwrap();
        assert_eq!(veritas.samples, expected);
    }
    // One abduction per session serves all three variants: the sampling
    // count is excluded from the cache fingerprint.
    assert_eq!(report.summary.cache_misses, 2);
    assert_eq!(report.summary.cache_hits, 4);
}

#[test]
fn aggregate_folds_incrementally_from_the_stream() {
    let corpus = corpus(4);
    let set = QuerySet::new("agg", config())
        .with_query(Query::abduction("ab"))
        .with_query(Query::aggregate(
            "capacity",
            AggregateSpec::of(AggregateMetric::MeanCapacityMbps),
        ));
    let plan = QueryPlan::compile(&set, &corpus).unwrap();
    let engine = Engine::new();
    let mut handle = engine.submit(&corpus, &plan).unwrap();
    let records: Vec<QueryRecord> = (&mut handle).collect();
    let summary = handle.into_summary();
    assert_eq!(summary.errors, 0);
    // 4 abduction + 4 aggregate units + 1 folded record.
    assert_eq!(records.len(), 9);
    assert_eq!(summary.units, 9);

    let finals: Vec<&QueryRecord> = records
        .iter()
        .filter(|r| r.session == AGGREGATE_SESSION)
        .collect();
    assert_eq!(finals.len(), 1);
    let aggregate = finals[0].output.as_ref().unwrap().aggregate.unwrap();
    assert_eq!(aggregate.metric, AggregateMetric::MeanCapacityMbps);
    assert_eq!(aggregate.sessions, 4);

    // The fold must equal a reduction over the per-session scalars.
    let mut values: Vec<f64> = records
        .iter()
        .filter(|r| r.query_id == "capacity" && r.session != AGGREGATE_SESSION)
        .map(|r| r.output.as_ref().unwrap().metric_value.unwrap())
        .collect();
    assert_eq!(values.len(), 4);
    values.sort_by(f64::total_cmp);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    assert!((aggregate.mean - mean).abs() < 1e-12);
    assert_eq!(aggregate.min, values[0]);
    assert_eq!(aggregate.max, values[3]);
    assert!(aggregate.min <= aggregate.p50 && aggregate.p50 <= aggregate.p95);
    assert!(aggregate.p95 <= aggregate.max);
    // The per-session scalar is the abduction's posterior mean capacity —
    // cross-check against the plain abduction query on the same sessions.
    for record in records.iter().filter(|r| r.query_id == "ab") {
        let expected = record.output.as_ref().unwrap().mean_capacity_mbps.unwrap();
        let scalar = records
            .iter()
            .find(|r| r.query_id == "capacity" && r.session == record.session)
            .and_then(|r| r.output.as_ref())
            .and_then(|o| o.metric_value)
            .unwrap();
        assert_eq!(scalar, expected);
    }
}

#[test]
fn qoe_aggregates_replay_the_declared_scenario() {
    let corpus = corpus(2);
    let set = QuerySet::new("agg-qoe", config())
        .with_query(Query::aggregate(
            "rebuffer-bba",
            AggregateSpec::of(AggregateMetric::RebufferRatioPercent)
                .with_scenario(ScenarioSpec::abr("bba")),
        ))
        .with_query(Query::counterfactual("cf", ScenarioSpec::abr("bba")));
    let report = Engine::new().run(&corpus, &set).unwrap();
    assert_eq!(report.summary.errors, 0);
    let aggregate = report.aggregate_for("rebuffer-bba").unwrap();
    assert_eq!(aggregate.sessions, 2);
    // Each per-session scalar is the Veritas-median rebuffer ratio of the
    // same counterfactual replay.
    for record in report.records_for("cf") {
        let veritas = record.output.as_ref().unwrap().veritas.unwrap();
        let scalar = report
            .records
            .iter()
            .find(|r| r.query_id == "rebuffer-bba" && r.session == record.session)
            .and_then(|r| r.output.as_ref())
            .and_then(|o| o.metric_value)
            .unwrap();
        assert_eq!(scalar, veritas.rebuffer_median);
    }
    // And the fold is bounded by its contributions.
    assert!(aggregate.min <= aggregate.mean && aggregate.mean <= aggregate.max);
}

#[test]
fn aggregate_over_failing_units_reports_a_fold_error() {
    let corpus = corpus(2);
    let set = QuerySet::new("agg-err", config()).with_query(Query::aggregate(
        "broken",
        AggregateSpec::of(AggregateMetric::MeanSsim).with_scenario(ScenarioSpec::abr("pensieve")),
    ));
    let report = Engine::new().run(&corpus, &set).unwrap();
    // 2 unit errors + 1 fold error.
    assert_eq!(report.summary.errors, 3);
    assert_eq!(report.aggregate_for("broken"), None);
    let fold = report
        .records
        .iter()
        .find(|r| r.session == AGGREGATE_SESSION)
        .unwrap();
    assert!(!fold.is_ok());
    assert!(fold.error.as_ref().unwrap().contains("no session"));
}

#[test]
fn sharded_aggregation_matches_unsharded() {
    let corpus = corpus(5);
    let set = QuerySet::new("agg-shards", config()).with_query(Query::aggregate(
        "capacity",
        AggregateSpec::of(AggregateMetric::MeanCapacityMbps),
    ));
    let unsharded = Engine::new().run(&corpus, &set).unwrap();
    let plan = QueryPlan::compile(&set, &corpus).unwrap();
    let sharded = Engine::new()
        .with_shards(3)
        .submit(&corpus, &plan)
        .unwrap()
        .wait();
    assert_eq!(
        unsharded.aggregate_for("capacity").unwrap(),
        sharded.aggregate_for("capacity").unwrap(),
        "the fold is order-independent, so sharding must not change it"
    );
    assert_eq!(sharded.summary.shards, 3);
}

#[test]
fn sweep_and_aggregate_round_trip_through_query_json() {
    let set = QuerySet::new("wire", config())
        .with_query(Query::sweep(
            "sw",
            ConfigSweep::new()
                .over_sigma(vec![0.25, 0.5])
                .over_stay_probability(vec![0.7, 0.9]),
        ))
        .with_query(Query::aggregate(
            "agg",
            AggregateSpec::of(AggregateMetric::AvgBitrateMbps)
                .with_scenario(ScenarioSpec::ladder("higher")),
        ));
    assert!(set.validate().is_ok());
    let back = QuerySet::from_json(&set.to_json()).unwrap();
    assert_eq!(back, set);
    // Typos inside the new specs are rejected with pointed errors.
    let err = QuerySet::from_json(
        r#"{"queries": [{"id": "s", "kind": "sweep", "sweep": {"sigma": [0.5]}}]}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("sigma"), "{err}");
    let err = QuerySet::from_json(
        r#"{"queries": [{"id": "a", "kind": "aggregate", "aggregate": {"metric": "qoe"}}]}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("qoe"), "{err}");
}

#[test]
fn partial_iteration_then_summary_is_safe() {
    let corpus = corpus(3);
    let set = QuerySet::new("partial", config()).with_query(Query::abduction("ab"));
    let plan = QueryPlan::compile(&set, &corpus).unwrap();
    let engine = Engine::new();
    let mut handle = engine.submit(&corpus, &plan).unwrap();
    let first = handle.next().unwrap();
    assert!(first.is_ok());
    // into_summary drains the rest; every unit is still accounted for.
    let summary = handle.into_summary();
    assert_eq!(summary.units, 3);
    assert_eq!(summary.ok, 3);

    // Dropping a handle mid-run must not hang or panic.
    let handle = engine.submit(&corpus, &plan).unwrap();
    drop(handle);
}
