//! Distributed execution: the [`Coordinator`] must be an invisible
//! deployment detail.
//!
//! The contract under test: for any worker count, any shard count, and
//! any completion order — including orders forced by killing workers
//! mid-shard — the merged output is byte-identical (after timing
//! normalization) to the single-process [`Engine::run`] batch. Workers
//! here are real `veritasd` processes spawned from the build's own
//! binary, speaking the production wire protocol over loopback.

use std::net::SocketAddr;
use std::sync::Arc;

use veritas::VeritasConfig;
use veritas_engine::{
    AggregateMetric, AggregateSpec, Coordinator, DistConfig, Engine, FaultPlan, FaultSite, Query,
    QueryPlan, QueryRecord, QuerySet, RetryPolicy, RunSummary, ScenarioSpec, SessionCorpus,
    AGGREGATE_SESSION,
};

const SESSIONS: usize = 4;
const SEED: u64 = 17;

fn corpus() -> SessionCorpus {
    SessionCorpus::synthetic(SESSIONS, SEED)
}

/// One query of each execution shape: a plain per-session unit, a
/// scenario re-simulation, and a corpus-level fold.
fn dist_set() -> QuerySet {
    QuerySet::new("dist", VeritasConfig::paper_default().with_samples(2))
        .with_query(Query::abduction("posterior"))
        .with_query(Query::counterfactual(
            "what-if-bba",
            ScenarioSpec::abr("bba"),
        ))
        .with_query(Query::aggregate(
            "mean-ssim",
            AggregateSpec::of(AggregateMetric::MeanSsim),
        ))
}

fn worker_command() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_veritasd").to_string()]
}

/// Worker args that rebuild the coordinator's corpus bit-exactly.
fn worker_args() -> Vec<String> {
    vec![
        "--synthetic".to_string(),
        SESSIONS.to_string(),
        "--seed".to_string(),
        SEED.to_string(),
    ]
}

/// Serializes records with the timing fields zeroed: `elapsed_us` is
/// wall clock and `cache` depends on which worker's warm cache a unit
/// landed on; everything else must match bit for bit.
fn normalized(records: &[QueryRecord]) -> Vec<String> {
    records
        .iter()
        .map(|record| {
            let mut record = record.clone();
            record.elapsed_us = 0;
            record.cache = None;
            serde_json::to_string(&record).expect("records serialize")
        })
        .collect()
}

fn baseline() -> (Vec<String>, RunSummary) {
    let engine = Engine::builder().build().expect("build engine");
    let report = engine.run(&corpus(), &dist_set()).expect("baseline run");
    (normalized(&report.records), report.summary)
}

#[test]
fn merge_is_byte_identical_across_worker_and_shard_counts() {
    let (expected, base) = baseline();
    let set = dist_set();
    // Worker and shard counts permute both the partitioning and the
    // completion order (each worker process races the others); every
    // combination must collapse to the same batch.
    for (workers, shards) in [(1, 0), (2, 0), (3, 0), (3, 1), (3, 2), (3, 4)] {
        let coordinator = Coordinator::spawn(
            workers,
            &worker_command(),
            &worker_args(),
            DistConfig {
                shards,
                ..DistConfig::default()
            },
        )
        .expect("spawn worker pool");
        let report = coordinator
            .run(Arc::new(corpus()), &set)
            .expect("distributed run");
        assert_eq!(
            normalized(&report.records),
            expected,
            "workers={workers} shards={shards}"
        );
        assert_eq!(report.summary.ok, base.ok, "workers={workers}");
        assert_eq!(report.summary.errors, 0, "workers={workers}");
        assert_eq!(report.summary.shard_retries, 0, "workers={workers}");
        assert_eq!(report.summary.threads, workers, "workers={workers}");
    }
}

#[test]
fn streaming_consumption_yields_the_same_record_set() {
    let (expected, _) = baseline();
    let set = dist_set();
    let coordinator =
        Coordinator::spawn(2, &worker_command(), &worker_args(), DistConfig::default())
            .expect("spawn worker pool");
    let shared: Arc<SessionCorpus> = Arc::new(corpus());
    let plan = Arc::new(QueryPlan::compile(&set, shared.as_ref()).expect("compile"));
    let mut handle = coordinator.submit(shared, plan).expect("submit");
    let streamed: Vec<QueryRecord> = (&mut handle).collect();
    let summary = handle.into_summary();
    // Streaming surfaces records in arrival order — a permutation of
    // the batch, never a different multiset.
    let mut streamed = normalized(&streamed);
    streamed.sort_unstable();
    let mut expected = expected;
    expected.sort_unstable();
    assert_eq!(streamed, expected);
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.shard_retries, 0);
}

/// Finds a seed where the socket fault stream fires on draw 0 and stays
/// quiet for the next 15 draws: every worker process then resets exactly
/// the first request it receives and serves everything after, making the
/// chaos run's retry count — and its output — deterministic.
fn calibrated_socket_seed() -> u64 {
    (0..10_000u64)
        .find(|seed| {
            let probe =
                FaultPlan::parse(&format!("seed={seed},socket=0.05")).expect("valid fault spec");
            let draws: Vec<bool> = (0..16)
                .map(|_| probe.should_inject(FaultSite::Socket))
                .collect();
            draws[0] && !draws[1..].contains(&true)
        })
        .expect("a calibrated seed exists well inside 10k candidates")
}

#[test]
fn a_killed_worker_costs_retries_but_never_changes_the_output() {
    let (expected, _) = baseline();
    let workers = 3;
    let seed = calibrated_socket_seed();
    let mut args = worker_args();
    args.push("--fault-spec".to_string());
    args.push(format!("seed={seed},socket=0.05"));
    // One shard per worker and attempts = workers + 1: even if a shard's
    // retries walk the whole pool (each worker kills its own first
    // request), the last hop lands on a worker that has already spent
    // its fault.
    let coordinator = Coordinator::spawn(
        workers,
        &worker_command(),
        &args,
        DistConfig {
            shards: workers,
            retry: RetryPolicy::with_max_attempts(workers as u32 + 1),
            ..DistConfig::default()
        },
    )
    .expect("spawn faulted worker pool");
    let report = coordinator
        .run(Arc::new(corpus()), &dist_set())
        .expect("chaos run");
    // Each of the three workers reset exactly one request, so exactly
    // three shard dispatches were retried — and the merged batch is
    // still the fault-free bytes.
    assert_eq!(report.summary.shard_retries, workers as u64);
    assert_eq!(report.summary.errors, 0);
    assert_eq!(normalized(&report.records), expected);
}

#[test]
fn exhausted_shards_degrade_to_typed_error_records() {
    // Nothing listens here: every dispatch attempt is refused, so the
    // single shard exhausts its two attempts and the coordinator must
    // synthesize per-unit error records instead of failing the run.
    let dead: SocketAddr = "127.0.0.1:9".parse().expect("addr");
    let coordinator = Coordinator::connect(
        vec![dead],
        DistConfig {
            retry: RetryPolicy::with_max_attempts(2),
            ..DistConfig::default()
        },
    )
    .expect("connect");
    let report = coordinator
        .run(Arc::new(corpus()), &dist_set())
        .expect("a dead pool degrades, it does not abort");
    assert_eq!(report.summary.ok, 0);
    assert_eq!(report.summary.errors, report.records.len());
    assert_eq!(report.summary.shard_retries, 1, "one re-dispatch per shard");
    for record in &report.records {
        assert_eq!(record.status, "error");
        if record.session != AGGREGATE_SESSION {
            assert_eq!(record.attempts, Some(2));
            let error = record.error.as_deref().unwrap_or_default();
            assert!(
                error.contains("failed after 2 attempts"),
                "unit error must name the exhausted shard: {error}"
            );
        }
    }
}
