//! CLI-level tests of the `veritas` binary: exit-status behavior on
//! per-unit errors (`--allow-errors`), and the sharded streaming path.

use std::path::PathBuf;
use std::process::{Command, Output};

use veritas_engine::QueryRecord;

fn veritas(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_veritas"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("the veritas binary must run")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veritas_cli_test_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn run_exits_nonzero_on_unit_errors_unless_allowed() {
    let dir = temp_dir("exit_status");
    // chunk_index far out of range: every unit fails (cheaply, before any
    // inference), so the run completes but carries errors.
    std::fs::write(
        dir.join("bad.json"),
        r#"{"queries": [{"id": "bad", "kind": "interventional", "chunk_index": 100000}]}"#,
    )
    .unwrap();

    let failing = veritas(
        &[
            "run",
            "bad.json",
            "--synthetic",
            "2",
            "--out",
            "report.jsonl",
        ],
        &dir,
    );
    assert!(
        !failing.status.success(),
        "per-unit errors must fail the run: {}",
        String::from_utf8_lossy(&failing.stderr)
    );
    let stderr = String::from_utf8_lossy(&failing.stderr);
    assert!(stderr.contains("--allow-errors"), "stderr was: {stderr}");
    // The records were still written before the nonzero exit.
    let report = std::fs::read_to_string(dir.join("report.jsonl")).unwrap();
    assert_eq!(report.lines().count(), 2);

    let allowed = veritas(
        &[
            "run",
            "bad.json",
            "--synthetic",
            "2",
            "--allow-errors",
            "--out",
            "report.jsonl",
        ],
        &dir,
    );
    assert!(
        allowed.status.success(),
        "--allow-errors must downgrade unit errors to exit 0: {}",
        String::from_utf8_lossy(&allowed.stderr)
    );
}

#[test]
fn run_rejects_invalid_query_files_with_nonzero_exit() {
    let dir = temp_dir("invalid_query");
    std::fs::write(
        dir.join("invalid.json"),
        r#"{"queries": [{"id": "s", "kind": "sweep"}]}"#,
    )
    .unwrap();
    let output = veritas(&["run", "invalid.json", "--synthetic", "2"], &dir);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("sweep"), "stderr was: {stderr}");
}

#[test]
fn streamed_sharded_run_writes_valid_jsonl() {
    let dir = temp_dir("stream");
    std::fs::write(
        dir.join("queries.json"),
        r#"{"queries": [{"id": "posterior", "kind": "abduction"}]}"#,
    )
    .unwrap();
    let output = veritas(
        &[
            "run",
            "queries.json",
            "--synthetic",
            "2",
            "--stream",
            "--shards",
            "2",
            "--out",
            "stream.jsonl",
            "--summary",
            "summary.json",
        ],
        &dir,
    );
    assert!(
        output.status.success(),
        "streamed run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(dir.join("stream.jsonl")).unwrap();
    let records: Vec<QueryRecord> = report
        .lines()
        .map(|line| serde_json::from_str(line).expect("every streamed line is a record"))
        .collect();
    assert_eq!(records.len(), 2);
    assert!(records.iter().all(|r| r.is_ok()));
    let summary = std::fs::read_to_string(dir.join("summary.json")).unwrap();
    assert!(summary.contains("\"shards\": 2"), "summary was: {summary}");
}

#[test]
fn an_ingested_vcorp_reproduces_its_directory_run_and_shares_its_cache() {
    let dir = temp_dir("ingest_roundtrip");
    let _ = std::fs::remove_dir_all(dir.join("sessions"));
    let _ = std::fs::remove_dir_all(dir.join("store"));
    let _ = std::fs::remove_file(dir.join("corpus.vcorp"));
    std::fs::write(
        dir.join("queries.json"),
        r#"{"queries": [
            {"id": "posterior", "kind": "abduction"},
            {"id": "what-if", "kind": "counterfactual", "scenario": {"abr": "bba"}}
        ]}"#,
    )
    .unwrap();

    // Materialize a JSON session directory with the CLI itself, then
    // convert it.
    let synth = veritas(
        &[
            "synth",
            "--out",
            "sessions",
            "--sessions",
            "3",
            "--seed",
            "77",
        ],
        &dir,
    );
    assert!(
        synth.status.success(),
        "synth failed: {}",
        String::from_utf8_lossy(&synth.stderr)
    );
    let ingest = veritas(&["ingest", "sessions", "--out", "corpus.vcorp"], &dir);
    assert!(
        ingest.status.success(),
        "ingest failed: {}",
        String::from_utf8_lossy(&ingest.stderr)
    );
    let stdout = String::from_utf8_lossy(&ingest.stdout);
    assert!(stdout.contains("ingested 3 sessions"), "stdout: {stdout}");

    let run = |corpus: &str, out: &str, summary: &str| {
        let output = veritas(
            &[
                "run",
                "queries.json",
                "--corpus",
                corpus,
                "--cache-dir",
                "store",
                "--out",
                out,
                "--summary",
                summary,
            ],
            &dir,
        );
        assert!(
            output.status.success(),
            "run over {corpus} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    run("sessions", "dir.jsonl", "dir-summary.json");
    run("corpus.vcorp", "vcorp.jsonl", "vcorp-summary.json");

    // Identical causal payload from either corpus source.
    let normalize = |name: &str| -> Vec<String> {
        std::fs::read_to_string(dir.join(name))
            .unwrap()
            .lines()
            .map(|line| {
                let mut record: QueryRecord = serde_json::from_str(line).unwrap();
                record.elapsed_us = 0;
                record.cache = None;
                serde_json::to_string(&record).unwrap()
            })
            .collect()
    };
    let records = normalize("dir.jsonl");
    assert!(!records.is_empty());
    assert_eq!(records, normalize("vcorp.jsonl"));

    // The `.vcorp` run shares the directory run's cache keys: it restores
    // every posterior from the store written by the first run and infers
    // nothing.
    let summary_of = |name: &str| -> veritas_engine::RunSummary {
        serde_json::from_str(&std::fs::read_to_string(dir.join(name)).unwrap()).unwrap()
    };
    let dir_summary = summary_of("dir-summary.json");
    let vcorp_summary = summary_of("vcorp-summary.json");
    assert!(dir_summary.cache_misses > 0);
    assert_eq!(
        vcorp_summary.cache_misses, 0,
        "the .vcorp run must be served entirely from the shared cache"
    );
    assert_eq!(vcorp_summary.disk_hits, dir_summary.cache_misses);
}

#[test]
fn ingest_rejects_bad_invocations_with_usage_errors() {
    let dir = temp_dir("ingest_usage");
    let missing_out = veritas(&["ingest", "sessions"], &dir);
    assert_eq!(missing_out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&missing_out.stderr);
    assert!(stderr.contains("--out"), "stderr: {stderr}");

    let missing_dir = veritas(&["ingest", "--out", "x.vcorp"], &dir);
    assert_eq!(missing_dir.status.code(), Some(2));

    // A directory with no session logs is a corpus-format error (exit 2),
    // and no output file is left behind.
    std::fs::create_dir_all(dir.join("empty")).unwrap();
    let empty = veritas(&["ingest", "empty", "--out", "empty.vcorp"], &dir);
    assert!(!empty.status.success());
    assert!(!dir.join("empty.vcorp").exists());
}

#[test]
fn cache_dir_warm_starts_a_second_run_without_inference() {
    let dir = temp_dir("cache_dir");
    let _ = std::fs::remove_dir_all(dir.join("store"));
    std::fs::write(
        dir.join("queries.json"),
        r#"{"queries": [
            {"id": "posterior", "kind": "abduction"},
            {"id": "what-if", "kind": "counterfactual", "scenario": {"abr": "bba"}}
        ]}"#,
    )
    .unwrap();
    let run = |out: &str, summary: &str| {
        veritas(
            &[
                "run",
                "queries.json",
                "--synthetic",
                "2",
                "--cache-dir",
                "store",
                "--out",
                out,
                "--summary",
                summary,
            ],
            &dir,
        )
    };
    let cold = run("cold.jsonl", "cold-summary.json");
    assert!(
        cold.status.success(),
        "cold run failed: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let warm = run("warm.jsonl", "warm-summary.json");
    assert!(warm.status.success());

    let summary_of = |name: &str| -> veritas_engine::RunSummary {
        serde_json::from_str(&std::fs::read_to_string(dir.join(name)).unwrap()).unwrap()
    };
    let cold_summary = summary_of("cold-summary.json");
    let warm_summary = summary_of("warm-summary.json");
    assert_eq!(cold_summary.disk_hits, 0);
    assert!(cold_summary.cache_misses > 0);
    assert_eq!(
        warm_summary.cache_misses, 0,
        "the second --cache-dir run must perform zero inferences"
    );
    assert_eq!(warm_summary.disk_hits, cold_summary.cache_misses);

    // The record streams agree on everything but timing and cache tier.
    let normalize = |name: &str| -> Vec<String> {
        std::fs::read_to_string(dir.join(name))
            .unwrap()
            .lines()
            .map(|line| {
                let mut record: QueryRecord = serde_json::from_str(line).unwrap();
                record.elapsed_us = 0;
                record.cache = None;
                serde_json::to_string(&record).unwrap()
            })
            .collect()
    };
    assert_eq!(normalize("cold.jsonl"), normalize("warm.jsonl"));

    // --no-cache cannot honor a cache dir.
    let conflict = veritas(
        &[
            "run",
            "queries.json",
            "--synthetic",
            "2",
            "--no-cache",
            "--cache-dir",
            "store",
        ],
        &dir,
    );
    assert!(!conflict.status.success());
}
