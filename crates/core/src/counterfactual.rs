//! Counterfactual ("what if we went back and changed the system") queries.
//!
//! Given the log of a session recorded under Setting A, predict the QoE the
//! same session would have experienced under Setting B — a different ABR
//! algorithm, buffer size, or quality ladder (paper §3.3, Figure 6, §4.3).
//! Veritas answers by sampling K GTBW traces from the abduction posterior
//! and replaying Setting B on each; Baseline replays on the observed
//! throughput reconstruction; the Oracle replays on the true trace.

use veritas_abr::abr_by_name;
use veritas_media::VideoAsset;
use veritas_player::{run_session, PlayerConfig, QoeSummary, SessionLog};
use veritas_trace::BandwidthTrace;

use crate::{baseline_trace, oracle_trace, Abduction, VeritasConfig};

/// A counterfactual setting (Setting B): which ABR to run, with what player
/// configuration, over which encoding of the video.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// ABR algorithm name, resolved through [`veritas_abr::abr_by_name`].
    pub abr: String,
    /// Player configuration (buffer size, link).
    pub player: PlayerConfig,
    /// The video asset — possibly re-encoded onto a different ladder for
    /// change-of-qualities queries.
    pub asset: VideoAsset,
}

impl Scenario {
    /// Builds a scenario, validating the ABR name eagerly.
    ///
    /// # Panics
    ///
    /// Panics if `abr` is not a recognized algorithm name.
    pub fn new(abr: &str, player: PlayerConfig, asset: VideoAsset) -> Self {
        assert!(
            abr_by_name(abr).is_some(),
            "unknown ABR algorithm name: {abr}"
        );
        Self {
            abr: abr.to_string(),
            player,
            asset,
        }
    }

    /// Replays this scenario over a bandwidth trace and returns the QoE.
    pub fn replay(&self, trace: &BandwidthTrace) -> QoeSummary {
        self.replay_full(trace).qoe()
    }

    /// Replays this scenario over a bandwidth trace and returns the full log.
    pub fn replay_full(&self, trace: &BandwidthTrace) -> SessionLog {
        let mut abr = abr_by_name(&self.abr).expect("validated at construction");
        run_session(&self.asset, abr.as_mut(), trace, &self.player)
    }
}

/// Veritas's answer to a counterfactual query: one predicted outcome per
/// posterior sample, summarized as a range.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePrediction {
    /// QoE of the scenario replayed on each sampled GTBW trace.
    pub samples: Vec<QoeSummary>,
}

impl RangePrediction {
    /// The paper's Veritas(Low)/Veritas(High) summary for a metric: the
    /// second-lowest and second-highest values across samples (falling back
    /// to min/max when fewer than three samples exist).
    pub fn range_of<F: Fn(&QoeSummary) -> f64>(&self, metric: F) -> (f64, f64) {
        let mut values: Vec<f64> = self.samples.iter().map(metric).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
        match values.len() {
            0 => (f64::NAN, f64::NAN),
            1 => (values[0], values[0]),
            2 => (values[0], values[1]),
            n => (values[1], values[n - 2]),
        }
    }

    /// Median value of a metric across samples.
    pub fn median_of<F: Fn(&QoeSummary) -> f64>(&self, metric: F) -> f64 {
        let mut values: Vec<f64> = self.samples.iter().map(metric).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
        if values.is_empty() {
            f64::NAN
        } else {
            values[values.len() / 2]
        }
    }

    /// Veritas(Low)/Veritas(High) for mean SSIM.
    pub fn ssim_range(&self) -> (f64, f64) {
        self.range_of(|q| q.mean_ssim)
    }

    /// Veritas(Low)/Veritas(High) for the rebuffering ratio (percent).
    pub fn rebuffer_range(&self) -> (f64, f64) {
        self.range_of(|q| q.rebuffer_ratio_percent)
    }

    /// Veritas(Low)/Veritas(High) for the average bitrate (Mbps).
    pub fn bitrate_range(&self) -> (f64, f64) {
        self.range_of(|q| q.avg_bitrate_mbps)
    }
}

/// The three predictions the evaluation compares for every counterfactual
/// query on every trace.
#[derive(Debug, Clone)]
pub struct CounterfactualComparison {
    /// Veritas's range prediction (K posterior samples).
    pub veritas: RangePrediction,
    /// The Baseline (observed-throughput replay) prediction.
    pub baseline: QoeSummary,
    /// The Oracle (ground-truth replay) outcome — the target.
    pub oracle: QoeSummary,
}

/// Answers counterfactual queries from session logs.
#[derive(Debug, Clone, Copy)]
pub struct CounterfactualEngine {
    config: VeritasConfig,
}

impl CounterfactualEngine {
    /// Creates an engine with the given Veritas configuration.
    pub fn new(config: VeritasConfig) -> Self {
        Self { config }
    }

    /// The Veritas configuration in use.
    pub fn config(&self) -> &VeritasConfig {
        &self.config
    }

    /// Veritas's prediction: abduction on the Setting-A log, then replay of
    /// the scenario on each sampled GTBW trace.
    pub fn veritas_predict(&self, log: &SessionLog, scenario: &Scenario) -> RangePrediction {
        let abduction = Abduction::infer(log, &self.config);
        self.veritas_predict_from_abduction(&abduction, scenario)
    }

    /// Same as [`Self::veritas_predict`] but reusing an existing abduction
    /// (e.g. when several scenarios are evaluated against the same log).
    pub fn veritas_predict_from_abduction(
        &self,
        abduction: &Abduction,
        scenario: &Scenario,
    ) -> RangePrediction {
        let samples = abduction
            .sample_default_traces()
            .iter()
            .map(|trace| scenario.replay(trace))
            .collect();
        RangePrediction { samples }
    }

    /// Baseline prediction: replay the scenario on the observed-throughput
    /// reconstruction of the Setting-A log.
    pub fn baseline_predict(&self, log: &SessionLog, scenario: &Scenario) -> QoeSummary {
        let trace = baseline_trace(log, self.config.delta_s);
        scenario.replay(&trace)
    }

    /// Oracle prediction: replay the scenario on the true GTBW trace.
    pub fn oracle_predict(
        &self,
        ground_truth: &BandwidthTrace,
        log: &SessionLog,
        scenario: &Scenario,
    ) -> QoeSummary {
        scenario.replay(&oracle_trace(ground_truth, log))
    }

    /// Runs all three predictions for one (log, scenario) pair.
    pub fn compare(
        &self,
        log: &SessionLog,
        ground_truth: &BandwidthTrace,
        scenario: &Scenario,
    ) -> CounterfactualComparison {
        CounterfactualComparison {
            veritas: self.veritas_predict(log, scenario),
            baseline: self.baseline_predict(log, scenario),
            oracle: self.oracle_predict(ground_truth, log, scenario),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_abr::Mpc;
    use veritas_media::{QualityLadder, VbrParams, VideoAsset};
    use veritas_player::run_session;
    use veritas_trace::generators::{FccLike, TraceGenerator};

    fn asset() -> VideoAsset {
        VideoAsset::generate(
            QualityLadder::paper_default(),
            240.0,
            2.0,
            VbrParams::default(),
            5,
        )
    }

    fn deployed_log(truth: &BandwidthTrace) -> SessionLog {
        let mut abr = Mpc::new();
        run_session(&asset(), &mut abr, truth, &PlayerConfig::paper_default())
    }

    fn engine() -> CounterfactualEngine {
        CounterfactualEngine::new(VeritasConfig::paper_default().with_samples(3))
    }

    #[test]
    fn scenario_validates_abr_names() {
        let s = Scenario::new("bba", PlayerConfig::paper_default(), asset());
        assert_eq!(s.abr, "bba");
    }

    #[test]
    #[should_panic(expected = "unknown ABR")]
    fn scenario_rejects_unknown_abr() {
        let _ = Scenario::new("pensieve", PlayerConfig::paper_default(), asset());
    }

    #[test]
    fn range_prediction_uses_second_order_statistics() {
        let mk = |ssim: f64| QoeSummary {
            mean_ssim: ssim,
            rebuffer_ratio_percent: 0.0,
            avg_bitrate_mbps: 1.0,
            startup_delay_s: 1.0,
            chunks: 10,
        };
        let pred = RangePrediction {
            samples: vec![mk(0.90), mk(0.95), mk(0.97), mk(0.92), mk(0.99)],
        };
        let (lo, hi) = pred.ssim_range();
        assert!((lo - 0.92).abs() < 1e-12);
        assert!((hi - 0.97).abs() < 1e-12);
        assert!((pred.median_of(|q| q.mean_ssim) - 0.95).abs() < 1e-12);
        // Small-sample fallbacks.
        let two = RangePrediction {
            samples: vec![mk(0.5), mk(0.7)],
        };
        assert_eq!(two.ssim_range(), (0.5, 0.7));
        let one = RangePrediction {
            samples: vec![mk(0.6)],
        };
        assert_eq!(one.ssim_range(), (0.6, 0.6));
    }

    #[test]
    fn oracle_replay_matches_direct_emulation_of_setting_b() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 71);
        let log = deployed_log(&truth);
        let scenario = Scenario::new("bba", PlayerConfig::paper_default(), asset());
        let oracle = engine().oracle_predict(&truth, &log, &scenario);
        // Direct emulation of Setting B on the same truth.
        let direct = scenario.replay(
            &truth.with_duration(
                log.session_duration_s
                    .max(log.records.last().unwrap().end_time_s),
            ),
        );
        assert_eq!(oracle, direct);
    }

    #[test]
    fn veritas_prediction_produces_k_samples_and_is_deterministic() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 72);
        let log = deployed_log(&truth);
        let scenario = Scenario::new("bba", PlayerConfig::paper_default(), asset());
        let e = engine();
        let a = e.veritas_predict(&log, &scenario);
        let b = e.veritas_predict(&log, &scenario);
        assert_eq!(a.samples.len(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn veritas_is_closer_to_oracle_than_baseline_for_buffer_change() {
        // Change of buffer size 5 s -> 30 s with MPC. Baseline's conservative
        // bandwidth makes it mispredict; Veritas should land nearer the
        // oracle on average bitrate (the most bandwidth-sensitive metric).
        let gen = FccLike::new(3.0, 8.0);
        let e = engine();
        let scenario = Scenario::new(
            "mpc",
            PlayerConfig::paper_default().with_buffer_capacity(30.0),
            asset(),
        );
        let mut veritas_err = 0.0;
        let mut baseline_err = 0.0;
        for seed in 0..3u64 {
            let truth = gen.generate(600.0, 80 + seed);
            let log = deployed_log(&truth);
            let cmp = e.compare(&log, &truth, &scenario);
            let oracle_bitrate = cmp.oracle.avg_bitrate_mbps;
            veritas_err += (cmp.veritas.median_of(|q| q.avg_bitrate_mbps) - oracle_bitrate).abs();
            baseline_err += (cmp.baseline.avg_bitrate_mbps - oracle_bitrate).abs();
        }
        assert!(
            veritas_err < baseline_err,
            "Veritas bitrate error {veritas_err} should beat Baseline {baseline_err}"
        );
    }

    #[test]
    fn change_of_qualities_scenario_replays_on_the_reencoded_asset() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 90);
        let log = deployed_log(&truth);
        let higher = asset().reencoded(QualityLadder::paper_higher_qualities());
        let scenario = Scenario::new("mpc", PlayerConfig::paper_default(), higher.clone());
        let oracle = engine().oracle_predict(&truth, &log, &scenario);
        // The re-encoded ladder's lowest rung is 1 Mbps, so the average
        // bitrate must be at least that.
        assert!(oracle.avg_bitrate_mbps >= 0.9);
        assert_eq!(higher.num_qualities(), 5);
    }
}
