//! The comparison estimators: Baseline (observed-throughput replay) and the
//! ground-truth Oracle.

use veritas_player::SessionLog;
use veritas_trace::BandwidthTrace;

/// Reconstructs a bandwidth trace directly from the observed per-chunk
/// throughputs — the scheme the paper calls *Baseline* (§4.1).
///
/// During a chunk's download window the observed throughput of that chunk is
/// assumed to be the available bandwidth; during off-periods (no download in
/// flight) the value is linearly interpolated between the throughputs of the
/// surrounding chunks. Before the first chunk and after the last the nearest
/// chunk's throughput is held.
///
/// This is what most trace-driven video evaluations do today. It is accurate
/// when the observed throughput saturates the link (large chunks on a warm
/// connection) and systematically conservative otherwise — the bias Veritas
/// corrects.
pub fn baseline_trace(log: &SessionLog, delta_s: f64) -> BandwidthTrace {
    assert!(delta_s > 0.0, "delta must be positive");
    assert!(
        !log.records.is_empty(),
        "cannot build a baseline trace from an empty log"
    );

    let horizon_s = log
        .session_duration_s
        .max(log.records.last().expect("non-empty").end_time_s);
    let n = (horizon_s / delta_s).ceil().max(1.0) as usize;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 + 0.5) * delta_s;
            baseline_value_at(log, t)
        })
        .collect();
    BandwidthTrace::from_uniform(delta_s, &values).expect("baseline trace is valid")
}

/// The Baseline estimate of available bandwidth at absolute time `t_s`.
pub fn baseline_value_at(log: &SessionLog, t_s: f64) -> f64 {
    let records = &log.records;
    // Inside a download window: that chunk's observed throughput.
    for r in records {
        if t_s >= r.start_time_s && t_s <= r.end_time_s {
            return r.throughput_mbps;
        }
    }
    // Before the first download or after the last: hold the nearest value.
    if t_s < records[0].start_time_s {
        return records[0].throughput_mbps;
    }
    if t_s > records[records.len() - 1].end_time_s {
        return records[records.len() - 1].throughput_mbps;
    }
    // In an off-period between chunk k and k+1: linear interpolation between
    // the two observed throughputs across the gap.
    for pair in records.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        if t_s > prev.end_time_s && t_s < next.start_time_s {
            let span = (next.start_time_s - prev.end_time_s).max(1e-9);
            let frac = (t_s - prev.end_time_s) / span;
            return prev.throughput_mbps + frac * (next.throughput_mbps - prev.throughput_mbps);
        }
    }
    // Numerical edge (t exactly at a boundary not caught above).
    records[records.len() - 1].throughput_mbps
}

/// The Oracle estimator: the ground-truth bandwidth trace itself, truncated
/// to the session horizon. Counterfactual predictions made on this trace are
/// the ideal any inference scheme is compared against.
pub fn oracle_trace(ground_truth: &BandwidthTrace, log: &SessionLog) -> BandwidthTrace {
    let horizon_s = log
        .session_duration_s
        .max(log.records.last().map(|r| r.end_time_s).unwrap_or(1.0))
        .max(1.0);
    ground_truth.with_duration(horizon_s)
}

/// Reconstructs a coarse ground-truth trace from the oracle-only field in a
/// log (bandwidth sampled at each chunk request). Useful when the original
/// trace object is unavailable but the log retains the ground truth.
pub fn gtbw_trace_from_log(log: &SessionLog, delta_s: f64) -> BandwidthTrace {
    assert!(delta_s > 0.0);
    assert!(!log.records.is_empty());
    let horizon_s = log.session_duration_s.max(delta_s);
    let n = (horizon_s / delta_s).ceil().max(1.0) as usize;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 + 0.5) * delta_s;
            // Nearest chunk request's ground truth.
            let mut best = log.records[0].gtbw_at_request_mbps;
            let mut best_dist = f64::INFINITY;
            for r in &log.records {
                let d = (r.start_time_s - t).abs();
                if d < best_dist {
                    best_dist = d;
                    best = r.gtbw_at_request_mbps;
                }
            }
            best.max(0.0)
        })
        .collect();
    BandwidthTrace::from_uniform(delta_s, &values).expect("gtbw trace is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_abr::{FixedQuality, Mpc};
    use veritas_media::{QualityLadder, VbrParams, VideoAsset};
    use veritas_player::{run_session, PlayerConfig};
    use veritas_trace::generators::{FccLike, TraceGenerator};
    use veritas_trace::stats::{trace_mae, underestimation_fraction};

    fn asset() -> VideoAsset {
        VideoAsset::generate(
            QualityLadder::paper_default(),
            240.0,
            2.0,
            VbrParams::default(),
            5,
        )
    }

    #[test]
    fn baseline_matches_observed_throughput_during_downloads() {
        let truth = BandwidthTrace::constant(6.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        for r in log.records.iter().take(20) {
            let mid = (r.start_time_s + r.end_time_s) / 2.0;
            assert!((baseline_value_at(&log, mid) - r.throughput_mbps).abs() < 1e-9);
        }
    }

    #[test]
    fn baseline_interpolates_during_off_periods() {
        let truth = BandwidthTrace::constant(8.0, 1200.0);
        // Tiny fixed-quality chunks on a fast link leave long off-periods.
        let mut abr = FixedQuality(0);
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        // Find an off-period and check the interpolated value lies between
        // the two neighboring observed throughputs.
        let mut found = false;
        for pair in log.records.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            if next.start_time_s - prev.end_time_s > 0.5 {
                let mid = (prev.end_time_s + next.start_time_s) / 2.0;
                let v = baseline_value_at(&log, mid);
                let lo = prev.throughput_mbps.min(next.throughput_mbps) - 1e-9;
                let hi = prev.throughput_mbps.max(next.throughput_mbps) + 1e-9;
                assert!(v >= lo && v <= hi, "interpolated {v} outside [{lo}, {hi}]");
                found = true;
                break;
            }
        }
        assert!(found, "expected at least one off-period in this workload");
    }

    #[test]
    fn baseline_underestimates_gtbw_when_chunks_are_small() {
        // The paper's central observation: with small chunks (ABR stuck at
        // low qualities, or off-periods shrinking the effective window), the
        // observed throughput is far below the true capacity.
        let truth = BandwidthTrace::constant(8.0, 1200.0);
        let mut abr = FixedQuality(0);
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let baseline = baseline_trace(&log, 5.0);
        let frac_under = underestimation_fraction(
            &truth.with_duration(baseline.duration()),
            &baseline,
            5.0,
            1.0,
        );
        assert!(
            frac_under > 0.8,
            "Baseline should underestimate an 8 Mbps link when only tiny chunks are observed (got {frac_under})"
        );
    }

    #[test]
    fn baseline_is_accurate_when_chunks_saturate_the_link() {
        let truth = BandwidthTrace::constant(2.0, 2400.0);
        // Force the top rung (4 Mbps nominal > capacity) so every download
        // saturates the link.
        let mut abr = FixedQuality(4);
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let baseline = baseline_trace(&log, 5.0);
        let mae = trace_mae(&truth.with_duration(baseline.duration()), &baseline, 5.0);
        assert!(
            mae < 0.5,
            "saturating chunks should make Baseline accurate (MAE {mae})"
        );
    }

    #[test]
    fn oracle_trace_is_the_truth_over_the_session_horizon() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 9);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let oracle = oracle_trace(&truth, &log);
        assert!(
            (oracle.duration()
                - log
                    .session_duration_s
                    .max(log.records.last().unwrap().end_time_s))
            .abs()
                < 1e-6
        );
        for t in [1.0, 50.0, 200.0] {
            assert_eq!(oracle.bandwidth_at(t), truth.bandwidth_at(t));
        }
    }

    #[test]
    fn gtbw_trace_from_log_tracks_the_truth_at_request_times() {
        let truth = BandwidthTrace::constant(5.5, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let rebuilt = gtbw_trace_from_log(&log, 5.0);
        let mae = trace_mae(&truth.with_duration(rebuilt.duration()), &rebuilt, 5.0);
        assert!(mae < 0.1, "MAE {mae}");
    }

    #[test]
    fn baseline_values_before_and_after_session_hold_nearest() {
        let truth = BandwidthTrace::constant(6.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let first = &log.records[0];
        let last = log.records.last().unwrap();
        assert_eq!(
            baseline_value_at(&log, first.start_time_s - 1.0),
            first.throughput_mbps
        );
        assert_eq!(
            baseline_value_at(&log, last.end_time_s + 100.0),
            last.throughput_mbps
        );
    }

    #[test]
    #[should_panic(expected = "empty log")]
    fn baseline_rejects_empty_logs() {
        let log = SessionLog {
            abr_name: "MPC".into(),
            buffer_capacity_s: 5.0,
            chunk_duration_s: 2.0,
            records: vec![],
            startup_delay_s: 0.0,
            total_rebuffer_s: 0.0,
            session_duration_s: 0.0,
        };
        let _ = baseline_trace(&log, 5.0);
    }
}
