//! Veritas: causal what-if inference for video streaming traces.
//!
//! This crate ties the substrates together into the framework the paper
//! describes:
//!
//! * [`VeritasConfig`] — the abduction hyper-parameters (δ, ε, σ, transition
//!   prior, number of posterior samples).
//! * [`Abduction`] — the core inference step: build the embedded HMM from a
//!   [`veritas_player::SessionLog`]'s observed variables, decode it with the
//!   gap-aware Viterbi and forward–backward algorithms, and sample latent
//!   GTBW traces from the posterior.
//! * [`baseline_trace`] / [`oracle_trace`] — the comparison estimators the
//!   evaluation measures Veritas against.
//! * [`CounterfactualEngine`] and [`Scenario`] — replay a logged session
//!   under a changed design (different ABR, buffer size, or quality ladder)
//!   over traces from any estimator, producing the Veritas(Low)/(High)
//!   ranges reported in the paper's figures.
//! * [`InterventionalPredictor`] — bias-free download-time prediction for
//!   arbitrary candidate chunk sizes in an ongoing session.
//!
//! # Quickstart
//!
//! ```
//! use veritas::{Abduction, CounterfactualEngine, Scenario, VeritasConfig};
//! use veritas_abr::Mpc;
//! use veritas_media::VideoAsset;
//! use veritas_player::{run_session, PlayerConfig};
//! use veritas_trace::generators::{FccLike, TraceGenerator};
//!
//! // 1. A "deployed" session (Setting A): MPC over a hidden bandwidth trace.
//! let asset = VideoAsset::paper_default(1);
//! let truth = FccLike::new(3.0, 8.0).generate(650.0, 42);
//! let mut abr = Mpc::new();
//! let log = run_session(&asset, &mut abr, &truth, &PlayerConfig::paper_default());
//!
//! // 2. What if BBA had been used instead? (counterfactual)
//! let engine = CounterfactualEngine::new(VeritasConfig::paper_default().with_samples(2));
//! let scenario = Scenario::new("bba", PlayerConfig::paper_default(), asset.clone());
//! let prediction = engine.veritas_predict(&log, &scenario);
//! let (ssim_low, ssim_high) = prediction.ssim_range();
//! assert!(ssim_low <= ssim_high);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod abduction;
mod baseline;
mod config;
mod counterfactual;
mod error;
mod interventional;

pub use abduction::Abduction;
pub use baseline::{baseline_trace, baseline_value_at, gtbw_trace_from_log, oracle_trace};
pub use config::VeritasConfig;
pub use counterfactual::{
    CounterfactualComparison, CounterfactualEngine, RangePrediction, Scenario,
};
pub use error::AbductionError;
pub use interventional::{DownloadTimePrediction, InterventionalPredictor};
