//! The Veritas abduction step: inverting observed chunk downloads into a
//! posterior over the latent GTBW time series (paper §3.2–§3.3).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use veritas_ehmm::{
    interpolate_full_path, sample_path, states_to_values, EhmmSpec, EhmmWorkspace, EmissionTable,
    Posteriors, TransitionMatrix, ViterbiResult,
};
use veritas_net::emission_log_density;
use veritas_player::{ChunkRecord, SessionLog};
use veritas_trace::{BandwidthTrace, Quantizer};

use crate::{AbductionError, VeritasConfig};

/// The outcome of running Veritas abduction on one session log: the fitted
/// EHMM posterior, the Viterbi decode, and everything needed to materialize
/// sampled GTBW traces.
///
/// Inference runs through a shared [`EhmmWorkspace`], so one abduction
/// builds the per-gap transition and log-power kernels exactly once (the
/// Viterbi decode, the forward–backward pass, and any later path scoring
/// all reuse them), and batch executors can pass one workspace per
/// configuration to share the kernels across *sessions* too (see
/// [`Self::try_infer_prepared`]).
#[derive(Debug, Clone)]
pub struct Abduction {
    config: VeritasConfig,
    quantizer: Quantizer,
    workspace: Arc<EhmmWorkspace>,
    /// Number of chunk observations conditioned on. The emission table
    /// itself is consumed by inference and not retained, so a posterior
    /// restored from a persistent store is indistinguishable from a
    /// freshly inferred one.
    num_obs: usize,
    /// δ-interval index in which each chunk download starts.
    start_intervals: Vec<usize>,
    /// Total number of δ-intervals spanned by the session.
    total_intervals: usize,
    viterbi: ViterbiResult,
    posteriors: Posteriors,
}

impl Abduction {
    /// Runs the abduction step on a session log.
    ///
    /// Only the *observed* variables of the log are used: chunk sizes,
    /// download start times, observed throughputs and TCP snapshots. The
    /// ground-truth bandwidth field is never read.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the log has no chunks.
    /// Batch callers that must not abort (e.g. the query engine) should use
    /// [`Self::try_infer`] instead.
    pub fn infer(log: &SessionLog, config: &VeritasConfig) -> Self {
        Self::try_infer(log, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::infer`]: returns a typed
    /// [`AbductionError`] instead of panicking on an invalid configuration,
    /// an empty log, or out-of-order chunk start times. This is the
    /// cache-friendly entry point batch executors build on.
    pub fn try_infer(log: &SessionLog, config: &VeritasConfig) -> Result<Self, AbductionError> {
        config.validate().map_err(AbductionError::InvalidConfig)?;
        if log.records.is_empty() {
            return Err(AbductionError::EmptySession);
        }
        // Emission table: one row per chunk, one column per capacity state,
        // scored by the TCP estimator f with Gaussian noise (paper Eq. 3).
        let capacities = config.capacity_grid();
        let rows = log
            .records
            .iter()
            .map(|record| Self::emission_row(record, &capacities, config.sigma_mbps))
            .collect();
        let workspace = Arc::new(EhmmWorkspace::new(Self::spec_for(config)));
        Self::try_infer_prepared(log, config, rows, workspace)
    }

    /// The hidden-chain specification `config` implies: the paper's
    /// tridiagonal prior over the quantized capacity grid with a uniform
    /// initial distribution.
    ///
    /// # Panics
    ///
    /// Panics on an invalid grid configuration; call
    /// [`VeritasConfig::validate`] first when the config is untrusted.
    pub fn spec_for(config: &VeritasConfig) -> EhmmSpec {
        let quantizer = Quantizer::new(config.epsilon_mbps, config.max_capacity_mbps);
        EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(
            quantizer.values().len(),
            config.stay_probability,
        ))
    }

    /// Emission log-density row for one chunk record over the capacity
    /// grid: `log P(Y_n | C = c)` for each grid value `c`, scored by the
    /// TCP estimator `f` with Gaussian noise (paper Eq. 3).
    ///
    /// Exposed so batch executors can build large emission tables in
    /// parallel (one independent row per chunk) and hand them to
    /// [`Self::try_infer_prepared`].
    pub fn emission_row(record: &ChunkRecord, capacities: &[f64], sigma_mbps: f64) -> Vec<f64> {
        capacities
            .iter()
            .map(|&c| {
                emission_log_density(
                    record.throughput_mbps,
                    c,
                    &record.tcp_info,
                    record.size_bytes,
                    sigma_mbps,
                )
            })
            .collect()
    }

    /// Runs abduction with precomputed emission rows and a caller-supplied
    /// inference workspace.
    ///
    /// This is the batch entry point: the engine computes `rows` through
    /// its executor for large logs (they are embarrassingly parallel) and
    /// passes one [`EhmmWorkspace`] per configuration fingerprint, so every
    /// session inferred under the same config shares the same memoized
    /// `A^Δ` / `ln A^Δ` kernels.
    ///
    /// # Panics
    ///
    /// Panics if `rows` does not have one row per chunk record or if
    /// `workspace` was built for a different spec than `config` implies —
    /// both are caller bugs, not data errors.
    pub fn try_infer_prepared(
        log: &SessionLog,
        config: &VeritasConfig,
        rows: Vec<Vec<f64>>,
        workspace: Arc<EhmmWorkspace>,
    ) -> Result<Self, AbductionError> {
        config.validate().map_err(AbductionError::InvalidConfig)?;
        if log.records.is_empty() {
            return Err(AbductionError::EmptySession);
        }
        assert_eq!(
            rows.len(),
            log.records.len(),
            "need one emission row per chunk record"
        );
        assert!(
            workspace.spec() == &Self::spec_for(config),
            "workspace spec does not match the configuration"
        );
        let quantizer = Quantizer::new(config.epsilon_mbps, config.max_capacity_mbps);
        let (start_intervals, gaps, total_intervals) = interval_layout(log, config)?;
        let emissions = EmissionTable::new(rows, gaps);

        let viterbi = workspace.viterbi(&emissions);
        let posteriors = workspace.forward_backward(&emissions);

        Ok(Self {
            config: *config,
            quantizer,
            workspace,
            num_obs: emissions.num_obs(),
            start_intervals,
            total_intervals,
            viterbi,
            posteriors,
        })
    }

    /// Rebuilds an abduction from previously computed inference results —
    /// the warm-start path persistent caches use. No forward–backward or
    /// Viterbi pass runs; only the cheap δ-interval layout is rederived
    /// from the log.
    ///
    /// Every shape is revalidated against the log/config pair: a Viterbi
    /// path or posterior whose length, state count, or state indices do
    /// not fit yields [`AbductionError::InconsistentParts`], so a stale or
    /// truncated store entry can never be served as a plausible-looking
    /// posterior.
    ///
    /// # Panics
    ///
    /// Panics if `workspace` was built for a different spec than `config`
    /// implies — a caller bug, exactly as in [`Self::try_infer_prepared`].
    pub fn from_parts(
        log: &SessionLog,
        config: &VeritasConfig,
        workspace: Arc<EhmmWorkspace>,
        viterbi: ViterbiResult,
        posteriors: Posteriors,
    ) -> Result<Self, AbductionError> {
        config.validate().map_err(AbductionError::InvalidConfig)?;
        if log.records.is_empty() {
            return Err(AbductionError::EmptySession);
        }
        assert!(
            workspace.spec() == &Self::spec_for(config),
            "workspace spec does not match the configuration"
        );
        let quantizer = Quantizer::new(config.epsilon_mbps, config.max_capacity_mbps);
        let num_obs = log.records.len();
        let num_states = quantizer.values().len();
        let inconsistent = |reason: String| AbductionError::InconsistentParts(reason);
        if viterbi.path.len() != num_obs {
            return Err(inconsistent(format!(
                "viterbi path covers {} chunks, log has {num_obs}",
                viterbi.path.len()
            )));
        }
        if let Some(&state) = viterbi.path.iter().find(|&&s| s >= num_states) {
            return Err(inconsistent(format!(
                "viterbi state {state} exceeds the {num_states}-state capacity grid"
            )));
        }
        if posteriors.gamma.len() != num_obs || posteriors.gamma.cols() != num_states {
            return Err(inconsistent(format!(
                "gamma is {}x{}, expected {num_obs}x{num_states}",
                posteriors.gamma.len(),
                posteriors.gamma.cols()
            )));
        }
        if posteriors.xi.len() != num_obs - 1 {
            return Err(inconsistent(format!(
                "{} pairwise posteriors for {num_obs} chunks, expected {}",
                posteriors.xi.len(),
                num_obs - 1
            )));
        }
        if let Some(pair) = posteriors
            .xi
            .iter()
            .find(|m| m.len() != num_states || m.cols() != num_states)
        {
            return Err(inconsistent(format!(
                "pairwise posterior is {}x{}, expected {num_states}x{num_states}",
                pair.len(),
                pair.cols()
            )));
        }
        let (start_intervals, _gaps, total_intervals) = interval_layout(log, config)?;
        Ok(Self {
            config: *config,
            quantizer,
            workspace,
            num_obs,
            start_intervals,
            total_intervals,
            viterbi,
            posteriors,
        })
    }

    /// The configuration used for this abduction.
    pub fn config(&self) -> &VeritasConfig {
        &self.config
    }

    /// The capacity grid (Mbps values of each hidden state).
    pub fn capacity_grid(&self) -> Vec<f64> {
        self.quantizer.values()
    }

    /// The fitted hidden-chain specification (useful for interventional
    /// queries that need the transition matrix).
    pub fn spec(&self) -> &EhmmSpec {
        self.workspace.spec()
    }

    /// The inference workspace this abduction ran through — exposes the
    /// memoized per-gap transition kernels (`A^Δ`, `ln A^Δ`) to follow-up
    /// queries such as interventional forward prediction.
    pub fn workspace(&self) -> &Arc<EhmmWorkspace> {
        &self.workspace
    }

    /// The smoothed posteriors over chunk capacities.
    pub fn posteriors(&self) -> &Posteriors {
        &self.posteriors
    }

    /// The Viterbi decode (path plus its log-likelihood) — exposed whole,
    /// alongside [`Self::posteriors`], so persistence layers can serialize
    /// everything [`Self::from_parts`] needs to restore the abduction.
    pub fn viterbi(&self) -> &ViterbiResult {
        &self.viterbi
    }

    /// Number of chunk observations the posterior conditions on.
    pub fn num_obs(&self) -> usize {
        self.num_obs
    }

    /// The Viterbi (jointly most likely) capacity state per chunk.
    pub fn viterbi_states(&self) -> &[usize] {
        &self.viterbi.path
    }

    /// Per-chunk capacity in Mbps along the Viterbi path.
    pub fn viterbi_chunk_capacities(&self) -> Vec<f64> {
        states_to_values(&self.viterbi.path, &self.capacity_grid())
    }

    /// Per-chunk posterior-mean capacity in Mbps.
    pub fn posterior_mean_chunk_capacities(&self) -> Vec<f64> {
        let grid = self.capacity_grid();
        (0..self.num_obs)
            .map(|n| self.posteriors.posterior_mean(n, &grid))
            .collect()
    }

    /// δ-interval index of each chunk's download start.
    pub fn start_intervals(&self) -> &[usize] {
        &self.start_intervals
    }

    /// Number of δ-intervals in the reconstructed series.
    pub fn total_intervals(&self) -> usize {
        self.total_intervals
    }

    /// The most likely full GTBW trace (Viterbi path interpolated across
    /// off-periods).
    pub fn viterbi_trace(&self) -> BandwidthTrace {
        self.states_to_trace(&self.viterbi.path)
    }

    /// Samples `k` GTBW traces from the posterior (paper Algorithm 1 plus
    /// off-period interpolation), deterministically derived from the
    /// configured seed.
    pub fn sample_traces(&self, k: usize) -> Vec<BandwidthTrace> {
        self.sample_traces_with_seed(k, self.config.seed)
    }

    /// Samples `k` GTBW traces from the posterior with an explicit seed,
    /// leaving the configured seed untouched. Because sampling is decoupled
    /// from inference, a cached abduction can serve queries that only differ
    /// in their sampling seed without re-running forward–backward.
    pub fn sample_traces_with_seed(&self, k: usize, seed: u64) -> Vec<BandwidthTrace> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| {
                let states = sample_path(&self.posteriors, &self.viterbi, &mut rng);
                self.states_to_trace(&states)
            })
            .collect()
    }

    /// Samples the configured number (`K`) of GTBW traces.
    pub fn sample_default_traces(&self) -> Vec<BandwidthTrace> {
        self.sample_traces(self.config.num_samples)
    }

    /// Converts a per-chunk state path into a full-session bandwidth trace.
    fn states_to_trace(&self, chunk_states: &[usize]) -> BandwidthTrace {
        let full_states =
            interpolate_full_path(&self.start_intervals, chunk_states, self.total_intervals);
        let values = states_to_values(&full_states, &self.capacity_grid());
        BandwidthTrace::from_uniform(self.config.delta_s, &values)
            .expect("interpolated capacity trace is valid")
    }
}

/// The δ-interval layout a log/config pair implies: the interval in which
/// each chunk starts, the non-negative gaps between consecutive starts,
/// and the total interval count of the session. Shared by fresh inference
/// ([`Abduction::try_infer_prepared`]) and warm restoration
/// ([`Abduction::from_parts`]) so the two paths can never disagree.
fn interval_layout(
    log: &SessionLog,
    config: &VeritasConfig,
) -> Result<(Vec<usize>, Vec<u32>, usize), AbductionError> {
    let start_intervals: Vec<usize> = log
        .records
        .iter()
        .map(|record| (record.start_time_s / config.delta_s).floor() as usize)
        .collect();
    let mut gaps = Vec::with_capacity(start_intervals.len());
    gaps.push(0u32);
    for n in 1..start_intervals.len() {
        let (prev, cur) = (start_intervals[n - 1], start_intervals[n]);
        if cur < prev {
            // A backwards start time would underflow the `usize`
            // subtraction below and produce a garbage gap; reject the
            // log instead.
            return Err(AbductionError::NonMonotonicLog { chunk: n });
        }
        gaps.push((cur - prev) as u32);
    }
    let total_intervals = ((log.session_duration_s / config.delta_s).ceil() as usize)
        .max(start_intervals.last().copied().unwrap_or(0) + 1)
        .max(1);
    Ok((start_intervals, gaps, total_intervals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_abr::Mpc;
    use veritas_media::{QualityLadder, VbrParams, VideoAsset};
    use veritas_player::{run_session, PlayerConfig};
    use veritas_trace::generators::{FccLike, TraceGenerator};
    use veritas_trace::stats::trace_mae;

    fn asset() -> VideoAsset {
        VideoAsset::generate(
            QualityLadder::paper_default(),
            240.0,
            2.0,
            VbrParams::default(),
            5,
        )
    }

    fn logged_session(truth: &BandwidthTrace) -> SessionLog {
        let mut abr = Mpc::new();
        run_session(&asset(), &mut abr, truth, &PlayerConfig::paper_default())
    }

    #[test]
    fn abduction_runs_and_produces_consistent_shapes() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 21);
        let log = logged_session(&truth);
        let ab = Abduction::infer(&log, &VeritasConfig::paper_default());
        assert_eq!(ab.viterbi_states().len(), log.records.len());
        assert_eq!(
            ab.posterior_mean_chunk_capacities().len(),
            log.records.len()
        );
        assert_eq!(ab.start_intervals().len(), log.records.len());
        assert!(ab.total_intervals() > *ab.start_intervals().last().unwrap());
        let trace = ab.viterbi_trace();
        assert!(trace.duration() >= log.records.last().unwrap().start_time_s);
    }

    #[test]
    fn recovers_a_constant_capacity_exactly_on_grid() {
        let truth = BandwidthTrace::constant(4.0, 1200.0);
        let log = logged_session(&truth);
        let ab = Abduction::infer(&log, &VeritasConfig::paper_default());
        let est = ab.viterbi_trace();
        // The bulk of the inferred trace should sit at (or next to) 4 Mbps.
        let mae = trace_mae(&truth.with_duration(est.duration()), &est, 5.0);
        assert!(mae < 1.0, "constant 4 Mbps trace recovered with MAE {mae}");
    }

    #[test]
    fn veritas_is_no_worse_than_baseline_on_deployed_mpc_sessions() {
        // On sessions where MPC mostly saturates the link both estimators are
        // decent; averaged over several traces Veritas must remain at least
        // comparable (it pays a small quantization cost but gains whenever
        // chunks fail to saturate the link).
        let gen = FccLike::new(3.0, 8.0);
        let mut mae_veritas = 0.0;
        let mut mae_baseline = 0.0;
        for seed in 30..34u64 {
            let truth = gen.generate(600.0, seed);
            let log = logged_session(&truth);
            let ab = Abduction::infer(&log, &VeritasConfig::paper_default());
            let veritas_trace = ab.viterbi_trace();
            let baseline = crate::baseline::baseline_trace(&log, 5.0);
            let horizon = log.session_duration_s.min(truth.duration());
            let truth_cut = truth.with_duration(horizon);
            mae_veritas += trace_mae(&truth_cut, &veritas_trace, 5.0);
            mae_baseline += trace_mae(&truth_cut, &baseline, 5.0);
        }
        assert!(
            mae_veritas < mae_baseline * 1.15 + 0.1,
            "Veritas MAE {mae_veritas} should stay comparable to Baseline MAE {mae_baseline}"
        );
    }

    #[test]
    fn veritas_recovers_capacity_hidden_by_small_chunks() {
        // The paper's central scenario: the deployed policy keeps picking
        // small chunks, so the observed throughput (and hence Baseline) badly
        // underestimates the true capacity, while Veritas — conditioning on
        // TCP state and chunk size through f — recovers it.
        let truth = BandwidthTrace::constant(6.0, 2400.0);
        let mut abr = veritas_abr::FixedQuality(1); // ~0.4 Mbps chunks
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let ab = Abduction::infer(&log, &VeritasConfig::paper_default());
        let veritas_trace = ab.viterbi_trace();
        let baseline = crate::baseline::baseline_trace(&log, 5.0);
        let horizon = log.session_duration_s.min(truth.duration());
        let truth_cut = truth.with_duration(horizon);
        let mae_veritas = trace_mae(&truth_cut, &veritas_trace, 5.0);
        let mae_baseline = trace_mae(&truth_cut, &baseline, 5.0);
        assert!(
            mae_veritas < mae_baseline,
            "Veritas MAE {mae_veritas} must beat Baseline MAE {mae_baseline} when chunks are small"
        );
    }

    #[test]
    fn sampled_traces_are_deterministic_and_on_grid() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 40);
        let log = logged_session(&truth);
        let config = VeritasConfig::paper_default();
        let ab = Abduction::infer(&log, &config);
        let a = ab.sample_traces(3);
        let b = ab.sample_traces(3);
        assert_eq!(
            a, b,
            "sampling must be reproducible from the configured seed"
        );
        for trace in &a {
            for v in trace.values() {
                let snapped = (v / config.epsilon_mbps).round() * config.epsilon_mbps;
                assert!(
                    (v - snapped).abs() < 1e-9,
                    "sampled value {v} is off the ε grid"
                );
                assert!(v <= config.max_capacity_mbps + 1e-9);
            }
        }
        assert_eq!(ab.sample_default_traces().len(), config.num_samples);
    }

    #[test]
    fn samples_bracket_the_viterbi_solution_in_uncertain_regions() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 55);
        let log = logged_session(&truth);
        let ab = Abduction::infer(&log, &VeritasConfig::paper_default().with_samples(5));
        let samples = ab.sample_default_traces();
        // All samples agree with the Viterbi trace on at least some chunks
        // (certain regions) but not everywhere (uncertain regions).
        let viterbi_states = ab.viterbi_states().to_vec();
        let mut total_disagreement = 0usize;
        for trace in &samples {
            let sampled_at_chunks: Vec<f64> = log
                .records
                .iter()
                .map(|r| trace.bandwidth_at(r.start_time_s))
                .collect();
            let viterbi_at_chunks = states_to_values(&viterbi_states, &ab.capacity_grid());
            total_disagreement += sampled_at_chunks
                .iter()
                .zip(&viterbi_at_chunks)
                .filter(|(a, b)| (**a - **b).abs() > 1e-9)
                .count();
        }
        assert!(
            total_disagreement > 0,
            "posterior sampling should explore beyond the single Viterbi path"
        );
    }

    #[test]
    fn abduction_never_reads_ground_truth() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 60);
        let log = logged_session(&truth);
        let stripped = log.without_ground_truth();
        let config = VeritasConfig::paper_default();
        let with_gt = Abduction::infer(&log, &config);
        let without_gt = Abduction::infer(&stripped, &config);
        assert_eq!(with_gt.viterbi_states(), without_gt.viterbi_states());
        assert_eq!(with_gt.sample_traces(2), without_gt.sample_traces(2));
    }

    #[test]
    fn try_infer_returns_typed_errors() {
        let empty = SessionLog {
            abr_name: "MPC".into(),
            buffer_capacity_s: 5.0,
            chunk_duration_s: 2.0,
            records: vec![],
            startup_delay_s: 0.0,
            total_rebuffer_s: 0.0,
            session_duration_s: 0.0,
        };
        assert_eq!(
            Abduction::try_infer(&empty, &VeritasConfig::paper_default()).unwrap_err(),
            crate::AbductionError::EmptySession
        );
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 21);
        let log = logged_session(&truth);
        let mut bad = VeritasConfig::paper_default();
        bad.delta_s = -1.0;
        match Abduction::try_infer(&log, &bad) {
            Err(crate::AbductionError::InvalidConfig(reason)) => {
                assert!(reason.contains("delta_s"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        assert!(Abduction::try_infer(&log, &VeritasConfig::paper_default()).is_ok());
    }

    #[test]
    fn non_monotonic_logs_are_rejected_with_a_typed_error() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 21);
        let mut log = logged_session(&truth);
        // Shuffle one chunk far backwards in time: its δ-interval precedes
        // its predecessor's, which previously underflowed the gap cast.
        let n = log.records.len() / 2;
        log.records[n].start_time_s = 0.0;
        match Abduction::try_infer(&log, &VeritasConfig::paper_default()) {
            Err(AbductionError::NonMonotonicLog { chunk }) => assert_eq!(chunk, n),
            other => panic!("expected NonMonotonicLog, got {other:?}"),
        }
        // Same-interval starts (gap 0) remain legal.
        let mut same_interval = logged_session(&truth);
        let t = same_interval.records[1].start_time_s;
        same_interval.records[2].start_time_s = t;
        // Force interval equality regardless of δ by reusing the exact time.
        assert!(Abduction::try_infer(&same_interval, &VeritasConfig::paper_default()).is_ok());
    }

    #[test]
    fn prepared_inference_matches_the_direct_path_and_shares_the_workspace() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 33);
        let log = logged_session(&truth);
        let config = VeritasConfig::paper_default();
        let direct = Abduction::infer(&log, &config);

        let capacities = config.capacity_grid();
        let rows: Vec<Vec<f64>> = log
            .records
            .iter()
            .map(|r| Abduction::emission_row(r, &capacities, config.sigma_mbps))
            .collect();
        let workspace = std::sync::Arc::new(veritas_ehmm::EhmmWorkspace::new(Abduction::spec_for(
            &config,
        )));
        let a =
            Abduction::try_infer_prepared(&log, &config, rows.clone(), workspace.clone()).unwrap();
        let b = Abduction::try_infer_prepared(&log, &config, rows, workspace.clone()).unwrap();
        assert_eq!(a.viterbi_states(), direct.viterbi_states());
        assert_eq!(a.posteriors(), direct.posteriors());
        assert_eq!(a.sample_traces(2), direct.sample_traces(2));
        assert!(
            std::sync::Arc::ptr_eq(a.workspace(), b.workspace()),
            "prepared abductions must share the caller's workspace"
        );
        assert!(
            !std::sync::Arc::ptr_eq(a.workspace(), direct.workspace()),
            "the direct path builds its own workspace"
        );
    }

    #[test]
    fn seeded_sampling_matches_configured_seed_and_diverges_otherwise() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 44);
        let log = logged_session(&truth);
        let config = VeritasConfig::paper_default();
        let ab = Abduction::infer(&log, &config);
        assert_eq!(
            ab.sample_traces(3),
            ab.sample_traces_with_seed(3, config.seed)
        );
        assert_ne!(
            ab.sample_traces_with_seed(3, config.seed),
            ab.sample_traces_with_seed(3, config.seed + 1),
            "different seeds should explore different posterior paths"
        );
    }

    #[test]
    fn from_parts_restores_an_identical_abduction_without_inference() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 77);
        let log = logged_session(&truth);
        let config = VeritasConfig::paper_default();
        let original = Abduction::infer(&log, &config);
        let restored = Abduction::from_parts(
            &log,
            &config,
            original.workspace().clone(),
            original.viterbi().clone(),
            original.posteriors().clone(),
        )
        .unwrap();
        assert_eq!(restored.viterbi_states(), original.viterbi_states());
        assert_eq!(restored.posteriors(), original.posteriors());
        assert_eq!(restored.num_obs(), original.num_obs());
        assert_eq!(restored.start_intervals(), original.start_intervals());
        assert_eq!(restored.total_intervals(), original.total_intervals());
        assert_eq!(restored.viterbi_trace(), original.viterbi_trace());
        assert_eq!(restored.sample_traces(3), original.sample_traces(3));
        assert!(
            std::sync::Arc::ptr_eq(restored.workspace(), original.workspace()),
            "restoration must reuse the caller's shared kernel workspace"
        );
    }

    #[test]
    fn from_parts_rejects_artifacts_that_do_not_fit_the_log() {
        let truth = FccLike::new(3.0, 8.0).generate(600.0, 78);
        let log = logged_session(&truth);
        let config = VeritasConfig::paper_default();
        let ab = Abduction::infer(&log, &config);

        // A truncated log: every stored shape is now one chunk too long.
        let mut shorter = log.clone();
        shorter.records.pop();
        let err = Abduction::from_parts(
            &shorter,
            &config,
            ab.workspace().clone(),
            ab.viterbi().clone(),
            ab.posteriors().clone(),
        )
        .unwrap_err();
        assert!(matches!(err, AbductionError::InconsistentParts(_)), "{err}");

        // An out-of-grid Viterbi state.
        let mut bad_viterbi = ab.viterbi().clone();
        bad_viterbi.path[0] = ab.capacity_grid().len();
        assert!(matches!(
            Abduction::from_parts(
                &log,
                &config,
                ab.workspace().clone(),
                bad_viterbi,
                ab.posteriors().clone(),
            ),
            Err(AbductionError::InconsistentParts(_))
        ));

        // A pairwise-posterior list of the wrong length.
        let mut bad_posteriors = ab.posteriors().clone();
        bad_posteriors.xi.pop();
        assert!(matches!(
            Abduction::from_parts(
                &log,
                &config,
                ab.workspace().clone(),
                ab.viterbi().clone(),
                bad_posteriors,
            ),
            Err(AbductionError::InconsistentParts(_))
        ));
    }

    #[test]
    #[should_panic(expected = "empty session")]
    fn rejects_empty_logs() {
        let log = SessionLog {
            abr_name: "MPC".into(),
            buffer_capacity_s: 5.0,
            chunk_duration_s: 2.0,
            records: vec![],
            startup_delay_s: 0.0,
            total_rebuffer_s: 0.0,
            session_duration_s: 0.0,
        };
        let _ = Abduction::infer(&log, &VeritasConfig::paper_default());
    }
}
