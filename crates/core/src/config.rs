//! Veritas configuration.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the Veritas abduction step.
///
/// The defaults are the paper's evaluation settings (§4.1): GTBW transition
/// interval δ = 5 s, capacity grid step ε = 0.5 Mbps, emission noise
/// σ = 0.5 Mbps, a tridiagonal transition prior, a uniform initial
/// distribution, and K = 5 posterior samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VeritasConfig {
    /// Width of one GTBW interval in seconds (δ).
    pub delta_s: f64,
    /// Capacity quantization step in Mbps (ε).
    pub epsilon_mbps: f64,
    /// Top of the capacity grid in Mbps.
    pub max_capacity_mbps: f64,
    /// Emission noise standard deviation in Mbps (σ).
    pub sigma_mbps: f64,
    /// Probability of staying in the same capacity state across one δ
    /// interval (the tridiagonal prior's diagonal).
    pub stay_probability: f64,
    /// Number of posterior capacity traces to sample (K).
    pub num_samples: usize,
    /// Seed for posterior sampling.
    pub seed: u64,
}

impl VeritasConfig {
    /// The paper's default configuration.
    pub fn paper_default() -> Self {
        Self {
            delta_s: 5.0,
            epsilon_mbps: 0.5,
            max_capacity_mbps: 10.0,
            sigma_mbps: 0.5,
            stay_probability: 0.8,
            num_samples: 5,
            seed: 7,
        }
    }

    /// Overrides the capacity-grid ceiling (e.g. when the workload is known
    /// to contain faster links).
    pub fn with_max_capacity(mut self, max_capacity_mbps: f64) -> Self {
        assert!(max_capacity_mbps > 0.0);
        self.max_capacity_mbps = max_capacity_mbps;
        self
    }

    /// Overrides the number of posterior samples.
    pub fn with_samples(mut self, num_samples: usize) -> Self {
        assert!(num_samples >= 1);
        self.num_samples = num_samples;
        self
    }

    /// Overrides the emission noise.
    pub fn with_sigma(mut self, sigma_mbps: f64) -> Self {
        assert!(sigma_mbps > 0.0);
        self.sigma_mbps = sigma_mbps;
        self
    }

    /// Overrides the stay probability of the tridiagonal prior.
    pub fn with_stay_probability(mut self, stay_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&stay_probability));
        self.stay_probability = stay_probability;
        self
    }

    /// Overrides the RNG seed used for posterior sampling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.delta_s.is_finite() && self.delta_s > 0.0) {
            return Err(format!("delta_s must be positive, got {}", self.delta_s));
        }
        if !(self.epsilon_mbps.is_finite() && self.epsilon_mbps > 0.0) {
            return Err(format!(
                "epsilon_mbps must be positive, got {}",
                self.epsilon_mbps
            ));
        }
        if self.max_capacity_mbps < self.epsilon_mbps {
            return Err("max_capacity_mbps must be at least epsilon_mbps".to_string());
        }
        if !(self.sigma_mbps.is_finite() && self.sigma_mbps > 0.0) {
            return Err(format!(
                "sigma_mbps must be positive, got {}",
                self.sigma_mbps
            ));
        }
        if !(0.0..=1.0).contains(&self.stay_probability) {
            return Err(format!(
                "stay_probability must be in [0, 1], got {}",
                self.stay_probability
            ));
        }
        if self.num_samples == 0 {
            return Err("num_samples must be at least 1".to_string());
        }
        Ok(())
    }

    /// Number of capacity states implied by ε and the ceiling.
    pub fn num_states(&self) -> usize {
        (self.max_capacity_mbps / self.epsilon_mbps).floor() as usize + 1
    }

    /// The capacity grid (Mbps value of each hidden state) implied by ε and
    /// the ceiling.
    ///
    /// # Panics
    ///
    /// Panics on an invalid grid configuration; call [`Self::validate`]
    /// first when the config is untrusted.
    pub fn capacity_grid(&self) -> Vec<f64> {
        veritas_trace::Quantizer::new(self.epsilon_mbps, self.max_capacity_mbps).values()
    }
}

impl Default for VeritasConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_settings() {
        let c = VeritasConfig::paper_default();
        assert_eq!(c.delta_s, 5.0);
        assert_eq!(c.epsilon_mbps, 0.5);
        assert_eq!(c.sigma_mbps, 0.5);
        assert_eq!(c.num_samples, 5);
        assert_eq!(c.num_states(), 21);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_update_fields() {
        let c = VeritasConfig::paper_default()
            .with_max_capacity(20.0)
            .with_samples(9)
            .with_sigma(1.0)
            .with_stay_probability(0.95)
            .with_seed(99);
        assert_eq!(c.max_capacity_mbps, 20.0);
        assert_eq!(c.num_samples, 9);
        assert_eq!(c.sigma_mbps, 1.0);
        assert_eq!(c.stay_probability, 0.95);
        assert_eq!(c.seed, 99);
        assert_eq!(c.num_states(), 41);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = VeritasConfig::paper_default();
        c.delta_s = 0.0;
        assert!(c.validate().is_err());
        let mut c = VeritasConfig::paper_default();
        c.epsilon_mbps = -1.0;
        assert!(c.validate().is_err());
        let mut c = VeritasConfig::paper_default();
        c.max_capacity_mbps = 0.1;
        assert!(c.validate().is_err());
        let mut c = VeritasConfig::paper_default();
        c.stay_probability = 1.5;
        assert!(c.validate().is_err());
        let mut c = VeritasConfig::paper_default();
        c.num_samples = 0;
        assert!(c.validate().is_err());
    }
}
