//! Interventional queries: predicting the download time of the *next* chunk
//! for arbitrary candidate sizes (paper §4.4, Figure 12).
//!
//! Unlike the associational Fugu predictor, Veritas first abduces the latent
//! GTBW from the observations so far, propagates it forward through the
//! transition prior, and only then asks the TCP model what a chunk of the
//! candidate size would experience. Because the capacity estimate does not
//! depend on which sizes the deployed ABR happened to pick, the prediction
//! is unbiased for sizes the ABR would never have chosen.

use veritas_net::{estimate_download_time, TcpInfo};
use veritas_player::SessionLog;

use crate::{Abduction, VeritasConfig};

/// Veritas's interventional download-time predictor.
#[derive(Debug, Clone, Copy)]
pub struct InterventionalPredictor {
    config: VeritasConfig,
}

/// A single prediction with its intermediate quantities, useful for
/// diagnostics and for the figure-reproduction binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownloadTimePrediction {
    /// Expected GTBW for the next chunk's interval, in Mbps.
    pub expected_capacity_mbps: f64,
    /// Predicted download time in seconds.
    pub download_time_s: f64,
}

impl InterventionalPredictor {
    /// Creates a predictor with the given Veritas configuration.
    pub fn new(config: VeritasConfig) -> Self {
        Self { config }
    }

    /// Predicts the download time of chunk `next_index` of `log` for a
    /// candidate `candidate_size_bytes`, using only observations of chunks
    /// `0..next_index`.
    ///
    /// `tcp_info` is the TCP state at the moment the candidate request would
    /// be issued; pass the logged snapshot when evaluating offline (it is
    /// observable at decision time), or a synthetic steady-state snapshot
    /// when none is available.
    ///
    /// # Panics
    ///
    /// Panics if `next_index` is 0 (no history) or out of range.
    pub fn predict(
        &self,
        log: &SessionLog,
        next_index: usize,
        candidate_size_bytes: f64,
        tcp_info: &TcpInfo,
    ) -> DownloadTimePrediction {
        assert!(next_index >= 1, "need at least one observed chunk");
        assert!(next_index <= log.records.len(), "next_index out of range");
        let prefix = SessionLog {
            records: log.records[..next_index].to_vec(),
            ..log.clone()
        };
        let abduction = Abduction::infer(&prefix, &self.config);
        self.predict_from_abduction(&abduction, log, next_index, candidate_size_bytes, tcp_info)
    }

    /// Same as [`Self::predict`] but reusing an existing abduction over the
    /// observation prefix `log.records[..next_index]` — the cache-friendly
    /// path: a batch executor answering many candidate sizes (or repeated
    /// queries) at the same decision point abduces once and predicts many
    /// times.
    ///
    /// # Panics
    ///
    /// Panics if `next_index` is 0, out of range, or does not match the
    /// number of chunks the abduction was inferred over.
    pub fn predict_from_abduction(
        &self,
        abduction: &Abduction,
        log: &SessionLog,
        next_index: usize,
        candidate_size_bytes: f64,
        tcp_info: &TcpInfo,
    ) -> DownloadTimePrediction {
        assert!(next_index >= 1, "need at least one observed chunk");
        assert!(next_index <= log.records.len(), "next_index out of range");
        assert_eq!(
            abduction.viterbi_states().len(),
            next_index,
            "abduction must cover exactly the observation prefix"
        );
        let expected_capacity = self.expected_next_capacity(abduction, log, next_index);
        DownloadTimePrediction {
            expected_capacity_mbps: expected_capacity,
            download_time_s: estimate_download_time(
                expected_capacity,
                tcp_info,
                candidate_size_bytes,
            ),
        }
    }

    /// Expected GTBW for the next chunk: the most likely (Viterbi) state of
    /// the last observed chunk propagated forward through `A^Δ`, where `Δ`
    /// is the gap in δ-intervals between the last observed chunk's start and
    /// the next chunk's start.
    fn expected_next_capacity(
        &self,
        abduction: &Abduction,
        log: &SessionLog,
        next_index: usize,
    ) -> f64 {
        let grid = abduction.capacity_grid();
        let last_state = *abduction
            .viterbi_states()
            .last()
            .expect("abduction on a non-empty prefix");
        let last_interval = *abduction
            .start_intervals()
            .last()
            .expect("non-empty prefix");
        // When the next chunk exists in the log we know its true start time;
        // otherwise assume it is requested immediately (same interval).
        let next_interval = if next_index < log.records.len() {
            (log.records[next_index].start_time_s / self.config.delta_s).floor() as usize
        } else {
            last_interval
        };
        let gap = next_interval.saturating_sub(last_interval) as u32;
        // Resolve A^Δ through the abduction's workspace: decision points
        // mostly reuse a gap the inference pass already materialized, and
        // repeated predictions share whatever this call adds to the cache.
        let step = abduction.workspace().kernel(gap);
        grid.iter()
            .enumerate()
            .map(|(j, &c)| step.matrix().get(last_state, j) * c)
            .sum()
    }

    /// Predicts download times for every chunk of a logged session (chunk
    /// `n` predicted from chunks `0..n` with the logged TCP state), returning
    /// `(predicted, actual)` pairs — the Veritas series of Figure 12.
    pub fn predict_over_log(&self, log: &SessionLog) -> Vec<(f64, f64)> {
        (1..log.records.len())
            .map(|n| {
                let record = &log.records[n];
                let p = self.predict(log, n, record.size_bytes, &record.tcp_info);
                (p.download_time_s, record.download_time_s)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_abr::{Mpc, RandomAbr};
    use veritas_media::{QualityLadder, VbrParams, VideoAsset};
    use veritas_player::{run_session, PlayerConfig};
    use veritas_trace::generators::{FccLike, TraceGenerator};
    use veritas_trace::BandwidthTrace;

    fn asset() -> VideoAsset {
        VideoAsset::generate(
            QualityLadder::paper_default(),
            120.0,
            2.0,
            VbrParams::default(),
            5,
        )
    }

    fn predictor() -> InterventionalPredictor {
        InterventionalPredictor::new(VeritasConfig::paper_default())
    }

    #[test]
    fn predicts_reasonable_times_on_a_constant_link() {
        let truth = BandwidthTrace::constant(4.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let p = predictor();
        let preds = p.predict_over_log(&log);
        let mae: f64 = preds
            .iter()
            .map(|(pred, act)| (pred - act).abs())
            .sum::<f64>()
            / preds.len() as f64;
        assert!(
            mae < 0.6,
            "MAE {mae} s on a constant 4 Mbps link is too large"
        );
    }

    #[test]
    fn larger_candidate_sizes_predict_longer_downloads() {
        let truth = BandwidthTrace::constant(4.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let p = predictor();
        let n = 20;
        let info = log.records[n].tcp_info;
        let small = p.predict(&log, n, 100_000.0, &info).download_time_s;
        let large = p.predict(&log, n, 2_000_000.0, &info).download_time_s;
        assert!(large > small);
    }

    #[test]
    fn expected_capacity_tracks_the_link() {
        let truth = BandwidthTrace::constant(6.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let p = predictor();
        let n = 30;
        let pred = p.predict(&log, n, 1_000_000.0, &log.records[n].tcp_info);
        assert!(
            (pred.expected_capacity_mbps - 6.0).abs() < 1.5,
            "expected capacity {} should be near 6 Mbps",
            pred.expected_capacity_mbps
        );
    }

    #[test]
    fn prediction_is_unbiased_for_randomized_chunk_sequences() {
        // The interventional test set: bitrates chosen at random, so chunk
        // sizes are uncorrelated with network conditions.
        let truth = FccLike::new(2.0, 8.0).generate(600.0, 7);
        let mut abr = RandomAbr::new(3);
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let p = predictor();
        let preds = p.predict_over_log(&log);
        let mean_signed_error: f64 =
            preds.iter().map(|(pred, act)| pred - act).sum::<f64>() / preds.len() as f64;
        // Allow a modest absolute bias but catch the gross underestimation
        // an associational model exhibits (several seconds).
        assert!(
            mean_signed_error.abs() < 1.0,
            "mean signed error {mean_signed_error} s indicates bias"
        );
    }

    #[test]
    fn predict_from_abduction_matches_predict() {
        let truth = BandwidthTrace::constant(4.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let p = predictor();
        let n = 15;
        let prefix = SessionLog {
            records: log.records[..n].to_vec(),
            ..log.clone()
        };
        let abduction = Abduction::infer(&prefix, &VeritasConfig::paper_default());
        let via_cache =
            p.predict_from_abduction(&abduction, &log, n, 1_000_000.0, &log.records[n].tcp_info);
        let direct = p.predict(&log, n, 1_000_000.0, &log.records[n].tcp_info);
        assert_eq!(via_cache, direct);
    }

    #[test]
    #[should_panic(expected = "exactly the observation prefix")]
    fn predict_from_abduction_rejects_mismatched_prefix() {
        let truth = BandwidthTrace::constant(4.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let abduction = Abduction::infer(&log, &VeritasConfig::paper_default());
        let _ = predictor().predict_from_abduction(
            &abduction,
            &log,
            5,
            1_000_000.0,
            &log.records[5].tcp_info,
        );
    }

    #[test]
    #[should_panic(expected = "at least one observed chunk")]
    fn requires_history() {
        let truth = BandwidthTrace::constant(4.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset(), &mut abr, &truth, &PlayerConfig::paper_default());
        let _ = predictor().predict(&log, 0, 1e6, &log.records[0].tcp_info);
    }
}
