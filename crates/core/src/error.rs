//! Typed errors for the Veritas inference entry points.

use std::fmt;

/// Why an abduction could not be run.
///
/// Returned by [`crate::Abduction::try_infer`]; the panicking
/// [`crate::Abduction::infer`] wrapper formats these into its panic message,
/// so existing callers observe unchanged behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbductionError {
    /// The [`crate::VeritasConfig`] failed validation; the payload is the
    /// validator's description of the first problem found.
    InvalidConfig(String),
    /// The session log contains no chunk records, so there is nothing to
    /// condition the posterior on.
    EmptySession,
}

impl fmt::Display for AbductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbductionError::InvalidConfig(reason) => {
                write!(f, "invalid Veritas config: {reason}")
            }
            AbductionError::EmptySession => {
                write!(f, "cannot run abduction on an empty session")
            }
        }
    }
}

impl std::error::Error for AbductionError {}
