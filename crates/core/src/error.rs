//! Typed errors for the Veritas inference entry points.

use std::fmt;

/// Why an abduction could not be run.
///
/// Returned by [`crate::Abduction::try_infer`]; the panicking
/// [`crate::Abduction::infer`] wrapper formats these into its panic message,
/// so existing callers observe unchanged behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbductionError {
    /// The [`crate::VeritasConfig`] failed validation; the payload is the
    /// validator's description of the first problem found.
    InvalidConfig(String),
    /// The session log contains no chunk records, so there is nothing to
    /// condition the posterior on.
    EmptySession,
    /// Chunk `chunk` starts before its predecessor's δ-interval. The EHMM's
    /// embedded gaps `Δ_n` are defined as non-negative interval differences;
    /// a log whose start times go backwards would otherwise underflow the
    /// gap computation and silently produce a garbage transition power.
    NonMonotonicLog {
        /// Index of the first out-of-order chunk record.
        chunk: usize,
    },
    /// Precomputed inference artifacts handed to
    /// [`crate::Abduction::from_parts`] do not fit the log/config pair
    /// (wrong path length, posterior shape, or out-of-range states).
    /// Persistence layers treat this as a cache miss: a stale or corrupt
    /// stored posterior must never be served against the wrong session.
    InconsistentParts(String),
}

impl fmt::Display for AbductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbductionError::InvalidConfig(reason) => {
                write!(f, "invalid Veritas config: {reason}")
            }
            AbductionError::EmptySession => {
                write!(f, "cannot run abduction on an empty session")
            }
            AbductionError::NonMonotonicLog { chunk } => {
                write!(
                    f,
                    "chunk {chunk} starts in an earlier δ-interval than chunk {}: \
                     session logs must be sorted by start time",
                    chunk - 1
                )
            }
            AbductionError::InconsistentParts(reason) => {
                write!(
                    f,
                    "restored abduction parts do not fit the session: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for AbductionError {}
