//! Trace-driven video streaming emulator and session logs.
//!
//! This crate is the stand-in for the paper's emulation testbed (Puffer
//! player + mahimahi): [`run_session`] plays a [`veritas_media::VideoAsset`]
//! over a [`veritas_trace::BandwidthTrace`] through the
//! [`veritas_net::TcpConnection`] model, with a [`veritas_abr::Abr`] policy
//! choosing qualities, and records a [`SessionLog`] with the paper's
//! observed variables plus QoE summaries.
//!
//! The same entry point doubles as the replay engine for counterfactual
//! queries (different ABR / buffer size / ladder over an inferred trace).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod config;
mod log;
mod session;

pub use config::PlayerConfig;
pub use log::{ChunkRecord, QoeSummary, SessionLog};
pub use session::{run_batch, run_session};
