//! Player and session configuration.

use serde::{Deserialize, Serialize};
use veritas_net::LinkModel;

/// Configuration of the emulated video player and its network path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayerConfig {
    /// Maximum playback buffer the client will hold, in seconds. The paper's
    /// deployed setting (Setting A) uses 5 s; one counterfactual raises it
    /// to 30 s.
    pub buffer_capacity_s: f64,
    /// Number of chunks that must be buffered before playback starts.
    pub startup_chunks: usize,
    /// Bottleneck link parameters (RTT, MSS, queue).
    pub link: LinkModel,
}

impl PlayerConfig {
    /// The paper's deployed configuration: 5 s buffer, playback after the
    /// first chunk, 80 ms RTT link.
    pub fn paper_default() -> Self {
        Self {
            buffer_capacity_s: 5.0,
            startup_chunks: 1,
            link: LinkModel::paper_default(),
        }
    }

    /// Same player with a different buffer capacity (the buffer-size
    /// counterfactual).
    pub fn with_buffer_capacity(mut self, buffer_capacity_s: f64) -> Self {
        assert!(buffer_capacity_s > 0.0);
        self.buffer_capacity_s = buffer_capacity_s;
        self
    }

    /// Overrides the link model.
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.buffer_capacity_s.is_finite() && self.buffer_capacity_s > 0.0) {
            return Err(format!(
                "buffer capacity must be positive, got {}",
                self.buffer_capacity_s
            ));
        }
        if self.startup_chunks == 0 {
            return Err("startup_chunks must be at least 1".to_string());
        }
        if self.link.base_rtt_s() <= 0.0 {
            return Err("link RTT must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for PlayerConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let c = PlayerConfig::paper_default();
        assert_eq!(c.buffer_capacity_s, 5.0);
        assert_eq!(c.startup_chunks, 1);
        assert!((c.link.base_rtt_s() - 0.08).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn buffer_override() {
        let c = PlayerConfig::paper_default().with_buffer_capacity(30.0);
        assert_eq!(c.buffer_capacity_s, 30.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = PlayerConfig::paper_default();
        c.buffer_capacity_s = 0.0;
        assert!(c.validate().is_err());
        let mut c = PlayerConfig::paper_default();
        c.startup_chunks = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn with_buffer_capacity_rejects_zero() {
        let _ = PlayerConfig::paper_default().with_buffer_capacity(0.0);
    }
}
