//! Session logs: the observed variables of the paper's causal DAG.

use serde::{Deserialize, Serialize};
use veritas_net::TcpInfo;

/// Everything recorded about one chunk download.
///
/// The fields mirror the paper's observed variables (Figure 3, shaded): the
/// chunk size `S_n`, its download start/end times (`s_n`, `e_n`), the
/// download time `D_n` and derived throughput `Y_n`, the buffer at the start
/// of the download `B_{s_n}`, and the TCP state `W_{s_n}`.
///
/// `gtbw_at_request_mbps` is the *ground truth* bandwidth at the request
/// instant. It is carried in the log only so oracle baselines and evaluation
/// code can score inferences; Veritas itself never reads it (the abduction
/// API takes the observation-only view).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// Chunk index within the video, starting at 0.
    pub index: usize,
    /// Quality rung chosen by the ABR.
    pub quality: usize,
    /// Encoded size in bytes.
    pub size_bytes: f64,
    /// SSIM of the chunk at the chosen quality.
    pub ssim: f64,
    /// Idle time between the previous download finishing and this request
    /// being issued (the "off period"), in seconds.
    pub wait_before_request_s: f64,
    /// Absolute time the request was issued / download started, in seconds.
    pub start_time_s: f64,
    /// Absolute time the download finished, in seconds.
    pub end_time_s: f64,
    /// Download duration in seconds.
    pub download_time_s: f64,
    /// Observed application-level throughput in Mbps.
    pub throughput_mbps: f64,
    /// Playback buffer level when the request was issued, in seconds.
    pub buffer_at_request_s: f64,
    /// Stall time incurred while this chunk was downloading, in seconds.
    pub rebuffer_s: f64,
    /// TCP state at the start of the download (the control variables).
    pub tcp_info: TcpInfo,
    /// Ground-truth bandwidth at the request instant (oracle-only field).
    pub gtbw_at_request_mbps: f64,
}

/// The complete log of one emulated streaming session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionLog {
    /// Name of the ABR algorithm that produced the session.
    pub abr_name: String,
    /// Buffer capacity the player ran with, in seconds.
    pub buffer_capacity_s: f64,
    /// Playback duration of one chunk, in seconds.
    pub chunk_duration_s: f64,
    /// Per-chunk records in download order.
    pub records: Vec<ChunkRecord>,
    /// Time from session start until playback began, in seconds.
    pub startup_delay_s: f64,
    /// Total stall time after playback began, in seconds.
    pub total_rebuffer_s: f64,
    /// Wall-clock time from session start until the last chunk finished
    /// playing, in seconds.
    pub session_duration_s: f64,
}

/// Summary quality-of-experience metrics for a session — the quantities the
/// paper's counterfactual figures report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeSummary {
    /// Mean SSIM across downloaded chunks.
    pub mean_ssim: f64,
    /// Rebuffering ratio as a percentage of the session duration.
    pub rebuffer_ratio_percent: f64,
    /// Average bitrate of downloaded chunks in Mbps.
    pub avg_bitrate_mbps: f64,
    /// Startup delay in seconds.
    pub startup_delay_s: f64,
    /// Number of chunks downloaded.
    pub chunks: usize,
}

impl SessionLog {
    /// Summary QoE metrics of this session.
    pub fn qoe(&self) -> QoeSummary {
        let n = self.records.len().max(1) as f64;
        let mean_ssim = self.records.iter().map(|r| r.ssim).sum::<f64>() / n;
        let avg_bitrate = self
            .records
            .iter()
            .map(|r| r.size_bytes * 8.0 / 1e6 / self.chunk_duration_s)
            .sum::<f64>()
            / n;
        QoeSummary {
            mean_ssim,
            rebuffer_ratio_percent: self.rebuffer_ratio_percent(),
            avg_bitrate_mbps: avg_bitrate,
            startup_delay_s: self.startup_delay_s,
            chunks: self.records.len(),
        }
    }

    /// Total stall time divided by session duration, as a percentage.
    pub fn rebuffer_ratio_percent(&self) -> f64 {
        if self.session_duration_s <= 0.0 {
            return 0.0;
        }
        100.0 * self.total_rebuffer_s / self.session_duration_s
    }

    /// Observed throughput sequence, one value per chunk (Mbps).
    pub fn observed_throughputs(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.throughput_mbps).collect()
    }

    /// Download time sequence, one value per chunk (seconds).
    pub fn download_times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.download_time_s).collect()
    }

    /// Chunk size sequence in bytes.
    pub fn chunk_sizes(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.size_bytes).collect()
    }

    /// The ground-truth bandwidth at each request instant (oracle use only).
    pub fn ground_truth_bandwidths(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.gtbw_at_request_mbps)
            .collect()
    }

    /// A copy of the log with the ground-truth field zeroed out — the
    /// observation-only view handed to inference code in tests that want to
    /// enforce the "Veritas never sees GTBW" discipline explicitly.
    pub fn without_ground_truth(&self) -> SessionLog {
        let mut log = self.clone();
        for r in &mut log.records {
            r.gtbw_at_request_mbps = f64::NAN;
        }
        log
    }

    /// Serializes the log to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("session log serialization cannot fail")
    }

    /// Parses a log from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Basic internal consistency checks; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end = 0.0_f64;
        for (i, r) in self.records.iter().enumerate() {
            if r.end_time_s + 1e-9 < r.start_time_s {
                return Err(format!("chunk {i}: end before start"));
            }
            if (r.end_time_s - r.start_time_s - r.download_time_s).abs() > 1e-6 {
                return Err(format!(
                    "chunk {i}: download time inconsistent with timestamps"
                ));
            }
            if r.start_time_s + 1e-9 < prev_end {
                return Err(format!("chunk {i}: downloads overlap"));
            }
            if r.buffer_at_request_s < -1e-9 {
                return Err(format!("chunk {i}: negative buffer"));
            }
            if r.rebuffer_s < -1e-9 {
                return Err(format!("chunk {i}: negative rebuffer"));
            }
            if r.throughput_mbps < 0.0 {
                return Err(format!("chunk {i}: negative throughput"));
            }
            prev_end = r.end_time_s;
        }
        if self.total_rebuffer_s < -1e-9 {
            return Err("negative total rebuffer".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_net::TcpInfo;

    fn record(index: usize, start: f64, dt: f64) -> ChunkRecord {
        ChunkRecord {
            index,
            quality: 2,
            size_bytes: 500_000.0,
            ssim: 0.97,
            wait_before_request_s: 0.0,
            start_time_s: start,
            end_time_s: start + dt,
            download_time_s: dt,
            throughput_mbps: 500_000.0 * 8.0 / 1e6 / dt,
            buffer_at_request_s: 2.0,
            rebuffer_s: 0.0,
            tcp_info: TcpInfo::fresh(0.08),
            gtbw_at_request_mbps: 4.0,
        }
    }

    fn log() -> SessionLog {
        SessionLog {
            abr_name: "MPC".to_string(),
            buffer_capacity_s: 5.0,
            chunk_duration_s: 2.0,
            records: vec![
                record(0, 0.0, 1.0),
                record(1, 1.0, 2.0),
                record(2, 3.5, 0.5),
            ],
            startup_delay_s: 1.0,
            total_rebuffer_s: 0.5,
            session_duration_s: 10.0,
        }
    }

    #[test]
    fn qoe_summary_aggregates_records() {
        let q = log().qoe();
        assert_eq!(q.chunks, 3);
        assert!((q.mean_ssim - 0.97).abs() < 1e-12);
        assert!((q.avg_bitrate_mbps - 2.0).abs() < 1e-12);
        assert!((q.rebuffer_ratio_percent - 5.0).abs() < 1e-12);
        assert_eq!(q.startup_delay_s, 1.0);
    }

    #[test]
    fn rebuffer_ratio_handles_zero_duration() {
        let mut l = log();
        l.session_duration_s = 0.0;
        assert_eq!(l.rebuffer_ratio_percent(), 0.0);
    }

    #[test]
    fn accessors_extract_sequences() {
        let l = log();
        assert_eq!(l.observed_throughputs().len(), 3);
        assert_eq!(l.download_times(), vec![1.0, 2.0, 0.5]);
        assert_eq!(l.chunk_sizes(), vec![500_000.0; 3]);
        assert_eq!(l.ground_truth_bandwidths(), vec![4.0; 3]);
    }

    #[test]
    fn ground_truth_can_be_stripped() {
        let stripped = log().without_ground_truth();
        assert!(stripped
            .records
            .iter()
            .all(|r| r.gtbw_at_request_mbps.is_nan()));
        // Observations are untouched.
        assert_eq!(stripped.download_times(), log().download_times());
    }

    #[test]
    fn json_round_trip() {
        let l = log();
        let back = SessionLog::from_json(&l.to_json()).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn invariants_pass_for_well_formed_log() {
        assert!(log().check_invariants().is_ok());
    }

    #[test]
    fn invariants_catch_overlapping_downloads() {
        let mut l = log();
        l.records[1].start_time_s = 0.5;
        l.records[1].end_time_s = 0.5 + l.records[1].download_time_s;
        assert!(l.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_inconsistent_download_time() {
        let mut l = log();
        l.records[2].download_time_s = 99.0;
        assert!(l.check_invariants().is_err());
    }
}
