//! The trace-driven streaming session emulator.
//!
//! This is the "deployed system" of the paper's evaluation: it plays a VBR
//! video over a ground-truth bandwidth trace through the round-level TCP
//! model, letting an ABR algorithm pick chunk qualities. It produces a
//! [`SessionLog`] containing exactly the observed variables of the causal
//! DAG (and, separately, the ground truth for oracle evaluation).
//!
//! The same function also serves as the *replay engine* for counterfactual
//! queries: replaying a session under Setting B (different ABR, buffer size
//! or quality ladder) over an inferred bandwidth trace is just another call
//! to [`run_session`] with different arguments.

use veritas_abr::{Abr, AbrContext};
use veritas_media::VideoAsset;
use veritas_net::TcpConnection;
use veritas_trace::BandwidthTrace;

use crate::{ChunkRecord, PlayerConfig, SessionLog};

/// Emulates a full playback session of `asset` over `trace` with `abr`
/// deciding qualities, returning the complete session log.
///
/// # Panics
///
/// Panics if `config` fails validation.
pub fn run_session(
    asset: &VideoAsset,
    abr: &mut dyn Abr,
    trace: &BandwidthTrace,
    config: &PlayerConfig,
) -> SessionLog {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid player config: {e}"));

    let chunk_dur = asset.chunk_duration_s();
    let mut connection = TcpConnection::new(config.link);
    let mut now = 0.0_f64;
    let mut buffer_s = 0.0_f64;
    let mut playing = false;
    let mut startup_delay_s = 0.0_f64;
    let mut total_rebuffer_s = 0.0_f64;
    let mut prev_end_time = 0.0_f64;

    let mut throughput_history: Vec<f64> = Vec::with_capacity(asset.num_chunks());
    let mut download_time_history: Vec<f64> = Vec::with_capacity(asset.num_chunks());
    let mut last_quality: Option<usize> = None;
    let mut records: Vec<ChunkRecord> = Vec::with_capacity(asset.num_chunks());

    for chunk in 0..asset.num_chunks() {
        // Off period: if the buffer cannot absorb another chunk, the player
        // idles until enough has played out. These idle gaps are what push
        // TCP into slow-start restart for the next request.
        let mut wait_s = 0.0;
        if playing {
            let headroom = config.buffer_capacity_s - buffer_s;
            if headroom < chunk_dur {
                wait_s = (chunk_dur - headroom).clamp(0.0, buffer_s);
                buffer_s -= wait_s;
                now += wait_s;
            }
        }

        // ABR decision with the observation-only context.
        let quality = {
            let ctx = AbrContext {
                asset,
                next_chunk: chunk,
                buffer_s,
                buffer_capacity_s: config.buffer_capacity_s,
                throughput_history_mbps: &throughput_history,
                download_time_history_s: &download_time_history,
                last_quality,
            };
            abr.choose(&ctx).min(asset.num_qualities() - 1)
        };

        let size_bytes = asset.size_bytes(chunk, quality);
        let buffer_at_request = buffer_s;
        let gtbw_at_request = trace.bandwidth_at(now);
        let request_time = now;

        let result = connection.download(size_bytes, request_time, trace);
        let download_time = result.duration_s;
        let end_time = request_time + download_time;

        // Buffer drains while the chunk downloads; a stall accrues once it
        // empties (only after playback has started).
        let mut rebuffer_s = 0.0;
        if playing {
            if download_time > buffer_s {
                rebuffer_s = download_time - buffer_s;
                buffer_s = 0.0;
            } else {
                buffer_s -= download_time;
            }
        }
        buffer_s = (buffer_s + chunk_dur).min(config.buffer_capacity_s);
        total_rebuffer_s += rebuffer_s;
        now = end_time;

        records.push(ChunkRecord {
            index: chunk,
            quality,
            size_bytes,
            ssim: asset.ssim(chunk, quality),
            wait_before_request_s: wait_s,
            start_time_s: request_time,
            end_time_s: end_time,
            download_time_s: download_time,
            throughput_mbps: result.throughput_mbps,
            buffer_at_request_s: buffer_at_request,
            rebuffer_s,
            tcp_info: result.tcp_info_at_start,
            gtbw_at_request_mbps: gtbw_at_request,
        });

        throughput_history.push(result.throughput_mbps);
        download_time_history.push(download_time);
        last_quality = Some(quality);
        prev_end_time = end_time;

        if !playing && records.len() >= config.startup_chunks {
            playing = true;
            startup_delay_s = now;
        }
    }

    let session_duration_s = prev_end_time + buffer_s;
    SessionLog {
        abr_name: abr.name().to_string(),
        buffer_capacity_s: config.buffer_capacity_s,
        chunk_duration_s: chunk_dur,
        records,
        startup_delay_s,
        total_rebuffer_s,
        session_duration_s,
    }
}

/// Runs a batch of sessions over many traces with a fresh copy of the same
/// ABR per trace (the ABR is reset between sessions).
pub fn run_batch(
    asset: &VideoAsset,
    abr: &mut dyn Abr,
    traces: &[BandwidthTrace],
    config: &PlayerConfig,
) -> Vec<SessionLog> {
    traces
        .iter()
        .map(|trace| {
            abr.reset();
            run_session(asset, abr, trace, config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_abr::{Bba, FixedQuality, Mpc};
    use veritas_media::{QualityLadder, VbrParams, VideoAsset};
    use veritas_trace::generators::{FccLike, TraceGenerator};

    fn short_asset(seed: u64) -> VideoAsset {
        VideoAsset::generate(
            QualityLadder::paper_default(),
            120.0,
            2.0,
            VbrParams::default(),
            seed,
        )
    }

    #[test]
    fn all_chunks_are_downloaded_and_invariants_hold() {
        let asset = short_asset(1);
        let trace = BandwidthTrace::constant(6.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        assert_eq!(log.records.len(), asset.num_chunks());
        log.check_invariants()
            .expect("session log must be internally consistent");
        assert_eq!(log.abr_name, "MPC");
    }

    #[test]
    fn emulation_is_deterministic() {
        let asset = short_asset(2);
        let trace = FccLike::new(3.0, 8.0).generate(600.0, 17);
        let config = PlayerConfig::paper_default();
        let mut abr1 = Mpc::new();
        let mut abr2 = Mpc::new();
        let a = run_session(&asset, &mut abr1, &trace, &config);
        let b = run_session(&asset, &mut abr2, &trace, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn generous_bandwidth_means_no_rebuffering_and_high_quality() {
        let asset = short_asset(3);
        let trace = BandwidthTrace::constant(10.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        let qoe = log.qoe();
        assert_eq!(qoe.rebuffer_ratio_percent, 0.0);
        assert!(
            qoe.mean_ssim > 0.97,
            "mean SSIM {} too low for a 10 Mbps link",
            qoe.mean_ssim
        );
        // The top rung is 4 Mbps, comfortably under 10 Mbps.
        assert!(qoe.avg_bitrate_mbps > 2.5);
    }

    #[test]
    fn starved_link_forces_low_quality_and_stalls() {
        let asset = short_asset(4);
        // The lowest rung is 0.1 Mbps nominal; a 0.05 Mbps link cannot
        // sustain even that, so stalls are unavoidable.
        let trace = BandwidthTrace::constant(0.05, 20_000.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        let qoe = log.qoe();
        assert!(
            qoe.avg_bitrate_mbps < 0.5,
            "avg bitrate {}",
            qoe.avg_bitrate_mbps
        );
        assert!(
            qoe.rebuffer_ratio_percent > 10.0,
            "a 0.05 Mbps link cannot sustain even the lowest rung without stalling (got {}%)",
            qoe.rebuffer_ratio_percent
        );
    }

    #[test]
    fn link_matching_lowest_rung_plays_mostly_smoothly() {
        let asset = short_asset(4);
        let trace = BandwidthTrace::constant(0.3, 10_000.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        let qoe = log.qoe();
        assert!(
            qoe.avg_bitrate_mbps < 0.6,
            "avg bitrate {}",
            qoe.avg_bitrate_mbps
        );
        assert!(
            qoe.rebuffer_ratio_percent < 20.0,
            "0.3 Mbps comfortably sustains the 0.1 Mbps rung (got {}%)",
            qoe.rebuffer_ratio_percent
        );
    }

    #[test]
    fn buffer_level_never_exceeds_capacity() {
        let asset = short_asset(5);
        let trace = BandwidthTrace::constant(9.0, 1200.0);
        let mut abr = Bba::new();
        let config = PlayerConfig::paper_default();
        let log = run_session(&asset, &mut abr, &trace, &config);
        for r in &log.records {
            assert!(
                r.buffer_at_request_s <= config.buffer_capacity_s + 1e-9,
                "chunk {}: buffer {} exceeds capacity",
                r.index,
                r.buffer_at_request_s
            );
        }
    }

    #[test]
    fn fast_links_create_off_periods() {
        let asset = short_asset(6);
        let trace = BandwidthTrace::constant(10.0, 1200.0);
        let mut abr = FixedQuality(0);
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        let waits: usize = log
            .records
            .iter()
            .filter(|r| r.wait_before_request_s > 0.1)
            .count();
        assert!(
            waits > asset.num_chunks() / 2,
            "tiny chunks over a fast link must leave the player waiting on a full buffer"
        );
        // And those off periods must be visible to TCP as idle gaps.
        let idle_restarts = log
            .records
            .iter()
            .filter(|r| r.tcp_info.last_send_gap_s > r.tcp_info.rto_s)
            .count();
        assert!(idle_restarts > asset.num_chunks() / 2);
    }

    #[test]
    fn saturated_links_have_no_off_periods() {
        let asset = short_asset(7);
        let trace = BandwidthTrace::constant(0.5, 3600.0);
        let mut abr = FixedQuality(4);
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        let waits: usize = log
            .records
            .iter()
            .filter(|r| r.wait_before_request_s > 1e-6)
            .count();
        assert_eq!(
            waits, 0,
            "a starved player never has to wait on a full buffer"
        );
    }

    #[test]
    fn larger_buffer_reduces_rebuffering_on_bursty_traces() {
        let asset = short_asset(8);
        // 60 s of good network, then a 40 s outage-ish dip, then recovery.
        let trace =
            veritas_trace::io::from_pairs(&[(60.0, 6.0), (40.0, 0.3), (1200.0, 6.0)]).unwrap();
        let mut abr_small = Mpc::new();
        let small = run_session(
            &asset,
            &mut abr_small,
            &trace,
            &PlayerConfig::paper_default().with_buffer_capacity(5.0),
        );
        let mut abr_large = Mpc::new();
        let large = run_session(
            &asset,
            &mut abr_large,
            &trace,
            &PlayerConfig::paper_default().with_buffer_capacity(30.0),
        );
        assert!(
            large.total_rebuffer_s <= small.total_rebuffer_s + 1e-9,
            "30 s buffer ({}) should not rebuffer more than 5 s buffer ({})",
            large.total_rebuffer_s,
            small.total_rebuffer_s
        );
    }

    #[test]
    fn startup_delay_is_positive_and_counts_first_chunk() {
        let asset = short_asset(9);
        let trace = BandwidthTrace::constant(4.0, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        assert!(log.startup_delay_s > 0.0);
        assert!((log.startup_delay_s - log.records[0].end_time_s).abs() < 1e-9);
    }

    #[test]
    fn different_abrs_produce_different_sessions() {
        let asset = short_asset(10);
        let trace = FccLike::new(3.0, 8.0).generate(600.0, 3);
        let config = PlayerConfig::paper_default();
        let mut mpc = Mpc::new();
        let mut bba = Bba::new();
        let log_mpc = run_session(&asset, &mut mpc, &trace, &config);
        let log_bba = run_session(&asset, &mut bba, &trace, &config);
        assert_ne!(
            log_mpc
                .records
                .iter()
                .map(|r| r.quality)
                .collect::<Vec<_>>(),
            log_bba
                .records
                .iter()
                .map(|r| r.quality)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ground_truth_is_recorded_from_the_trace() {
        let asset = short_asset(11);
        let trace = BandwidthTrace::constant(7.5, 1200.0);
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        assert!(log
            .ground_truth_bandwidths()
            .iter()
            .all(|&g| (g - 7.5).abs() < 1e-9));
    }

    #[test]
    fn session_duration_includes_buffer_playout() {
        let asset = short_asset(12);
        let trace = BandwidthTrace::constant(8.0, 1200.0);
        let mut abr = FixedQuality(1);
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        let last_end = log.records.last().unwrap().end_time_s;
        assert!(log.session_duration_s >= last_end);
        assert!(log.session_duration_s <= last_end + log.buffer_capacity_s + 1e-9);
    }

    #[test]
    fn run_batch_resets_the_abr_between_traces() {
        let asset = short_asset(13);
        let gen = FccLike::new(3.0, 8.0);
        let traces = gen.generate_batch(300.0, 50, 2);
        let mut abr = veritas_abr::RandomAbr::new(5);
        let logs_batch = run_batch(&asset, &mut abr, &traces, &PlayerConfig::paper_default());
        // Running the first trace again from a fresh ABR must reproduce the
        // first batch entry exactly (reset works).
        let mut fresh = veritas_abr::RandomAbr::new(5);
        let single = run_session(
            &asset,
            &mut fresh,
            &traces[0],
            &PlayerConfig::paper_default(),
        );
        assert_eq!(logs_batch[0], single);
        assert_eq!(logs_batch.len(), 2);
    }

    #[test]
    fn throughput_history_passed_to_abr_matches_log() {
        // Use MPC on a step trace and verify the recorded throughputs are
        // plausible (positive, bounded by link capacity).
        let asset = short_asset(14);
        let trace = veritas_trace::io::from_pairs(&[(60.0, 2.0), (1200.0, 8.0)]).unwrap();
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default());
        for r in &log.records {
            assert!(r.throughput_mbps > 0.0);
            assert!(r.throughput_mbps <= 8.0 * 1.05);
        }
    }
}
