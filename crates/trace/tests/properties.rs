//! Property-based tests for bandwidth traces, generators, quantization and
//! the mahimahi round-trip.
//!
//! Determinism: the vendored proptest harness (shims/proptest) derives every
//! case's RNG seed from (module path, test name, case index), and all direct
//! `StdRng` uses below seed from literals, so CI runs are fully reproducible
//! with no persisted shrink state.

use proptest::prelude::*;

use veritas_trace::generators::{FccLike, RandomWalk, RegimeSwitch, TraceGenerator};
use veritas_trace::{io, BandwidthTrace, Quantizer, TraceStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_traces_report_exact_duration(
        delta in 0.5f64..10.0,
        values in prop::collection::vec(0.0f64..20.0, 1..60),
    ) {
        let trace = BandwidthTrace::from_uniform(delta, &values).unwrap();
        prop_assert!((trace.duration() - delta * values.len() as f64).abs() < 1e-9);
        prop_assert_eq!(trace.len(), values.len());
    }

    #[test]
    fn point_lookups_return_a_segment_value(
        delta in 0.5f64..10.0,
        values in prop::collection::vec(0.0f64..20.0, 1..40),
        t in -10.0f64..500.0,
    ) {
        let trace = BandwidthTrace::from_uniform(delta, &values).unwrap();
        let v = trace.bandwidth_at(t);
        prop_assert!(values.iter().any(|&x| (x - v).abs() < 1e-12));
    }

    #[test]
    fn resampling_preserves_total_deliverable_bytes(
        values in prop::collection::vec(0.0f64..20.0, 2..40),
        delta in 0.5f64..6.0,
    ) {
        let trace = BandwidthTrace::from_uniform(5.0, &values).unwrap();
        let resampled = trace.resample(delta);
        let original = trace.deliverable_bytes(0.0, trace.duration());
        // Compare over the original horizon (the resampled trace may extend
        // slightly past it, holding the last value).
        let after = resampled.deliverable_bytes(0.0, trace.duration());
        prop_assert!((original - after).abs() <= original.max(1.0) * 0.02 + 2e4);
    }

    #[test]
    fn scaling_scales_the_mean(
        values in prop::collection::vec(0.1f64..20.0, 1..40),
        factor in 0.0f64..5.0,
    ) {
        let trace = BandwidthTrace::from_uniform(5.0, &values).unwrap();
        let scaled = trace.scaled(factor);
        prop_assert!((scaled.mean() - trace.mean() * factor).abs() < 1e-9);
    }

    #[test]
    fn with_duration_is_exact_and_idempotent(
        values in prop::collection::vec(0.0f64..20.0, 1..40),
        duration in 1.0f64..500.0,
    ) {
        let trace = BandwidthTrace::from_uniform(5.0, &values).unwrap();
        let cut = trace.with_duration(duration);
        prop_assert!((cut.duration() - duration).abs() < 1e-9);
        let cut_again = cut.with_duration(duration);
        prop_assert!((cut_again.duration() - duration).abs() < 1e-9);
    }

    #[test]
    fn quantized_traces_stay_on_grid_and_close(
        values in prop::collection::vec(0.0f64..12.0, 1..40),
        epsilon in 0.1f64..1.5,
    ) {
        let quantizer = Quantizer::new(epsilon, 12.0);
        let trace = BandwidthTrace::from_uniform(5.0, &values).unwrap();
        let quantized = quantizer.quantize_trace(&trace);
        let top_grid_value = quantizer.value(quantizer.num_states() - 1);
        for (orig, q) in trace.values().iter().zip(quantized.values()) {
            let snapped = (q / epsilon).round() * epsilon;
            prop_assert!((q - snapped).abs() < 1e-9);
            // Values within the representable grid move by at most ε/2;
            // values above the top grid point clamp down to it.
            if *orig <= top_grid_value {
                prop_assert!((orig - q).abs() <= epsilon / 2.0 + 1e-9);
            } else {
                prop_assert!((q - top_grid_value).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn generators_respect_duration_and_nonnegativity(seed in any::<u64>(), duration in 30.0f64..900.0) {
        for trace in [
            FccLike::new(3.0, 8.0).generate(duration, seed),
            RandomWalk::new(0.5, 10.0, 0.8).generate(duration, seed),
            RegimeSwitch::new(vec![1.0, 4.0, 8.0], 0.4, 90.0).generate(duration, seed),
        ] {
            prop_assert!(trace.duration() >= duration - 1e-9);
            prop_assert!(trace.min() >= 0.0);
            let stats = TraceStats::of(&trace);
            prop_assert!(stats.mean_mbps.is_finite());
        }
    }

    #[test]
    fn json_round_trip_is_lossless(values in prop::collection::vec(0.0f64..20.0, 1..30)) {
        let trace = BandwidthTrace::from_uniform(5.0, &values).unwrap();
        let back = io::from_json(&io::to_json(&trace)).unwrap();
        prop_assert_eq!(back.values(), trace.values());
        prop_assert!((back.duration() - trace.duration()).abs() < 1e-9);
    }

    #[test]
    fn mahimahi_round_trip_preserves_rate_within_one_mtu_per_bin(
        values in prop::collection::vec(0.5f64..12.0, 1..12),
    ) {
        let trace = BandwidthTrace::from_uniform(5.0, &values).unwrap();
        let rendered = io::to_mahimahi(&trace);
        let back = io::from_mahimahi(&rendered, 5.0).unwrap();
        for (orig, rec) in trace.values().iter().zip(back.values()) {
            // One MTU per 5 s bin is 0.0024 Mbps; allow a little slack for
            // carry-over between bins.
            prop_assert!((orig - rec).abs() < 0.01, "orig {} vs rec {}", orig, rec);
        }
    }

    #[test]
    fn mahimahi_rendering_conserves_total_bytes(
        values in prop::collection::vec(0.0f64..12.0, 1..20),
        delta in 0.5f64..8.0,
    ) {
        // The carry accumulator must neither create nor destroy capacity:
        // the number of transmission opportunities equals the deliverable
        // byte total divided by the MTU, to within one packet.
        let trace = BandwidthTrace::from_uniform(delta, &values).unwrap();
        let rendered = io::to_mahimahi(&trace);
        let packets = rendered.lines().count() as f64;
        // Integrate at the renderer's own millisecond granularity (the
        // closed-form integral can differ when δ is not a whole number of
        // milliseconds).
        let total_ms = (trace.duration() * 1000.0).round() as u64;
        let total_bytes: f64 = (0..total_ms)
            .map(|ms| trace.bandwidth_at(ms as f64 / 1000.0) * 1e6 / 8.0 / 1000.0)
            .sum();
        let expected = (total_bytes / io::MAHIMAHI_MTU_BYTES).floor();
        prop_assert!(
            (packets - expected).abs() <= 1.0,
            "rendered {} packets, capacity admits {}",
            packets,
            expected
        );
    }

    #[test]
    fn mahimahi_parse_render_parse_is_a_fixed_point(
        values in prop::collection::vec(0.5f64..12.0, 1..10),
    ) {
        // After one render→parse trip the trace sits on mahimahi's
        // MTU-per-bin grid; a second trip must (nearly) fix it there.
        let trace = BandwidthTrace::from_uniform(5.0, &values).unwrap();
        let once = io::from_mahimahi(&io::to_mahimahi(&trace), 5.0).unwrap();
        let twice = io::from_mahimahi(&io::to_mahimahi(&once), 5.0).unwrap();
        prop_assert_eq!(once.len(), twice.len());
        for (a, b) in once.values().iter().zip(twice.values()) {
            // At most one MTU may migrate across a bin boundary per trip.
            prop_assert!(
                (a - b).abs() <= 2.0 * io::MAHIMAHI_MTU_BYTES * 8.0 / 1e6 / 5.0 + 1e-12,
                "second trip moved a bin from {} to {}",
                a,
                b
            );
        }
    }
}
