//! Ground-truth bandwidth (GTBW) traces and synthetic trace generators.
//!
//! The Veritas paper models the network as a *latent, piecewise-constant
//! bandwidth process*: the Ground Truth Bandwidth (GTBW) `C_t` is constant
//! over each interval of width `δ` and evolves as a first-order Markov chain
//! over a quantized capacity grid (multiples of `ε` Mbps).
//!
//! This crate provides:
//!
//! * [`BandwidthTrace`] — the piecewise-constant bandwidth process itself,
//!   with lookup, resampling, clamping and summary statistics.
//! * [`Quantizer`] — the ε-grid used both by trace generators and by the
//!   EHMM state space.
//! * [`generators`] — seeded synthetic generators standing in for the FCC
//!   broadband traces used in the paper's evaluation (see `DESIGN.md`,
//!   substitution table): Markov-modulated, bounded random walk, square
//!   wave, regime-switching, constant, and an "FCC-like" composite.
//! * [`io`] — JSON serialization and the mahimahi packet-timestamp format.
//!
//! All randomness is seeded; every generator is deterministic given its
//! configuration and seed.
//!
//! # Units
//!
//! Bandwidth is expressed in **Mbps**, time in **seconds**, and sizes (where
//! they appear elsewhere in the workspace) in **bytes**.
//!
//! # Example
//!
//! ```
//! use veritas_trace::{BandwidthTrace, generators::{FccLike, TraceGenerator}};
//!
//! let gen = FccLike::new(3.0, 8.0);
//! let trace: BandwidthTrace = gen.generate(600.0, 42);
//! assert!(trace.duration() >= 600.0);
//! let bw = trace.bandwidth_at(123.4);
//! assert!(bw >= 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod generators;
pub mod io;
pub mod quantize;
pub mod stats;
mod trace;

pub use quantize::Quantizer;
pub use stats::TraceStats;
pub use trace::{BandwidthTrace, TraceError, TraceSegment};
