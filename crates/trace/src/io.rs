//! Trace serialization: JSON and the mahimahi packet-timestamp format.
//!
//! The paper replays bandwidth traces with mahimahi, whose trace format is a
//! text file with one millisecond timestamp per line; each line grants one
//! 1500-byte MTU of transmission opportunity at that millisecond. Supporting
//! that format keeps the synthetic traces interoperable with real emulation
//! tooling, and round-tripping through it is a useful fidelity check.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::{BandwidthTrace, TraceSegment};

/// Bytes per mahimahi transmission opportunity (one MTU).
pub const MAHIMAHI_MTU_BYTES: f64 = 1500.0;

/// Errors from trace I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// The mahimahi file contained a line that is not a non-negative integer.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// The file contained no usable data.
    EmptyFile,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::MalformedLine { line } => write!(f, "malformed mahimahi line {line}"),
            IoError::EmptyFile => write!(f, "trace file contained no data"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Serializes a trace to a JSON string.
pub fn to_json(trace: &BandwidthTrace) -> String {
    serde_json::to_string_pretty(trace).expect("trace serialization cannot fail")
}

/// Deserializes a trace from JSON, restoring internal indexes.
pub fn from_json(json: &str) -> Result<BandwidthTrace, IoError> {
    let mut trace: BandwidthTrace = serde_json::from_str(json)?;
    trace.refresh();
    Ok(trace)
}

/// Writes a trace to `path` as JSON.
pub fn write_json(trace: &BandwidthTrace, path: &Path) -> Result<(), IoError> {
    fs::write(path, to_json(trace))?;
    Ok(())
}

/// Reads a JSON trace from `path`.
pub fn read_json(path: &Path) -> Result<BandwidthTrace, IoError> {
    let data = fs::read_to_string(path)?;
    from_json(&data)
}

/// Renders a trace in mahimahi's packet-timestamp format.
///
/// Each line is an integer millisecond at which one MTU (1500 bytes) may be
/// sent. The rendering accumulates fractional transmission opportunities so
/// that long traces deliver the correct total byte count even at low rates.
pub fn to_mahimahi(trace: &BandwidthTrace) -> String {
    let mut out = String::new();
    let mut carry_bytes = 0.0_f64;
    let total_ms = (trace.duration() * 1000.0).round() as u64;
    for ms in 0..total_ms {
        let t = ms as f64 / 1000.0;
        let rate_mbps = trace.bandwidth_at(t);
        carry_bytes += rate_mbps * 1e6 / 8.0 / 1000.0; // bytes available this ms
        while carry_bytes >= MAHIMAHI_MTU_BYTES {
            let _ = writeln!(out, "{}", ms + 1); // mahimahi timestamps are 1-based ms
            carry_bytes -= MAHIMAHI_MTU_BYTES;
        }
    }
    out
}

/// Parses a mahimahi packet-timestamp file back into a piecewise-constant
/// trace by binning transmission opportunities into `bin_s`-second windows.
pub fn from_mahimahi(contents: &str, bin_s: f64) -> Result<BandwidthTrace, IoError> {
    assert!(bin_s > 0.0);
    let mut timestamps_ms = Vec::new();
    for (i, line) in contents.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ts: u64 = line
            .parse()
            .map_err(|_| IoError::MalformedLine { line: i + 1 })?;
        timestamps_ms.push(ts);
    }
    if timestamps_ms.is_empty() {
        return Err(IoError::EmptyFile);
    }
    let end_ms = *timestamps_ms.iter().max().expect("non-empty");
    let duration_s = (end_ms as f64 / 1000.0).max(bin_s);
    let bins = (duration_s / bin_s).ceil() as usize;
    let mut bytes_per_bin = vec![0.0_f64; bins];
    for ts in timestamps_ms {
        let bin = (((ts.saturating_sub(1)) as f64 / 1000.0) / bin_s).floor() as usize;
        let bin = bin.min(bins - 1);
        bytes_per_bin[bin] += MAHIMAHI_MTU_BYTES;
    }
    let values: Vec<f64> = bytes_per_bin
        .iter()
        .map(|&bytes| bytes * 8.0 / 1e6 / bin_s)
        .collect();
    BandwidthTrace::from_uniform(bin_s, &values).map_err(|_| IoError::EmptyFile)
}

/// Writes a trace to `path` in mahimahi format.
pub fn write_mahimahi(trace: &BandwidthTrace, path: &Path) -> Result<(), IoError> {
    fs::write(path, to_mahimahi(trace))?;
    Ok(())
}

/// Reads a mahimahi-format trace from `path`, binning at `bin_s` seconds.
pub fn read_mahimahi(path: &Path, bin_s: f64) -> Result<BandwidthTrace, IoError> {
    let data = fs::read_to_string(path)?;
    from_mahimahi(&data, bin_s)
}

/// Convenience: builds a trace directly from `(interval, bandwidth)` pairs.
pub fn from_pairs(pairs: &[(f64, f64)]) -> Result<BandwidthTrace, crate::TraceError> {
    BandwidthTrace::new(
        pairs
            .iter()
            .map(|&(interval_s, bandwidth_mbps)| TraceSegment {
                interval_s,
                bandwidth_mbps,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_trace() {
        let t = BandwidthTrace::from_uniform(5.0, &[1.0, 2.5, 4.0]).unwrap();
        let json = to_json(&t);
        let back = from_json(&json).unwrap();
        assert_eq!(back.values(), t.values());
        assert!((back.duration() - t.duration()).abs() < 1e-12);
        // refreshed index must work
        assert_eq!(back.bandwidth_at(7.0), 2.5);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn mahimahi_rendering_rate_is_correct() {
        // 12 Mbps = 1.5 MB/s = 1000 MTUs per second.
        let t = BandwidthTrace::constant(12.0, 2.0);
        let rendered = to_mahimahi(&t);
        let lines = rendered.lines().count();
        assert_eq!(lines, 2000);
    }

    #[test]
    fn mahimahi_round_trip_recovers_rate() {
        let t = BandwidthTrace::from_uniform(5.0, &[2.0, 6.0, 4.0]).unwrap();
        let rendered = to_mahimahi(&t);
        let back = from_mahimahi(&rendered, 5.0).unwrap();
        for (orig, rec) in t.values().iter().zip(back.values().iter()) {
            assert!(
                (orig - rec).abs() < 0.05,
                "orig {orig} Mbps vs recovered {rec} Mbps"
            );
        }
    }

    #[test]
    fn mahimahi_parser_flags_bad_lines() {
        let err = from_mahimahi("12\nbogus\n", 1.0).unwrap_err();
        assert!(matches!(err, IoError::MalformedLine { line: 2 }));
        assert!(matches!(
            from_mahimahi("", 1.0).unwrap_err(),
            IoError::EmptyFile
        ));
    }

    #[test]
    fn low_rate_traces_still_emit_packets() {
        // 0.3 Mbps over 10 s = 375000 bytes = 250 MTUs.
        let t = BandwidthTrace::constant(0.3, 10.0);
        let rendered = to_mahimahi(&t);
        assert_eq!(rendered.lines().count(), 250);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("veritas_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let t = BandwidthTrace::from_uniform(5.0, &[3.0, 5.0]).unwrap();
        let jpath = dir.join("trace.json");
        write_json(&t, &jpath).unwrap();
        let back = read_json(&jpath).unwrap();
        assert_eq!(back.values(), t.values());
        let mpath = dir.join("trace.mahi");
        write_mahimahi(&t, &mpath).unwrap();
        let back = read_mahimahi(&mpath, 5.0).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn from_pairs_builds_segments() {
        let t = from_pairs(&[(5.0, 1.0), (10.0, 2.0)]).unwrap();
        assert_eq!(t.len(), 2);
        assert!((t.duration() - 15.0).abs() < 1e-12);
        assert!(from_pairs(&[]).is_err());
    }
}
