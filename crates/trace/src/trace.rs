//! The piecewise-constant bandwidth trace type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when constructing or manipulating a [`BandwidthTrace`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace has no segments.
    Empty,
    /// A segment has a non-positive duration.
    NonPositiveInterval {
        /// Index of the offending segment.
        index: usize,
        /// The interval length that was supplied.
        interval: f64,
    },
    /// A segment has a negative bandwidth.
    NegativeBandwidth {
        /// Index of the offending segment.
        index: usize,
        /// The bandwidth value that was supplied.
        bandwidth_mbps: f64,
    },
    /// A value was not finite (NaN or infinite).
    NotFinite {
        /// Index of the offending segment.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "bandwidth trace must contain at least one segment"),
            TraceError::NonPositiveInterval { index, interval } => write!(
                f,
                "segment {index} has non-positive interval length {interval}"
            ),
            TraceError::NegativeBandwidth {
                index,
                bandwidth_mbps,
            } => write!(
                f,
                "segment {index} has negative bandwidth {bandwidth_mbps} Mbps"
            ),
            TraceError::NotFinite { index } => {
                write!(f, "segment {index} contains a non-finite value")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One piecewise-constant segment of a bandwidth trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSegment {
    /// Length of the segment in seconds.
    pub interval_s: f64,
    /// Average bandwidth over the segment, in Mbps.
    pub bandwidth_mbps: f64,
}

/// A piecewise-constant ground-truth bandwidth (GTBW) process.
///
/// The trace is a sequence of `(interval, bandwidth)` segments. Queries past
/// the end of the trace return the bandwidth of the last segment, matching
/// the convention used by mahimahi-style replay (a trace loops/holds rather
/// than dropping to zero); this keeps downstream emulation well-defined for
/// sessions that outlast the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    segments: Vec<TraceSegment>,
    /// Cumulative end time of every segment (same length as `segments`).
    #[serde(skip)]
    cumulative: Vec<f64>,
}

impl BandwidthTrace {
    /// Builds a trace from raw segments.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the segment list is empty, any interval is
    /// non-positive, any bandwidth is negative, or any value is not finite.
    pub fn new(segments: Vec<TraceSegment>) -> Result<Self, TraceError> {
        if segments.is_empty() {
            return Err(TraceError::Empty);
        }
        for (index, seg) in segments.iter().enumerate() {
            if !seg.interval_s.is_finite() || !seg.bandwidth_mbps.is_finite() {
                return Err(TraceError::NotFinite { index });
            }
            if seg.interval_s <= 0.0 {
                return Err(TraceError::NonPositiveInterval {
                    index,
                    interval: seg.interval_s,
                });
            }
            if seg.bandwidth_mbps < 0.0 {
                return Err(TraceError::NegativeBandwidth {
                    index,
                    bandwidth_mbps: seg.bandwidth_mbps,
                });
            }
        }
        let mut trace = Self {
            segments,
            cumulative: Vec::new(),
        };
        trace.rebuild_cumulative();
        Ok(trace)
    }

    /// Builds a trace with a uniform interval width `delta_s` from a list of
    /// bandwidth values (the paper's `C_1..C_T` representation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BandwidthTrace::new`].
    pub fn from_uniform(delta_s: f64, bandwidths_mbps: &[f64]) -> Result<Self, TraceError> {
        let segments = bandwidths_mbps
            .iter()
            .map(|&bandwidth_mbps| TraceSegment {
                interval_s: delta_s,
                bandwidth_mbps,
            })
            .collect();
        Self::new(segments)
    }

    /// A constant-bandwidth trace of the given duration.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` or `bandwidth_mbps` are invalid (this is a
    /// convenience constructor intended for literal arguments).
    pub fn constant(bandwidth_mbps: f64, duration_s: f64) -> Self {
        Self::new(vec![TraceSegment {
            interval_s: duration_s,
            bandwidth_mbps,
        }])
        .expect("constant trace arguments must be valid")
    }

    fn rebuild_cumulative(&mut self) {
        self.cumulative.clear();
        let mut acc = 0.0;
        for seg in &self.segments {
            acc += seg.interval_s;
            self.cumulative.push(acc);
        }
    }

    /// Re-establishes internal cumulative sums after deserialization.
    ///
    /// `serde` skips the cached cumulative vector; call this after
    /// deserializing a trace by hand. [`crate::io`] does it for you.
    pub fn refresh(&mut self) {
        self.rebuild_cumulative();
    }

    /// The segments of this trace.
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the trace has no segments (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total duration covered by the trace in seconds.
    pub fn duration(&self) -> f64 {
        *self.cumulative.last().unwrap_or(&0.0)
    }

    /// Bandwidth (Mbps) at absolute time `t_s` seconds.
    ///
    /// Times before zero clamp to the first segment; times past the end clamp
    /// to the last segment.
    pub fn bandwidth_at(&self, t_s: f64) -> f64 {
        let idx = self.segment_index_at(t_s);
        self.segments[idx].bandwidth_mbps
    }

    /// Index of the segment covering time `t_s` (clamped to valid range).
    pub fn segment_index_at(&self, t_s: f64) -> usize {
        if t_s <= 0.0 {
            return 0;
        }
        match self
            .cumulative
            .binary_search_by(|end| end.partial_cmp(&t_s).expect("finite times"))
        {
            // `t_s` equals a segment boundary: the time belongs to the *next*
            // segment (intervals are half-open `[start, end)`).
            Ok(i) => (i + 1).min(self.segments.len() - 1),
            Err(i) => i.min(self.segments.len() - 1),
        }
    }

    /// Average bandwidth (Mbps) over the window `[start_s, end_s]`, weighted
    /// by time. Returns the point value at `start_s` if the window is empty.
    pub fn mean_bandwidth_over(&self, start_s: f64, end_s: f64) -> f64 {
        if end_s <= start_s {
            return self.bandwidth_at(start_s);
        }
        let mut acc = 0.0;
        let mut t = start_s.max(0.0);
        let end = end_s;
        // Walk segments that intersect the window.
        let mut idx = self.segment_index_at(t);
        loop {
            let seg_start = if idx == 0 {
                0.0
            } else {
                self.cumulative[idx - 1]
            };
            let seg_end = self.cumulative[idx];
            let lo = t.max(seg_start);
            let hi = end.min(seg_end);
            if hi > lo {
                acc += self.segments[idx].bandwidth_mbps * (hi - lo);
            }
            if seg_end >= end || idx + 1 >= self.segments.len() {
                // Account for any residue beyond the trace end at the last
                // segment's bandwidth (hold-last semantics).
                if end > seg_end && idx + 1 >= self.segments.len() {
                    acc += self.segments[idx].bandwidth_mbps * (end - seg_end.max(t));
                }
                break;
            }
            t = seg_end;
            idx += 1;
        }
        acc / (end - start_s.max(0.0))
    }

    /// Bytes the link can intrinsically deliver over `[start_s, end_s]`.
    pub fn deliverable_bytes(&self, start_s: f64, end_s: f64) -> f64 {
        if end_s <= start_s {
            return 0.0;
        }
        self.mean_bandwidth_over(start_s, end_s) * (end_s - start_s) * 1e6 / 8.0
    }

    /// Resamples the trace onto a uniform grid of width `delta_s`, averaging
    /// bandwidth within each new interval. The result covers at least the
    /// original duration.
    pub fn resample(&self, delta_s: f64) -> BandwidthTrace {
        assert!(delta_s > 0.0, "resample interval must be positive");
        let duration = self.duration();
        let n = (duration / delta_s).ceil().max(1.0) as usize;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let start = i as f64 * delta_s;
                let end = ((i + 1) as f64 * delta_s).min(duration.max(start + delta_s));
                self.mean_bandwidth_over(start, end)
            })
            .collect();
        BandwidthTrace::from_uniform(delta_s, &values).expect("resampled trace is valid")
    }

    /// Returns a copy with every bandwidth clamped into `[lo, hi]` Mbps.
    pub fn clamped(&self, lo: f64, hi: f64) -> BandwidthTrace {
        let segments = self
            .segments
            .iter()
            .map(|seg| TraceSegment {
                interval_s: seg.interval_s,
                bandwidth_mbps: seg.bandwidth_mbps.clamp(lo, hi),
            })
            .collect();
        BandwidthTrace::new(segments).expect("clamped trace is valid")
    }

    /// Returns a copy scaled by `factor` (e.g. to convert Mbps ↔ other units
    /// or to stress-test sensitivity to absolute bandwidth).
    pub fn scaled(&self, factor: f64) -> BandwidthTrace {
        assert!(factor >= 0.0 && factor.is_finite());
        let segments = self
            .segments
            .iter()
            .map(|seg| TraceSegment {
                interval_s: seg.interval_s,
                bandwidth_mbps: seg.bandwidth_mbps * factor,
            })
            .collect();
        BandwidthTrace::new(segments).expect("scaled trace is valid")
    }

    /// Truncates (or extends, holding the final value) the trace to exactly
    /// `duration_s` seconds.
    pub fn with_duration(&self, duration_s: f64) -> BandwidthTrace {
        assert!(duration_s > 0.0);
        let mut segments = Vec::new();
        let mut acc = 0.0;
        for seg in &self.segments {
            if acc >= duration_s {
                break;
            }
            let interval = seg.interval_s.min(duration_s - acc);
            segments.push(TraceSegment {
                interval_s: interval,
                bandwidth_mbps: seg.bandwidth_mbps,
            });
            acc += interval;
        }
        if acc < duration_s {
            let last_bw = self
                .segments
                .last()
                .map(|s| s.bandwidth_mbps)
                .unwrap_or(0.0);
            segments.push(TraceSegment {
                interval_s: duration_s - acc,
                bandwidth_mbps: last_bw,
            });
        }
        BandwidthTrace::new(segments).expect("duration-adjusted trace is valid")
    }

    /// Bandwidth values, one per segment (useful for uniform traces).
    pub fn values(&self) -> Vec<f64> {
        self.segments.iter().map(|s| s.bandwidth_mbps).collect()
    }

    /// Mean bandwidth over the whole trace, time-weighted.
    pub fn mean(&self) -> f64 {
        self.mean_bandwidth_over(0.0, self.duration())
    }

    /// Minimum segment bandwidth in Mbps.
    pub fn min(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.bandwidth_mbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum segment bandwidth in Mbps.
    pub fn max(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.bandwidth_mbps)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> BandwidthTrace {
        BandwidthTrace::from_uniform(5.0, &[1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(BandwidthTrace::new(vec![]), Err(TraceError::Empty));
    }

    #[test]
    fn rejects_negative_bandwidth() {
        let err = BandwidthTrace::from_uniform(5.0, &[1.0, -2.0]).unwrap_err();
        assert!(matches!(
            err,
            TraceError::NegativeBandwidth { index: 1, .. }
        ));
    }

    #[test]
    fn rejects_non_positive_interval() {
        let err = BandwidthTrace::new(vec![TraceSegment {
            interval_s: 0.0,
            bandwidth_mbps: 1.0,
        }])
        .unwrap_err();
        assert!(matches!(
            err,
            TraceError::NonPositiveInterval { index: 0, .. }
        ));
    }

    #[test]
    fn rejects_nan() {
        let err = BandwidthTrace::new(vec![TraceSegment {
            interval_s: f64::NAN,
            bandwidth_mbps: 1.0,
        }])
        .unwrap_err();
        assert!(matches!(err, TraceError::NotFinite { index: 0 }));
    }

    #[test]
    fn duration_sums_intervals() {
        assert!((simple().duration() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_lookup_within_segments() {
        let t = simple();
        assert_eq!(t.bandwidth_at(0.0), 1.0);
        assert_eq!(t.bandwidth_at(4.999), 1.0);
        assert_eq!(
            t.bandwidth_at(5.0),
            2.0,
            "boundaries belong to the next segment"
        );
        assert_eq!(t.bandwidth_at(12.0), 3.0);
        assert_eq!(t.bandwidth_at(19.999), 4.0);
    }

    #[test]
    fn bandwidth_lookup_clamps_out_of_range() {
        let t = simple();
        assert_eq!(t.bandwidth_at(-3.0), 1.0);
        assert_eq!(t.bandwidth_at(1e9), 4.0);
    }

    #[test]
    fn mean_over_full_trace() {
        let t = simple();
        assert!((t.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_over_partial_window_weights_by_time() {
        let t = simple();
        // window [2.5, 7.5]: half in segment 0 (1 Mbps), half in segment 1 (2 Mbps)
        assert!((t.mean_bandwidth_over(2.5, 7.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mean_over_window_past_end_holds_last_value() {
        let t = simple();
        // [15, 25]: 5 s at 4 Mbps inside the trace, 5 s held at 4 Mbps after it.
        assert!((t.mean_bandwidth_over(15.0, 25.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_returns_point_value() {
        let t = simple();
        assert_eq!(t.mean_bandwidth_over(6.0, 6.0), 2.0);
        assert_eq!(t.mean_bandwidth_over(8.0, 6.0), 2.0);
    }

    #[test]
    fn deliverable_bytes_matches_rate() {
        let t = BandwidthTrace::constant(8.0, 100.0); // 8 Mbps = 1 MB/s
        let bytes = t.deliverable_bytes(10.0, 20.0);
        assert!((bytes - 10.0e6).abs() < 1.0);
    }

    #[test]
    fn resample_preserves_mean_on_uniform_grid() {
        let t = simple();
        let r = t.resample(2.5);
        assert_eq!(r.len(), 8);
        assert!((r.mean() - t.mean()).abs() < 1e-9);
    }

    #[test]
    fn resample_coarser_averages() {
        let t = simple();
        let r = t.resample(10.0);
        assert_eq!(r.len(), 2);
        assert!((r.values()[0] - 1.5).abs() < 1e-12);
        assert!((r.values()[1] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_scale() {
        let t = simple();
        let c = t.clamped(1.5, 3.5);
        assert_eq!(c.values(), vec![1.5, 2.0, 3.0, 3.5]);
        let s = t.scaled(2.0);
        assert_eq!(s.values(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn with_duration_truncates_and_extends() {
        let t = simple();
        let short = t.with_duration(7.0);
        assert!((short.duration() - 7.0).abs() < 1e-12);
        assert_eq!(short.bandwidth_at(6.0), 2.0);
        let long = t.with_duration(30.0);
        assert!((long.duration() - 30.0).abs() < 1e-12);
        assert_eq!(long.bandwidth_at(29.0), 4.0);
    }

    #[test]
    fn min_max() {
        let t = simple();
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 4.0);
    }

    #[test]
    fn constant_trace_is_flat() {
        let t = BandwidthTrace::constant(18.0, 60.0);
        assert_eq!(t.bandwidth_at(0.0), 18.0);
        assert_eq!(t.bandwidth_at(59.0), 18.0);
        assert_eq!(t.mean(), 18.0);
    }
}
